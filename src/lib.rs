//! # hamava-repro
//!
//! Umbrella crate of the Hamava reproduction workspace. It re-exports the public
//! crates so the examples and integration tests under the repository root can use a
//! single dependency, and so `cargo doc` produces one entry point.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use ava_bench as bench;
pub use ava_bftsmart as bftsmart;
pub use ava_broker as broker;
pub use ava_consensus as consensus;
pub use ava_crypto as crypto;
pub use ava_fuzz as fuzz;
pub use ava_geobft as geobft;
pub use ava_hamava as hamava;
pub use ava_hotstuff as hotstuff;
pub use ava_scenario as scenario;
pub use ava_simnet as simnet;
pub use ava_state as state;
pub use ava_store as store;
pub use ava_types as types;
pub use ava_workload as workload;
