//! Offline shim for the `sha2` crate (see `DESIGN.md` §0 "Vendored shims").
//!
//! The build environment has no access to crates.io. No workspace crate
//! currently depends on `sha2` — `ava-crypto` implements SHA-256 from scratch
//! and validates it against FIPS 180-4 known-answer tests — but the workspace
//! dependency table reserves the name so future crates can `sha2.workspace =
//! true` without touching manifests. This shim delegates to `ava-crypto`'s
//! implementation and exposes the common one-shot and incremental entry
//! points. Deviation from the real crate: [`Sha256::finalize`] returns a plain
//! `[u8; 32]` instead of a `generic_array::GenericArray`.

/// Incremental SHA-256 hasher, mirroring `sha2::Sha256`.
#[derive(Clone, Default)]
pub struct Sha256(ava_crypto::sha256::Sha256);

impl Sha256 {
    /// New hasher with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes into the hasher.
    pub fn update(&mut self, data: impl AsRef<[u8]>) {
        self.0.update(data.as_ref());
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(self) -> [u8; 32] {
        self.0.finalize()
    }

    /// One-shot digest of `data`, mirroring `sha2::Digest::digest`.
    pub fn digest(data: impl AsRef<[u8]>) -> [u8; 32] {
        ava_crypto::sha256(data.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::Sha256;

    #[test]
    fn matches_fips_vector() {
        assert_eq!(
            Sha256::digest(b"abc").iter().map(|b| format!("{b:02x}")).collect::<String>(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Sha256::new();
        h.update(b"ab");
        h.update(b"c");
        assert_eq!(h.finalize(), Sha256::digest(b"abc"));
    }
}
