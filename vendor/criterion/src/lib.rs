//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! stands in for the real `criterion` (see `DESIGN.md` §0 "Vendored shims").
//! It supports [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! (with `sample_size` / `measurement_time`), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros, so `cargo bench` runs the
//! workspace's `[[bench]]` targets and prints per-benchmark min, median and
//! mean wall-clock times (the measurement loop is split into up to ten timed
//! sample batches; min/median are over the per-batch means, which damps one-off
//! scheduler hiccups the way real criterion's sampling does). It is a
//! measurement harness, not a statistics suite: no outlier analysis, no HTML
//! reports, no baseline comparison. Swapping back to the real crate requires
//! only re-pointing `[workspace.dependencies] criterion` at crates.io.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    target: Duration,
    /// Mean wall-clock time per iteration, set by [`Bencher::iter`].
    mean: Duration,
    /// Fastest per-iteration time over the sample batches.
    min: Duration,
    /// Median per-iteration time over the sample batches.
    median: Duration,
    /// Total iterations executed (warmup excluded).
    iters: u64,
    test_mode: bool,
}

impl Bencher {
    /// Run `f` repeatedly and record its min/median/mean wall-clock time.
    ///
    /// One warmup call sizes the measurement loop so cheap closures are timed
    /// over many iterations while expensive ones (whole simulated deployments)
    /// run only a handful of times. The loop is split into up to ten timed
    /// sample batches; min and median are taken over the per-batch means.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        if self.test_mode {
            self.iters = 1;
            self.mean = once;
            self.min = once;
            self.median = once;
            return;
        }
        let n = (self.target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let samples = n.min(10);
        let per_sample = n / samples;
        let mut batch_means: Vec<Duration> = Vec::with_capacity(samples as usize);
        let total_start = Instant::now();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            batch_means.push(start.elapsed() / per_sample as u32);
        }
        let total = total_start.elapsed();
        batch_means.sort();
        self.iters = samples * per_sample;
        self.mean = total / self.iters as u32;
        self.min = batch_means[0];
        self.median = batch_means[batch_means.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench executables with `--bench`; `cargo test --benches`
        // invokes them with `--test`, where each benchmark must run exactly once.
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { measurement_time: Duration::from_millis(200), test_mode, filter }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, target: Duration, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            target,
            mean: Duration::ZERO,
            min: Duration::ZERO,
            median: Duration::ZERO,
            iters: 0,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        println!(
            "{id:<50} time: [min {} median {} mean {}]  ({} iterations)",
            format_duration(bencher.min),
            format_duration(bencher.median),
            format_duration(bencher.mean),
            bencher.iters
        );
    }

    /// Benchmark a single closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let target = self.measurement_time;
        self.run_one(&id, target, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup { parent: self, name: name.into(), measurement_time }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    // Group-scoped, as in real criterion: must not leak into later groups.
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes loops by wall-clock
    /// target instead of sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Wall-clock budget for each benchmark's measurement loop in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.parent.run_one(&id, self.measurement_time, &mut f);
        self
    }

    /// End the group (report flushing is a no-op in this shim).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bencher(test_mode: bool) -> Bencher {
        Bencher {
            target: Duration::from_millis(5),
            mean: Duration::ZERO,
            min: Duration::ZERO,
            median: Duration::ZERO,
            iters: 0,
            test_mode,
        }
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = bencher(false);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            std::hint::black_box(count)
        });
        assert!(b.iters >= 1);
        assert_eq!(count, b.iters + 1); // warmup + measured iterations
    }

    #[test]
    fn min_median_mean_are_ordered() {
        let mut b = bencher(false);
        // `black_box` inside the loop body: a plain `(0..n).sum()` is reduced
        // to a closed form in release builds, the per-iteration time rounds to
        // zero, and the `min > 0` assertion below turns flaky.
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = std::hint::black_box(acc.wrapping_add(i));
            }
            acc
        });
        assert!(b.min <= b.median, "min {:?} > median {:?}", b.min, b.median);
        assert!(b.min > Duration::ZERO);
        assert!(b.mean > Duration::ZERO);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = bencher(true);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
        });
        assert_eq!(count, 1);
        assert_eq!(b.iters, 1);
        assert_eq!(b.min, b.mean);
        assert_eq!(b.median, b.mean);
    }

    #[test]
    fn measurement_time_is_group_scoped() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(200),
            test_mode: true,
            filter: None,
        };
        {
            let mut group = c.benchmark_group("g");
            group.measurement_time(Duration::from_secs(10));
            group.finish();
        }
        assert_eq!(c.measurement_time, Duration::from_millis(200));
    }

    #[test]
    fn format_duration_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(format_duration(Duration::from_secs(4)), "4.00 s");
    }
}
