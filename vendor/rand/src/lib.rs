//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! stands in for the real `rand`. It is **API-compatible for the call sites in
//! this repository** (see `DESIGN.md` §0 "Vendored shims"): [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], [`rngs::mock::StepRng`], [`thread_rng`],
//! and [`seq::SliceRandom`]. The core generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and of ample quality for discrete-event
//! simulation (it is the same family the real `rand_xoshiro` ships). If the
//! registry ever becomes reachable, deleting `vendor/rand` and pointing
//! `[workspace.dependencies] rand` back at crates.io is the only change needed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from [`RngCore::next_u64`].
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for the span sizes used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Full-width u64 range: span would overflow to 0, so draw directly.
                let Some(span) = ((end - start) as u64).checked_add(1) else {
                    return start + rng.next_u64() as $t;
                };
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (the `Standard` distribution).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Mock generator yielding `initial`, `initial + increment`, … — test-only.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// New generator starting at `initial`, advancing by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, step: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

/// Handle returned by [`thread_rng`].
#[derive(Clone, Debug)]
pub struct ThreadRng(rngs::StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A fresh non-deterministically seeded generator (wall clock + thread id).
pub fn thread_rng() -> ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    ThreadRng(rngs::StdRng::seed_from_u64(nanos ^ tid))
}

pub mod seq {
    use super::Rng;

    /// Slice extensions: random element choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(5, 3);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 8);
        assert_eq!(rng.next_u64(), 11);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1u32, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let &x = items.choose(&mut rng).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_range_full_width_inclusive() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            // Must not overflow the span computation.
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
            let x = rng.gen_range(0u8..=u8::MAX);
            let _ = x;
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_rng() {
        fn draw(rng: &mut dyn RngCore) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(17);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
