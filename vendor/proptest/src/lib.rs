//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! stands in for the real `proptest` (see `DESIGN.md` §0 "Vendored shims"). It
//! supports the [`proptest!`] macro with integer-range strategies (`4u32..8`,
//! `0usize..100`, inclusive ranges), [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros. Unlike the real crate it draws cases from a **fixed
//! deterministic seed** and does **not shrink** failing inputs — a failure
//! report prints the sampled values instead, which is enough to reproduce
//! because the sequence is deterministic. Swapping back to the real crate
//! requires only re-pointing the dependency at crates.io.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number-of-cases knob, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value sources the `x in <strategy>` binder accepts.
pub trait Strategy {
    /// The type of the produced values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                // Full-width u64 range: span would overflow to 0, so draw directly.
                let Some(span) = ((end - start) as u64).checked_add(1) else {
                    return start + rng.next_u64() as $t;
                };
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize);

/// Seed for case `case` of the property named `name` — deterministic across
/// runs so every reported failure is reproducible.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Property-test entry point, mirroring `proptest::proptest!`.
///
/// Each `fn name(x in strategy, ...) { body }` becomes a `#[test]` (the
/// attribute is written by the caller, as with real proptest) that runs the
/// body over `config.cases` deterministically sampled inputs, printing the
/// sampled values if a case panics.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            concat!(
                                "proptest case {} of {} failed for ",
                                stringify!($name),
                                "(", $(stringify!($arg), " = {:?}, ",)+ ")"
                            ),
                            case + 1,
                            config.cases,
                            $($arg),+
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )+
        }
    };
}

/// `assert!` under a proptest-compatible name (this shim panics instead of
/// returning `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` under a proptest-compatible name. Real proptest rejects the
/// sampled input and re-draws; this shim simply skips the rest of the case
/// (the deterministic sampler would re-draw the same value anyway).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

pub mod prelude {
    //! Mirrors `proptest::prelude` for `use proptest::prelude::*;`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic_per_case() {
        use rand::RngCore;
        let a = crate::case_rng("p", 3).next_u64();
        let b = crate::case_rng("p", 3).next_u64();
        let c = crate::case_rng("p", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn samples_stay_in_range(n in 4u32..8, k in 1usize..25) {
            prop_assert!((4..8).contains(&n));
            prop_assert!((1..25).contains(&k));
        }

        #[test]
        fn inclusive_ranges_hit_both_ends(x in 0u8..=1) {
            prop_assert!(x <= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in 0u64..10) {
            prop_assert_ne!(v, 10);
        }
    }
}
