//! Heterogeneity (the paper's experiment E3): compare the three cluster layouts for
//! 9 Asia + 5 EU replicas — (1) equal-sized clusters that mix regions, (2) clusters
//! partitioned by region, (3) region partition plus an intra-region split — and show
//! that heterogeneous, region-aligned clusters improve throughput.
//!
//! Run with: `cargo run --release --example heterogeneous_scaling`

use hamava_repro::bench::experiments::e3_setup;
use hamava_repro::scenario::{Protocol, Scenario};
use hamava_repro::types::{Duration, Output};

fn main() {
    let run_len = Duration::from_secs(15);
    println!("running the three E3 layouts (scale factor 1) for {run_len} of virtual time each\n");
    let mut results = Vec::new();
    for setup in 1..=3 {
        let mut config = e3_setup(setup, 1);
        config.params.batch_size = 40;
        let run = Scenario::builder(Protocol::AvaHotStuff, config).run_for(run_len).build().run();
        let completed =
            run.outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();
        let tput = completed as f64 / run_len.as_secs_f64();
        let label = match setup {
            1 => "setup 1: equal clusters, regions mixed   ",
            2 => "setup 2: one cluster per region           ",
            _ => "setup 3: region + intra-region partition  ",
        };
        println!("{label} throughput = {tput:.1} txn/s");
        results.push(tput);
    }
    println!(
        "\nheterogeneous, region-aligned layouts (setups 2 and 3) avoid paying WAN latency \
         inside the local-ordering stage, which is why the paper finds they outperform the \
         homogeneous layout (setup 1), especially at higher scale factors."
    );
    let _ = results;
}
