//! Reconfiguration: replicas join and leave clusters while transactions keep being
//! processed (the scenario of the paper's experiment E5), declared as a schedule of
//! join/leave events.
//!
//! Run with: `cargo run --release --example reconfiguration`

use hamava_repro::scenario::{Protocol, Scenario};
use hamava_repro::types::{ClusterId, Duration, Output, Region, SystemConfig, Time};

fn main() {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 50;
    let leaver = config.clusters[0].replicas[2].0;

    println!("declaring the scenario: steady state, then churn at t = 10 s...");
    let run = Scenario::builder(Protocol::AvaHotStuff, config)
        .run_for(Duration::from_secs(30))
        // At 10 s one replica joins each cluster and one original member of
        // cluster 0 requests to leave — the runner applies these at their times.
        .join_at(Time::from_secs(10), ClusterId(0), Region::UsWest)
        .join_at(Time::from_secs(10), ClusterId(1), Region::Europe)
        .leave_at(Time::from_secs(10), leaver)
        .build()
        .run();

    let (new_us, new_eu) = (run.joined[0], run.joined[1]);
    let mut joins = 0;
    let mut leaves = 0;
    for o in &run.outputs {
        if let Output::ReconfigApplied { replica, joined, round, .. } = o {
            if *joined {
                joins += 1;
            } else {
                leaves += 1;
            }
            if [*replica].contains(&new_us) || [*replica].contains(&new_eu) || replica == &leaver {
                println!(
                    "  reconfiguration applied in {round}: {replica} {}",
                    if *joined { "joined" } else { "left" }
                );
            }
        }
    }
    let completed = run.outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();
    println!("join events applied (across replicas): {joins}");
    println!("leave events applied (across replicas): {leaves}");
    println!("transactions completed while reconfiguring: {completed}");
    println!(
        "replicas {new_us} and {new_eu} joined; replica {leaver} left — processing never stopped."
    );
}
