//! Reconfiguration: replicas join and leave clusters while transactions keep being
//! processed (the scenario of the paper's experiment E5).
//!
//! Run with: `cargo run --release --example reconfiguration`

use hamava_repro::hamava::harness::{hotstuff_deployment, DeploymentOptions};
use hamava_repro::types::{ClusterId, Duration, Output, Region, SystemConfig};

fn main() {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 50;
    let mut deployment = hotstuff_deployment(config, DeploymentOptions::default());

    println!("phase 1: steady state (10 s)...");
    deployment.run_for(Duration::from_secs(10));

    println!("phase 2: one replica joins each cluster, one replica leaves cluster 0...");
    let new_us = deployment.add_joining_replica(ClusterId(0), Region::UsWest);
    let new_eu = deployment.add_joining_replica(ClusterId(1), Region::Europe);
    let leaver = deployment.config.clusters[0].replicas[2].0;
    deployment.request_leave(leaver);
    deployment.run_for(Duration::from_secs(20));

    let mut joins = 0;
    let mut leaves = 0;
    for o in deployment.outputs() {
        if let Output::ReconfigApplied { replica, joined, round, .. } = o {
            if *joined {
                joins += 1;
            } else {
                leaves += 1;
            }
            if [*replica].contains(&new_us) || [*replica].contains(&new_eu) || replica == &leaver {
                println!(
                    "  reconfiguration applied in {round}: {replica} {}",
                    if *joined { "joined" } else { "left" }
                );
            }
        }
    }
    let completed =
        deployment.outputs().iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();
    println!("join events applied (across replicas): {joins}");
    println!("leave events applied (across replicas): {leaves}");
    println!("transactions completed while reconfiguring: {completed}");
    println!(
        "replicas {new_us} and {new_eu} joined; replica {leaver} left — processing never stopped."
    );
}
