//! Quickstart: two heterogeneous clusters (4 replicas in the US, 7 in Europe)
//! replicating a YCSB-like workload with Hamava on top of HotStuff, described as a
//! declarative scenario.
//!
//! Run with: `cargo run --release --example quickstart`

use hamava_repro::scenario::{Protocol, Scenario, ThroughputObserver};
use hamava_repro::types::{Duration, Output, Region, SystemConfig, Time};

fn main() {
    // The paper's running example: heterogeneous clusters of 4 and 7 replicas.
    let mut config =
        SystemConfig::heterogeneous(&[vec![Region::UsWest; 4], vec![Region::Europe; 7]]);
    config.params.batch_size = 50;

    let run_len = Duration::from_secs(20);
    println!("running a 2-cluster AVA-HOTSTUFF scenario for {run_len} of virtual time...");

    // An observer streams the throughput series while the run executes, instead of
    // reconstructing it from the outputs afterwards.
    let mut throughput = ThroughputObserver::new(Duration::from_secs(5));
    let run = Scenario::builder(Protocol::AvaHotStuff, config)
        .run_for(run_len)
        .tick_every(Duration::from_secs(5))
        .build()
        .run_observed(&mut [&mut throughput]);

    let completed: Vec<_> = run
        .outputs
        .iter()
        .filter_map(|o| match o {
            Output::TxCompleted { issued_at, completed_at, is_write, .. } => {
                Some((completed_at.since(*issued_at).as_millis_f64(), *is_write))
            }
            _ => None,
        })
        .collect();
    let rounds = run.outputs.iter().filter(|o| matches!(o, Output::RoundExecuted { .. })).count();
    let writes = completed.iter().filter(|(_, w)| *w).count();
    let avg_ms = completed.iter().map(|(l, _)| l).sum::<f64>() / completed.len().max(1) as f64;

    println!("rounds executed (across replicas): {rounds}");
    println!(
        "transactions completed: {} ({} writes, {} reads)",
        completed.len(),
        writes,
        completed.len() - writes
    );
    println!(
        "throughput: {:.1} txn/s, average latency: {avg_ms:.1} ms",
        completed.len() as f64 / (Time::ZERO + run_len).as_secs_f64()
    );
    println!("throughput over time (5 s buckets):");
    for (t, tps) in throughput.series() {
        println!("  t <= {t:>4.0} s: {tps:>8.1} txn/s");
    }
    println!(
        "network: {} intra-cluster and {} inter-cluster messages",
        run.stats.local_messages, run.stats.global_messages
    );
}
