//! Quickstart: two heterogeneous clusters (4 replicas in the US, 7 in Europe)
//! replicating a YCSB-like workload with Hamava on top of HotStuff.
//!
//! Run with: `cargo run --release --example quickstart`

use hamava_repro::hamava::harness::{hotstuff_deployment, DeploymentOptions};
use hamava_repro::types::{Duration, Output, Region, SystemConfig, Time};

fn main() {
    // The paper's running example: heterogeneous clusters of 4 and 7 replicas.
    let mut config =
        SystemConfig::heterogeneous(&[vec![Region::UsWest; 4], vec![Region::Europe; 7]]);
    config.params.batch_size = 50;

    let mut deployment = hotstuff_deployment(config, DeploymentOptions::default());
    let run = Duration::from_secs(20);
    println!("running a 2-cluster AVA-HOTSTUFF deployment for {run} of virtual time...");
    deployment.run_for(run);

    let outputs = deployment.outputs();
    let completed: Vec<_> = outputs
        .iter()
        .filter_map(|o| match o {
            Output::TxCompleted { issued_at, completed_at, is_write, .. } => {
                Some((completed_at.since(*issued_at).as_millis_f64(), *is_write))
            }
            _ => None,
        })
        .collect();
    let rounds = outputs.iter().filter(|o| matches!(o, Output::RoundExecuted { .. })).count();
    let writes = completed.iter().filter(|(_, w)| *w).count();
    let avg_ms = completed.iter().map(|(l, _)| l).sum::<f64>() / completed.len().max(1) as f64;

    println!("rounds executed (across replicas): {rounds}");
    println!(
        "transactions completed: {} ({} writes, {} reads)",
        completed.len(),
        writes,
        completed.len() - writes
    );
    println!(
        "throughput: {:.1} txn/s, average latency: {avg_ms:.1} ms",
        completed.len() as f64 / (Time::ZERO + run).as_secs_f64()
    );
    println!(
        "network: {} intra-cluster and {} inter-cluster messages",
        deployment.sim.stats().local_messages,
        deployment.sim.stats().global_messages
    );
}
