//! Byzantine leader and remote leader change (the paper's experiment E4.3): the
//! leader of cluster 0 behaves correctly inside its cluster but withholds all
//! inter-cluster messages, so cluster 1 cannot finish its rounds. Cluster 1's
//! replicas complain, forward the complaint to cluster 0, and cluster 0 elects a new
//! leader; throughput recovers. The fault is one scheduled event; a throughput
//! observer shows the dip and the recovery.
//!
//! Run with: `cargo run --release --example byzantine_leader`

use hamava_repro::scenario::{Protocol, Scenario, ThroughputObserver};
use hamava_repro::types::{ClusterId, Duration, Output, Region, SystemConfig, Time};

fn main() {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 40;
    // Shorter timeout than the paper's 20 s so the example finishes quickly.
    config.params.remote_leader_timeout = Duration::from_secs(5);
    let byzantine_leader = config.initial_leader(ClusterId(0));
    let fault_at = Time::from_secs(8);

    println!(
        "scenario: steady state with leader {byzantine_leader} in cluster 0; at {fault_at} it \
         turns Byzantine and stops sending inter-cluster messages."
    );
    let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
    let run = Scenario::builder(Protocol::AvaBftSmart, config)
        .run_for(Duration::from_secs(38))
        .mute_inter_cluster_at(fault_at, byzantine_leader)
        .build()
        .run_observed(&mut [&mut throughput]);

    let before = run
        .outputs
        .iter()
        .filter(
            |o| matches!(o, Output::TxCompleted { completed_at, .. } if *completed_at < fault_at),
        )
        .count();
    let after = run.outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();
    let leader_changes: Vec<_> = run
        .outputs
        .iter()
        .filter_map(|o| match o {
            Output::LeaderChanged { cluster, new_leader, at, .. } if *cluster == ClusterId(0) => {
                Some((*new_leader, *at))
            }
            _ => None,
        })
        .collect();

    println!("transactions before the fault: {before}");
    println!("transactions by the end of the run: {after}");
    println!("throughput around the fault (2 s buckets):");
    for (t, tps) in throughput.series() {
        let marker = if (t - fault_at.as_secs_f64()).abs() < 1.0 { "  <- fault" } else { "" };
        println!("  t <= {t:>4.0} s: {tps:>8.1} txn/s{marker}");
    }
    match leader_changes.first() {
        Some((new_leader, at)) => println!(
            "remote leader change succeeded: cluster 0 switched to {new_leader} at {at} \
             (reported by {} replicas)",
            leader_changes.len()
        ),
        None => println!("no leader change observed (increase the run length)"),
    }
    assert!(after > before, "throughput should recover after the remote leader change");
}
