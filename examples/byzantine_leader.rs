//! Byzantine leader and remote leader change (the paper's experiment E4.3): the
//! leader of cluster 0 behaves correctly inside its cluster but withholds all
//! inter-cluster messages, so cluster 1 cannot finish its rounds. Cluster 1's
//! replicas complain, forward the complaint to cluster 0, and cluster 0 elects a new
//! leader; throughput recovers.
//!
//! Run with: `cargo run --release --example byzantine_leader`

use hamava_repro::hamava::harness::{bftsmart_deployment, DeploymentOptions};
use hamava_repro::types::{ClusterId, Duration, Output, Region, SystemConfig};

fn main() {
    let mut config = SystemConfig::homogeneous_regions(&[(7, Region::UsWest), (7, Region::Europe)]);
    config.params.batch_size = 40;
    // Shorter timeout than the paper's 20 s so the example finishes quickly.
    config.params.remote_leader_timeout = Duration::from_secs(5);
    let mut deployment = bftsmart_deployment(config, DeploymentOptions::default());
    let byzantine_leader = deployment.initial_leader(ClusterId(0));

    println!("steady state (8 s) with leader {byzantine_leader} in cluster 0...");
    deployment.run_for(Duration::from_secs(8));
    let before =
        deployment.outputs().iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();

    println!("{byzantine_leader} turns Byzantine: it stops sending inter-cluster messages.");
    deployment.mute_inter_cluster(byzantine_leader);
    deployment.run_for(Duration::from_secs(30));

    let leader_changes: Vec<_> = deployment
        .outputs()
        .iter()
        .filter_map(|o| match o {
            Output::LeaderChanged { cluster, new_leader, at, .. } if *cluster == ClusterId(0) => {
                Some((*new_leader, *at))
            }
            _ => None,
        })
        .collect();
    let after =
        deployment.outputs().iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();

    println!("transactions before the fault: {before}");
    println!("transactions by the end of the run: {after}");
    match leader_changes.first() {
        Some((new_leader, at)) => println!(
            "remote leader change succeeded: cluster 0 switched to {new_leader} at {at} \
             (reported by {} replicas)",
            leader_changes.len()
        ),
        None => println!("no leader change observed (increase the run length)"),
    }
    assert!(after > before, "throughput should recover after the remote leader change");
}
