//! The aggregate virtual-client actor: one simulated node standing in for up
//! to millions of open-loop clients, issuing a deterministic collapsed arrival
//! stream either through the broker tier or directly at replicas.

use ava_consensus::WireSize;
use ava_hamava::messages::AvaMsg;
use ava_simnet::{Actor, Context, SimMessage};
use ava_types::{ClusterId, Duration, Output, ReplicaId, Time, Transaction, TxId};
use ava_workload::AggregateStream;
use std::collections::HashMap;
use std::marker::PhantomData;

const TICK: u64 = 1;

/// How often the generator drains its arrival stream. Every arrival of a tick
/// is absorbed by one handler invocation — the collapse that makes 10⁵+
/// virtual clients per actor cheap.
const DRAIN_INTERVAL: Duration = Duration(1_000);

/// Backoff before resubmitting operations a broker shed: a bounced operation
/// waits this long instead of hammering the still-congested queue every tick.
const RETRY_BACKOFF: Duration = Duration(50_000);

/// Where the generator submits its operations.
#[derive(Clone, Debug)]
pub enum Route {
    /// Through the broker tier: operations are partitioned over the brokers by
    /// virtual client id and submitted in per-tick `BrokerSubmit` bundles.
    Brokers(Vec<ReplicaId>),
    /// Directly at replicas, one `ClientRequest` per operation, round-robin —
    /// the per-request baseline the broker tier is measured against.
    Direct(Vec<ReplicaId>),
}

/// The aggregate generator actor. Generic over the TOB message type only so it
/// can share a simulation with any replica flavour.
pub struct AggregateClients<TM> {
    node: ReplicaId,
    cluster: ClusterId,
    stream: AggregateStream,
    route: Route,
    /// Issued-but-unacked operations: issue (arrival) time and whether it is a
    /// write. Also the dedup set — a duplicate ack (e.g. after a broker retry)
    /// finds no entry and is dropped.
    outstanding: HashMap<TxId, (Time, bool)>,
    /// Operations the broker shed under backpressure, resubmitted after
    /// [`RETRY_BACKOFF`]. Their `outstanding` entries (and issue times)
    /// survive the bounce.
    retry: Vec<Transaction>,
    /// Earliest time the retry queue may be resubmitted.
    next_retry_at: Time,
    /// Round-robin cursor for `Route::Direct`.
    rr: usize,
    completed: u64,
    shed_seen: u64,
    _marker: PhantomData<TM>,
}

impl<TM> AggregateClients<TM> {
    /// Create a generator for `cluster`, draining `stream` into `route`.
    pub fn new(node: ReplicaId, cluster: ClusterId, stream: AggregateStream, route: Route) -> Self {
        match &route {
            Route::Brokers(targets) | Route::Direct(targets) => {
                assert!(!targets.is_empty(), "aggregate generator needs somewhere to submit");
            }
        }
        AggregateClients {
            node,
            cluster,
            stream,
            route,
            outstanding: HashMap::new(),
            retry: Vec::new(),
            next_retry_at: Time::ZERO,
            rr: 0,
            completed: 0,
            shed_seen: 0,
            _marker: PhantomData,
        }
    }

    /// The generator's simulated node id.
    pub fn node(&self) -> ReplicaId {
        self.node
    }

    /// Acked operations so far (for tests).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Shed bounces observed so far (for tests).
    pub fn shed_seen(&self) -> u64 {
        self.shed_seen
    }
}

impl<TM: Clone + WireSize> AggregateClients<TM>
where
    AvaMsg<TM>: SimMessage,
{
    fn complete(&mut self, tx: TxId, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if let Some((issued_at, is_write)) = self.outstanding.remove(&tx) {
            self.completed += 1;
            ctx.emit(Output::TxCompleted {
                tx,
                client: tx.client,
                cluster: self.cluster,
                issued_at,
                completed_at: ctx.now(),
                is_write,
            });
        }
    }

    fn submit(&mut self, ops: Vec<Transaction>, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if ops.is_empty() {
            return;
        }
        match &self.route {
            Route::Brokers(brokers) => {
                // Partition by virtual client id so one client's operations
                // always take the same broker (keeps per-client order).
                let mut per_broker: Vec<Vec<Transaction>> = vec![Vec::new(); brokers.len()];
                for tx in ops {
                    per_broker[tx.id.client.0 as usize % brokers.len()].push(tx);
                }
                let brokers = brokers.clone();
                for (broker, bundle) in brokers.into_iter().zip(per_broker) {
                    if !bundle.is_empty() {
                        ctx.send(broker, AvaMsg::BrokerSubmit { ops: bundle });
                    }
                }
            }
            Route::Direct(replicas) => {
                let replicas = replicas.clone();
                for tx in ops {
                    let target = replicas[self.rr % replicas.len()];
                    self.rr += 1;
                    let client = tx.id.client;
                    ctx.send(target, AvaMsg::ClientRequest { tx, client });
                }
            }
        }
    }
}

impl<TM: Clone + WireSize> Actor<AvaMsg<TM>> for AggregateClients<TM>
where
    AvaMsg<TM>: SimMessage,
{
    fn on_start(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        ctx.set_timer(DRAIN_INTERVAL, TICK);
    }

    fn on_message(&mut self, _from: ReplicaId, msg: AvaMsg<TM>, ctx: &mut Context<'_, AvaMsg<TM>>) {
        match msg {
            AvaMsg::BrokerDeliver { acks, shed } => {
                for (tx, _) in acks {
                    self.complete(tx, ctx);
                }
                if !shed.is_empty() {
                    self.shed_seen += shed.len() as u64;
                    self.retry.extend(shed);
                    self.next_retry_at = ctx.now() + RETRY_BACKOFF;
                }
            }
            AvaMsg::ClientResponse { tx, .. } => self.complete(tx, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if kind != TICK {
            return;
        }
        ctx.set_timer(DRAIN_INTERVAL, TICK);
        let mut ops = if self.retry.is_empty() || ctx.now() < self.next_retry_at {
            Vec::new()
        } else {
            std::mem::take(&mut self.retry)
        };
        for (at, tx) in self.stream.drain_until(ctx.now()) {
            self.outstanding.insert(tx.id, (at, tx.kind.is_write()));
            ops.push(tx);
        }
        self.submit(ops, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_workload::{virtual_client_base, AggregateLoad};

    fn stream() -> AggregateStream {
        let load = AggregateLoad {
            virtual_clients: 1_000,
            offered_tps: 500,
            issue_for: Duration::from_secs(1),
            ..AggregateLoad::default()
        };
        AggregateStream::new(load, virtual_client_base(0), 3)
    }

    #[test]
    fn routes_need_targets() {
        let result = std::panic::catch_unwind(|| {
            AggregateClients::<()>::new(
                ReplicaId(3_000_000),
                ClusterId(0),
                stream(),
                Route::Direct(Vec::new()),
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn duplicate_acks_complete_once() {
        use ava_hotstuff::HotStuffMsg;
        use ava_simnet::{CostModel, LatencyModel, Simulation};
        let mut sim: Simulation<AvaMsg<HotStuffMsg>> =
            Simulation::new(1, LatencyModel::uniform(1.0), CostModel::zero());
        let node = ReplicaId(3_000_000);
        // ReplicaId(0) is never added: requests to it are dropped by the sim,
        // which is exactly what lets us ack by hand below.
        let agg: AggregateClients<HotStuffMsg> =
            AggregateClients::new(node, ClusterId(0), stream(), Route::Direct(vec![ReplicaId(0)]));
        sim.add_node(node, ava_types::Region::UsWest, 0, Box::new(agg));
        sim.run_for(Duration::from_millis(50));
        assert!(
            !sim.outputs().iter().any(|o| matches!(o, Output::TxCompleted { .. })),
            "nothing acked yet"
        );
        // A twin of the actor's stream tells us which ids it has issued by now.
        let tx = stream()
            .drain_until(Time::from_millis(40))
            .first()
            .map(|(_, tx)| tx.id)
            .expect("stream issues within 40 ms at 500 tps");
        // Ack the same issued transaction twice: one completion, not two.
        let now = sim.now();
        sim.external_send(
            ReplicaId(0),
            node,
            AvaMsg::ClientResponse { tx, is_write: true, value_len: 0 },
            now,
        );
        sim.external_send(
            ReplicaId(0),
            node,
            AvaMsg::ClientResponse { tx, is_write: true, value_len: 0 },
            now,
        );
        sim.run_for(Duration::from_millis(50));
        let completions = sim
            .outputs()
            .iter()
            .filter(|o| matches!(o, Output::TxCompleted { tx: t, .. } if *t == tx))
            .count();
        assert_eq!(completions, 1, "duplicate ack must complete exactly once");
    }
}
