//! The broker actor: accumulates virtual-client operations into certified
//! batches, submits them to its cluster's replicas, and fans the per-operation
//! acknowledgements back to the aggregate generator.

use ava_consensus::WireSize;
use ava_crypto::Keypair;
use ava_hamava::messages::{AvaMsg, TxBatch};
use ava_simnet::{Actor, Context, SimMessage};
use ava_types::{ClusterId, Duration, Output, ReplicaId, Time, Transaction, TxId};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::Arc;

const TICK: u64 = 1;

/// Configuration of one broker actor.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// The broker's own node id (also the signer id of its batches).
    pub node: ReplicaId,
    /// The cluster whose replicas it submits to.
    pub cluster: ClusterId,
    /// The aggregate generator its acks and shed operations go back to.
    pub aggregate: ReplicaId,
    /// Replicas of the cluster, tried round-robin.
    pub targets: Vec<ReplicaId>,
    /// Maximum operations per batch; a full batch flushes immediately.
    pub max_batch_ops: usize,
    /// A non-empty partial batch flushes after at most this long (also the
    /// cadence of ack fan-back and retry scans).
    pub flush_interval: Duration,
    /// Maximum unacknowledged batches; further flushes wait for replies.
    pub max_inflight: usize,
    /// Maximum queued operations; overflow is shed back to the generator.
    pub queue_cap: usize,
    /// Re-submit an unacknowledged batch to the next replica after this long.
    pub retry_timeout: Duration,
}

/// One submitted-but-unacknowledged batch.
struct Inflight {
    batch: Arc<TxBatch>,
    sent_at: Time,
}

/// The broker actor. Generic over the TOB message type only, like
/// [`ava_hamava::Client`], so it can share a simulation with any replica
/// flavour.
pub struct Broker<TM> {
    cfg: BrokerConfig,
    keypair: Keypair,
    /// Accepted operations waiting to be batched (bounded by `queue_cap`).
    queue: VecDeque<Transaction>,
    /// Submitted batches awaiting an admission reply, by batch id.
    inflight: HashMap<u64, Inflight>,
    /// Per-operation acks to fan back on the next tick.
    pending_acks: Vec<(TxId, bool)>,
    /// Shed operations to return on the next tick.
    pending_shed: Vec<Transaction>,
    /// Operations shed so far (monotonic, reported in [`Output::BrokerFlushed`]).
    shed_total: u64,
    next_batch_id: u64,
    /// Round-robin cursor over `targets`.
    rr: usize,
    _marker: PhantomData<TM>,
}

impl<TM> Broker<TM> {
    /// Create a broker; `keypair` must be registered in the deployment's key
    /// registry under `cfg.node` or every batch will fail verification.
    pub fn new(cfg: BrokerConfig, keypair: Keypair) -> Self {
        assert!(!cfg.targets.is_empty(), "broker needs at least one replica to submit to");
        assert!(cfg.max_batch_ops > 0 && cfg.max_inflight > 0);
        Broker {
            cfg,
            keypair,
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            pending_acks: Vec::new(),
            pending_shed: Vec::new(),
            shed_total: 0,
            next_batch_id: 0,
            rr: 0,
            _marker: PhantomData,
        }
    }

    /// Operations shed so far (for tests).
    pub fn shed_total(&self) -> u64 {
        self.shed_total
    }
}

impl<TM: Clone + WireSize> Broker<TM>
where
    AvaMsg<TM>: SimMessage,
{
    fn next_target(&mut self) -> ReplicaId {
        let target = self.cfg.targets[self.rr % self.cfg.targets.len()];
        self.rr += 1;
        target
    }

    /// Flush as many batches as the in-flight bound allows. Full batches always
    /// flush; a partial one only on the tick path (`allow_partial`), which is
    /// what bounds batching delay by `flush_interval`.
    fn try_flush(&mut self, allow_partial: bool, ctx: &mut Context<'_, AvaMsg<TM>>) {
        while self.inflight.len() < self.cfg.max_inflight && !self.queue.is_empty() {
            if self.queue.len() < self.cfg.max_batch_ops && !allow_partial {
                break;
            }
            let n = self.queue.len().min(self.cfg.max_batch_ops);
            let ops: Vec<Transaction> = self.queue.drain(..n).collect();
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            // One signature covers the whole batch — the amortization the tier
            // exists for.
            ctx.consume(ctx.costs().per_sign);
            let batch = Arc::new(TxBatch::new(self.cfg.node, id, ops, &self.keypair));
            let target = self.next_target();
            ctx.send(target, AvaMsg::BatchSubmit(Arc::clone(&batch)));
            self.inflight.insert(id, Inflight { batch, sent_at: ctx.now() });
            ctx.emit(Output::BrokerFlushed {
                broker: self.cfg.node,
                cluster: self.cfg.cluster,
                ops: n,
                queue: self.queue.len(),
                inflight: self.inflight.len(),
                shed_total: self.shed_total,
                at: ctx.now(),
            });
        }
    }

    /// Re-submit batches whose admission reply is overdue to the next replica.
    /// The replica side is idempotent per `(broker, batch id)` and the TOB pool
    /// dedups re-ordered operations by digest, so a duplicate admission cannot
    /// double-apply (it can double-ack; the generator dedups by transaction id).
    fn retry_overdue(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        let now = ctx.now();
        let overdue: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, inflight)| now.since(inflight.sent_at) >= self.cfg.retry_timeout)
            .map(|(id, _)| *id)
            .collect();
        for id in overdue {
            let target = self.next_target();
            let inflight = self.inflight.get_mut(&id).expect("collected above");
            inflight.sent_at = now;
            ctx.send(target, AvaMsg::BatchSubmit(Arc::clone(&inflight.batch)));
        }
    }

    /// Fan buffered acks and shed operations back to the aggregate generator,
    /// batched per tick (the demultiplexing direction of the tier).
    fn deliver(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if self.pending_acks.is_empty() && self.pending_shed.is_empty() {
            return;
        }
        let acks = std::mem::take(&mut self.pending_acks);
        let shed = std::mem::take(&mut self.pending_shed);
        ctx.send(self.cfg.aggregate, AvaMsg::BrokerDeliver { acks, shed });
    }
}

impl<TM: Clone + WireSize> Actor<AvaMsg<TM>> for Broker<TM>
where
    AvaMsg<TM>: SimMessage,
{
    fn on_start(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        ctx.set_timer(self.cfg.flush_interval, TICK);
    }

    fn on_message(&mut self, _from: ReplicaId, msg: AvaMsg<TM>, ctx: &mut Context<'_, AvaMsg<TM>>) {
        match msg {
            AvaMsg::BrokerSubmit { ops } => {
                for tx in ops {
                    if self.queue.len() < self.cfg.queue_cap {
                        self.queue.push_back(tx);
                    } else {
                        // Backpressure: bounced back rather than silently
                        // dropped, so the generator can retry.
                        self.shed_total += 1;
                        self.pending_shed.push(tx);
                    }
                }
                self.try_flush(false, ctx);
            }
            AvaMsg::BatchReply { batch, reads } => {
                if self.inflight.remove(&batch).is_some() {
                    self.pending_acks.extend(reads.into_iter().map(|tx| (tx, false)));
                    self.try_flush(false, ctx);
                }
            }
            // Per-operation write acks: the replica records the broker as the
            // submitting "client node", so committed writes come back here.
            AvaMsg::ClientResponse { tx, is_write, .. } => {
                self.pending_acks.push((tx, is_write));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if kind != TICK {
            return;
        }
        ctx.set_timer(self.cfg.flush_interval, TICK);
        self.try_flush(true, ctx);
        self.retry_overdue(ctx);
        self.deliver(ctx);
    }
}
