//! # ava-broker
//!
//! Broker/batch client tier for the Hamava reproduction: a middle tier between
//! clients and replicas that lets one deployment carry the offered load of
//! 10⁴–10⁶ clients without an actor per client.
//!
//! The tier has two actor kinds:
//!
//! - [`AggregateClients`] — one actor per cluster standing in for up to
//!   [`ava_workload::VIRTUAL_CLIENT_STRIDE`] open-loop *virtual clients*. It
//!   drains a deterministic [`ava_workload::AggregateStream`] of Poisson
//!   arrivals (attributed to Zipf-distributed virtual client ids) and routes
//!   them either through the broker tier or directly at replicas.
//! - [`Broker`] — accepts virtual-client submissions, accumulates them into
//!   size/time-bounded batches, signs each batch once ([`ava_hamava::TxBatch`])
//!   and submits it to a replica of its cluster, then demultiplexes the
//!   per-operation acks back to the aggregate generator. Backpressure is a
//!   bounded queue plus a bounded number of in-flight batches: overflow is
//!   shed back to the generator, which retries later.
//!
//! The replica side (batch verification, idempotent re-admission, per-op
//! commit trace) lives in `ava-hamava`; this crate owns only the tier's actors
//! and the [`attach`] helper that wires them into a built
//! [`ava_hamava::harness::Deployment`].

pub mod aggregate;
pub mod broker;

pub use aggregate::{AggregateClients, Route};
pub use ava_workload::{AggregateLoad, AggregateStream};
pub use broker::{Broker, BrokerConfig};

use ava_consensus::{TotalOrderBroadcast, WireSize};
use ava_hamava::harness::Deployment;
use ava_hamava::messages::AvaMsg;
use ava_simnet::SimMessage;
use ava_types::{Duration, ReplicaId};
use ava_workload::virtual_client_base;

/// First node id of the broker tier (client nodes live at 1 000 000 +,
/// replicas below that; see `ava_simnet::client_node_id`).
pub const BROKER_NODE_BASE: u32 = 2_000_000;

/// First node id of the aggregate virtual-client generators.
pub const AGGREGATE_NODE_BASE: u32 = 3_000_000;

/// The simulated node id of broker number `index` (global, across clusters).
pub fn broker_node_id(index: u32) -> ReplicaId {
    ReplicaId(BROKER_NODE_BASE + index)
}

/// The simulated node id of aggregate generator number `index` (one per
/// cluster, in cluster order).
pub fn aggregate_node_id(index: u32) -> ReplicaId {
    ReplicaId(AGGREGATE_NODE_BASE + index)
}

/// The arrival-stream seed of aggregate generator `index` in a deployment
/// seeded with `seed`. Derived from the deployment seed but independent of the
/// simulation's shared RNG, so the same `(seed, index)` produces the same
/// virtual-client arrival sequence whether the ops travel through brokers or
/// directly to replicas — the broker-vs-direct equivalence test pins this.
pub fn stream_seed(seed: u64, index: u32) -> u64 {
    seed ^ 0x6272_6f6b_6572_5f61 ^ ((index as u64) << 17)
}

/// Configuration of one broker tier: how many brokers front each cluster, the
/// batching bounds, the backpressure limits, and the aggregate load offered to
/// the tier (one generator per cluster).
#[derive(Clone, Debug)]
pub struct BrokerTier {
    /// Brokers per cluster. `0` keeps the aggregate generators but routes
    /// their operations directly at replicas, one request per operation — the
    /// baseline the broker path is compared against.
    pub brokers_per_cluster: usize,
    /// Maximum operations per batch; a full batch flushes immediately.
    pub max_batch_ops: usize,
    /// A non-empty partial batch flushes after at most this long.
    pub flush_interval: Duration,
    /// Maximum unacknowledged batches per broker; further flushes wait.
    pub max_inflight: usize,
    /// Maximum queued operations per broker; overflow is shed back to the
    /// generator (which retries later).
    pub queue_cap: usize,
    /// Re-submit an in-flight batch to another replica if no admission reply
    /// arrived within this time (covers a crashed or partitioned replica; the
    /// replica side admits idempotently per `(broker, batch id)` and the TOB
    /// pool dedups re-ordered operations by digest).
    pub retry_timeout: Duration,
    /// The offered aggregate load, per cluster.
    pub load: AggregateLoad,
}

impl Default for BrokerTier {
    fn default() -> Self {
        BrokerTier {
            brokers_per_cluster: 1,
            max_batch_ops: 100,
            flush_interval: Duration::from_millis(5),
            max_inflight: 4,
            queue_cap: 100_000,
            retry_timeout: Duration::from_secs(2),
            load: AggregateLoad::default(),
        }
    }
}

/// What [`attach`] added to the deployment, so callers can address the tier.
#[derive(Clone, Debug, Default)]
pub struct AttachedTier {
    /// Broker node ids, in cluster order.
    pub brokers: Vec<ReplicaId>,
    /// Aggregate-generator node ids, one per cluster.
    pub aggregates: Vec<ReplicaId>,
}

/// Wire a broker tier into a built deployment: per cluster, register and add
/// `tier.brokers_per_cluster` broker actors plus one aggregate virtual-client
/// generator offering `tier.load`. With zero brokers the generators submit
/// directly to replicas (per-operation requests), which is the baseline path.
pub fn attach<T>(deployment: &mut Deployment<T>, tier: &BrokerTier) -> AttachedTier
where
    T: TotalOrderBroadcast + 'static,
    T::Msg: Clone + WireSize + 'static,
    AvaMsg<T::Msg>: SimMessage,
{
    let seed = deployment.options().seed;
    let clusters = deployment.config.clusters.clone();
    let mut attached = AttachedTier::default();
    let mut broker_idx: u32 = 0;
    for (agg_idx, spec) in clusters.iter().enumerate() {
        let targets: Vec<ReplicaId> = spec.replicas.iter().map(|(id, _)| *id).collect();
        let region = spec.replicas.first().map(|(_, reg)| *reg).unwrap_or_default();
        let mut broker_nodes = Vec::new();
        for _ in 0..tier.brokers_per_cluster {
            let node = broker_node_id(broker_idx);
            broker_idx += 1;
            let keypair = deployment.registry.register(node);
            let cfg = BrokerConfig {
                node,
                cluster: spec.id,
                aggregate: aggregate_node_id(agg_idx as u32),
                targets: targets.clone(),
                max_batch_ops: tier.max_batch_ops,
                flush_interval: tier.flush_interval,
                max_inflight: tier.max_inflight,
                queue_cap: tier.queue_cap,
                retry_timeout: tier.retry_timeout,
            };
            let broker: Broker<T::Msg> = Broker::new(cfg, keypair);
            deployment.sim.add_node(node, region, spec.id.0, Box::new(broker));
            broker_nodes.push(node);
        }
        let route = if broker_nodes.is_empty() {
            Route::Direct(targets)
        } else {
            Route::Brokers(broker_nodes.clone())
        };
        let stream = AggregateStream::new(
            tier.load.clone(),
            virtual_client_base(agg_idx as u32),
            stream_seed(seed, agg_idx as u32),
        );
        let agg_node = aggregate_node_id(agg_idx as u32);
        let agg: AggregateClients<T::Msg> = AggregateClients::new(agg_node, spec.id, stream, route);
        deployment.sim.add_node(agg_node, region, spec.id.0, Box::new(agg));
        attached.brokers.extend(broker_nodes);
        attached.aggregates.push(agg_node);
    }
    attached
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_hamava::harness::{hotstuff_factory, Deployment, DeploymentOptions};
    use ava_types::{ClientId, Output, Region, SystemConfig, Time, TxId};
    use std::collections::BTreeMap;

    fn small_tier(brokers: usize) -> BrokerTier {
        BrokerTier {
            brokers_per_cluster: brokers,
            load: AggregateLoad {
                virtual_clients: 10_000,
                offered_tps: 1_000,
                issue_for: Duration::from_secs(2),
                ..AggregateLoad::default()
            },
            ..BrokerTier::default()
        }
    }

    fn run(tier: &BrokerTier, seed: u64) -> Vec<Output> {
        let config = SystemConfig::even_split_single_region(4, 1, Region::UsWest);
        let opts = DeploymentOptions { seed, clients_per_cluster: 0, ..Default::default() };
        let mut deployment = Deployment::build(config, opts, hotstuff_factory());
        attach(&mut deployment, tier);
        deployment.run_for(Duration::from_secs(6));
        deployment.take_outputs()
    }

    fn completed_ids(outputs: &[Output]) -> Vec<TxId> {
        let mut ids: Vec<TxId> = outputs
            .iter()
            .filter_map(|o| match o {
                Output::TxCompleted { tx, .. } => Some(*tx),
                _ => None,
            })
            .collect();
        ids.sort();
        ids
    }

    #[test]
    fn broker_tier_commits_and_acks_virtual_client_load() {
        let outputs = run(&small_tier(1), 7);
        let ids = completed_ids(&outputs);
        // ~1 000 tps for 2 s: expect the bulk of ~2 000 ops acked.
        assert!(ids.len() > 1_500, "only {} acks", ids.len());
        let mut unique = ids.clone();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate completions");
        assert!(outputs.iter().any(|o| matches!(o, Output::BrokerFlushed { .. })));
        assert!(outputs.iter().any(|o| matches!(o, Output::BatchOpCommitted { .. })));
        // Every acked write has exactly one commit trace.
        let mut commits: BTreeMap<TxId, usize> = BTreeMap::new();
        for o in &outputs {
            if let Output::BatchOpCommitted { tx, .. } = o {
                *commits.entry(*tx).or_insert(0) += 1;
            }
        }
        for o in &outputs {
            if let Output::TxCompleted { tx, is_write: true, .. } = o {
                assert_eq!(commits.get(tx), Some(&1), "write {tx:?} acked without one commit");
            }
        }
    }

    #[test]
    fn direct_mode_routes_without_brokers() {
        let outputs = run(&small_tier(0), 7);
        let ids = completed_ids(&outputs);
        assert!(ids.len() > 1_500, "only {} acks", ids.len());
        assert!(!outputs.iter().any(|o| matches!(o, Output::BrokerFlushed { .. })));
        assert!(!outputs.iter().any(|o| matches!(o, Output::BatchOpCommitted { .. })));
    }

    #[test]
    fn broker_runs_are_deterministic_per_seed() {
        assert_eq!(run(&small_tier(1), 11), run(&small_tier(1), 11));
        assert_ne!(
            completed_ids(&run(&small_tier(1), 11)),
            completed_ids(&run(&small_tier(1), 12))
        );
    }

    #[test]
    fn overload_sheds_and_recovers_without_duplicating_acks() {
        let mut tier = small_tier(1);
        // A deliberately tiny broker: 50-op queue, one in-flight batch, against
        // a hard burst — shedding must kick in, and shed ops must eventually
        // complete exactly once via the generator's retry path.
        tier.queue_cap = 50;
        tier.max_inflight = 1;
        tier.max_batch_ops = 25;
        tier.load.offered_tps = 20_000;
        tier.load.issue_for = Duration::from_millis(500);
        let outputs = run(&tier, 5);
        let shed = outputs
            .iter()
            .filter_map(|o| match o {
                Output::BrokerFlushed { shed_total, .. } => Some(*shed_total),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        assert!(shed > 0, "overload run never shed");
        let ids = completed_ids(&outputs);
        let mut unique = ids.clone();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate completions under shedding");
        assert!(ids.len() > 1_000, "only {} acks under overload", ids.len());
    }

    #[test]
    fn node_id_spaces_do_not_collide() {
        assert!(broker_node_id(999_999).0 < AGGREGATE_NODE_BASE);
        assert_ne!(stream_seed(42, 0), stream_seed(42, 1));
        assert_ne!(stream_seed(42, 0), stream_seed(43, 0));
        // Virtual-client response node ids (client_node_id of a virtual id)
        // are never used: batch acks go to the broker, direct acks to the
        // aggregate node. Guard the constant relation anyway.
        assert!(ava_workload::VIRTUAL_CLIENT_BASE > AGGREGATE_NODE_BASE);
        let _ = ClientId(0);
        let _ = Time::ZERO;
    }
}
