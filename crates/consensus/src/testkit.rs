//! In-memory test harness for [`TotalOrderBroadcast`] implementations.
//!
//! The harness instantiates one TOB per replica of a cluster, routes their messages
//! through a FIFO queue (optionally dropping messages to/from chosen replicas to
//! emulate crashes) and records deliveries and complaints. Protocol crates use it for
//! unit and property tests without pulling in the full simulator.

use crate::block::CommittedBlock;
use crate::tob::{TobAction, TotalOrderBroadcast};
use ava_types::{Duration, Operation, ReplicaId, Time, Timestamp};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// A deterministic, latency-free network of TOB instances.
pub struct LocalNet<T: TotalOrderBroadcast> {
    /// The instances, keyed by replica id.
    pub nodes: BTreeMap<ReplicaId, T>,
    /// Messages in flight: (from, to, msg).
    queue: VecDeque<(ReplicaId, ReplicaId, T::Msg)>,
    /// Blocks delivered per replica, in delivery order.
    pub delivered: BTreeMap<ReplicaId, Vec<CommittedBlock>>,
    /// Complaints emitted per replica.
    pub complaints: BTreeMap<ReplicaId, Vec<ReplicaId>>,
    /// Replicas whose in- and outbound messages are dropped (crashed).
    pub down: HashSet<ReplicaId>,
    /// Virtual time handed to the instances.
    pub now: Time,
}

impl<T: TotalOrderBroadcast> LocalNet<T> {
    /// Build a network from `(replica, instance)` pairs.
    pub fn new(nodes: impl IntoIterator<Item = (ReplicaId, T)>) -> Self {
        let nodes: BTreeMap<_, _> = nodes.into_iter().collect();
        let delivered = nodes.keys().map(|&id| (id, Vec::new())).collect();
        let complaints = nodes.keys().map(|&id| (id, Vec::new())).collect();
        LocalNet {
            nodes,
            queue: VecDeque::new(),
            delivered,
            complaints,
            down: HashSet::new(),
            now: Time::ZERO,
        }
    }

    /// Ask replica `at` to broadcast `op`.
    pub fn broadcast(&mut self, at: ReplicaId, op: Operation) {
        let now = self.now;
        let actions = self.nodes.get_mut(&at).expect("unknown replica").broadcast(op, now);
        self.apply(at, actions);
    }

    /// Advance virtual time and tick every live node.
    pub fn tick(&mut self, advance: Duration) {
        self.now = self.now + advance;
        let ids: Vec<ReplicaId> = self.nodes.keys().copied().collect();
        let now = self.now;
        for id in ids {
            if self.down.contains(&id) {
                continue;
            }
            let actions = self.nodes.get_mut(&id).expect("node").on_tick(now);
            self.apply(id, actions);
        }
    }

    /// Install `leader` with timestamp `ts` at every live node.
    pub fn install_leader(&mut self, leader: ReplicaId, ts: Timestamp) {
        let ids: Vec<ReplicaId> = self.nodes.keys().copied().collect();
        let now = self.now;
        for id in ids {
            if self.down.contains(&id) {
                continue;
            }
            let actions = self.nodes.get_mut(&id).expect("node").new_leader(leader, ts, now);
            self.apply(id, actions);
        }
    }

    /// Deliver queued messages until the network is quiescent (or `max_steps` is
    /// reached, to guard against livelock in broken protocols).
    pub fn run_to_quiescence(&mut self, max_steps: usize) {
        for _ in 0..max_steps {
            let Some((from, to, msg)) = self.queue.pop_front() else {
                return;
            };
            if self.down.contains(&from) || self.down.contains(&to) {
                continue;
            }
            let now = self.now;
            let Some(node) = self.nodes.get_mut(&to) else {
                continue;
            };
            let actions = node.on_message(from, msg, now);
            self.apply(to, actions);
        }
        assert!(self.queue.is_empty(), "run_to_quiescence exhausted max_steps");
    }

    /// Blocks delivered by `replica`.
    pub fn delivered_at(&self, replica: ReplicaId) -> &[CommittedBlock] {
        &self.delivered[&replica]
    }

    /// Operations delivered by `replica`, flattened across blocks.
    pub fn delivered_ops(&self, replica: ReplicaId) -> Vec<Operation> {
        self.delivered[&replica].iter().flat_map(|b| b.block.ops.clone()).collect()
    }

    fn apply(&mut self, at: ReplicaId, actions: Vec<TobAction<T::Msg>>) {
        for action in actions {
            match action {
                TobAction::Send { to, msg } => self.queue.push_back((at, to, msg)),
                TobAction::Deliver(block) => self.delivered.get_mut(&at).expect("node").push(block),
                TobAction::Complain { leader } => {
                    self.complaints.get_mut(&at).expect("node").push(leader)
                }
                TobAction::Consume(_) => {}
            }
        }
    }
}
