//! Shared bookkeeping for total-order-broadcast implementations: the leader's pool
//! of pending operations, each replica's record of its own undelivered broadcasts,
//! and the leader-liveness watchdog.

use ava_crypto::Digest;
use ava_types::{Duration, Operation, Time};
use std::collections::{HashSet, VecDeque};

/// Operation pool and liveness watchdog shared by `ava-hotstuff` and `ava-bftsmart`.
#[derive(Debug, Default)]
pub struct PendingPool {
    /// Operations waiting to be proposed (leader role).
    pending: VecDeque<Operation>,
    /// Digests of operations ever enqueued, to deduplicate re-forwarded values.
    seen: HashSet<Digest>,
    /// Operations this replica broadcast that have not been delivered yet.
    my_undelivered: Vec<Operation>,
    /// When the oldest of `my_undelivered` was broadcast (watchdog reference point).
    waiting_since: Option<Time>,
    /// Whether the watchdog already fired for the current waiting period.
    complained: bool,
}

impl PendingPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an operation this replica asked to have ordered.
    pub fn record_my_broadcast(&mut self, op: Operation, now: Time) {
        if self.my_undelivered.is_empty() {
            self.waiting_since = Some(now);
            self.complained = false;
        }
        self.my_undelivered.push(op);
    }

    /// Operations this replica broadcast that are still undelivered (re-sent to a new
    /// leader after a leader change).
    pub fn my_undelivered(&self) -> &[Operation] {
        &self.my_undelivered
    }

    /// Add an operation to the leader-side pending pool, deduplicating by digest.
    /// Returns true if the operation was new.
    pub fn enqueue(&mut self, op: Operation) -> bool {
        let digest = Digest::of(&op);
        if self.seen.insert(digest) {
            self.pending.push_back(op);
            true
        } else {
            false
        }
    }

    /// Number of pending (not yet proposed) operations.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Take up to `max` operations to form the next block.
    pub fn take_batch(&mut self, max: usize) -> Vec<Operation> {
        let n = max.min(self.pending.len());
        self.pending.drain(..n).collect()
    }

    /// Put operations back at the front of the pending queue (e.g. when a proposal is
    /// abandoned by a leader change).
    pub fn requeue_front(&mut self, ops: Vec<Operation>) {
        for op in ops.into_iter().rev() {
            self.pending.push_front(op);
        }
    }

    /// Record that a block's operations were delivered: clears them from this
    /// replica's undelivered list and resets the watchdog if nothing is left waiting.
    pub fn mark_delivered(&mut self, ops: &[Operation], now: Time) {
        self.my_undelivered.retain(|mine| !ops.contains(mine));
        if self.my_undelivered.is_empty() {
            self.waiting_since = None;
            self.complained = false;
        } else {
            self.waiting_since = Some(now);
        }
    }

    /// Whether the watchdog should fire: this replica has been waiting longer than
    /// `timeout` for one of its own operations to be delivered, and has not already
    /// complained for this waiting period.
    pub fn should_complain(&mut self, now: Time, timeout: Duration) -> bool {
        match self.waiting_since {
            Some(since) if !self.complained && now.since(since) >= timeout => {
                self.complained = true;
                true
            }
            _ => false,
        }
    }

    /// Reset the watchdog reference point (after a leader change gives the new leader
    /// a fresh grace period).
    pub fn reset_watch(&mut self, now: Time) {
        if !self.my_undelivered.is_empty() {
            self.waiting_since = Some(now);
        }
        self.complained = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{ClientId, Transaction};

    fn op(seq: u64) -> Operation {
        Operation::Trans(Transaction::write(ClientId(0), seq, seq, 128))
    }

    #[test]
    fn enqueue_deduplicates() {
        let mut pool = PendingPool::new();
        assert!(pool.enqueue(op(1)));
        assert!(!pool.enqueue(op(1)));
        assert!(pool.enqueue(op(2)));
        assert_eq!(pool.pending_len(), 2);
    }

    #[test]
    fn take_batch_respects_max_and_order() {
        let mut pool = PendingPool::new();
        for i in 0..5 {
            pool.enqueue(op(i));
        }
        let batch = pool.take_batch(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], op(0));
        assert_eq!(pool.pending_len(), 2);
        pool.requeue_front(batch);
        assert_eq!(pool.take_batch(1)[0], op(0));
    }

    #[test]
    fn watchdog_fires_once_per_waiting_period() {
        let mut pool = PendingPool::new();
        pool.record_my_broadcast(op(1), Time::from_secs(0));
        let timeout = Duration::from_secs(5);
        assert!(!pool.should_complain(Time::from_secs(4), timeout));
        assert!(pool.should_complain(Time::from_secs(5), timeout));
        assert!(!pool.should_complain(Time::from_secs(6), timeout));
        pool.reset_watch(Time::from_secs(6));
        assert!(pool.should_complain(Time::from_secs(11), timeout));
    }

    #[test]
    fn delivery_clears_undelivered_and_watchdog() {
        let mut pool = PendingPool::new();
        pool.record_my_broadcast(op(1), Time::from_secs(0));
        pool.record_my_broadcast(op(2), Time::from_secs(0));
        pool.mark_delivered(&[op(1)], Time::from_secs(1));
        assert_eq!(pool.my_undelivered(), &[op(2)]);
        pool.mark_delivered(&[op(2)], Time::from_secs(2));
        assert!(pool.my_undelivered().is_empty());
        assert!(!pool.should_complain(Time::from_secs(100), Duration::from_secs(5)));
    }
}
