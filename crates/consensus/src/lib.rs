//! # ava-consensus
//!
//! The consensus-agnostic boundary of Hamava: a [`TotalOrderBroadcast`] (TOB)
//! abstraction that every local replication protocol implements, plus the block and
//! certificate types shared between implementations.
//!
//! The paper instantiates Hamava with HotStuff (AVA-HOTSTUFF) and BFT-SMaRt
//! (AVA-BFTSMART); this workspace provides `ava-hotstuff` and `ava-bftsmart` as the
//! corresponding implementations of this trait, and `ava-hamava`'s replica is generic
//! over it. The abstraction follows Alg. 7 of the paper: `broadcast` / `deliver`
//! requests and responses, plus `new-leader` / `complain` to integrate with the
//! leader-election module.

pub mod block;
pub mod pool;
pub mod testkit;
pub mod tob;

pub use block::{Block, CommittedBlock};
pub use pool::PendingPool;
pub use tob::{FaultMode, TobAction, TobConfig, TotalOrderBroadcast, WireSize};
