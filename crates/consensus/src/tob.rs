//! The [`TotalOrderBroadcast`] trait (the paper's `tob` module, Alg. 7) and its
//! action/configuration types.

use crate::block::CommittedBlock;
use ava_types::{ClusterId, Duration, Operation, ReplicaId, Time, Timestamp};

/// Approximate wire size of a protocol message, used by the simulator's latency and
/// CPU cost models.
pub trait WireSize {
    /// Size of the message in bytes when encoded for the wire.
    fn wire_size(&self) -> usize;
}

/// Side effects requested by a total-order-broadcast state machine.
#[derive(Clone, Debug)]
pub enum TobAction<M> {
    /// Send a protocol message to a replica of the local cluster.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: M,
    },
    /// Deliver a committed block (uniform order across correct replicas).
    Deliver(CommittedBlock),
    /// Complain about the current leader (forwarded to the leader election module).
    Complain {
        /// The leader being complained about.
        leader: ReplicaId,
    },
    /// Charge the hosting replica CPU time (signature checks, hashing).
    Consume(Duration),
}

/// Fault behaviours a test or experiment can inject into a TOB instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultMode {
    /// Behave correctly.
    #[default]
    Correct,
    /// When leader, never propose blocks (crash-like leader misbehaviour confined to
    /// the local protocol; used by leader-failure experiments).
    SilentLeader,
}

/// Static configuration of a TOB instance.
#[derive(Clone, Debug)]
pub struct TobConfig {
    /// The cluster this instance replicates for.
    pub cluster: ClusterId,
    /// The replica hosting this instance.
    pub me: ReplicaId,
    /// Current members of the cluster (kept up to date across reconfigurations).
    pub members: Vec<ReplicaId>,
    /// Maximum number of operations per block.
    pub max_block_size: usize,
    /// Leader liveness timeout: if a broadcast value is not delivered within this
    /// duration the instance emits a [`TobAction::Complain`].
    pub timeout: Duration,
    /// Modelled CPU cost of verifying one signature.
    pub verify_cost: Duration,
    /// Modelled CPU cost of producing one signature.
    pub sign_cost: Duration,
}

impl TobConfig {
    /// A config with paper-like defaults for the given cluster membership.
    pub fn new(cluster: ClusterId, me: ReplicaId, members: Vec<ReplicaId>) -> Self {
        TobConfig {
            cluster,
            me,
            members,
            max_block_size: 100,
            timeout: Duration::from_secs(20),
            verify_cost: Duration::from_micros(40),
            sign_cost: Duration::from_micros(20),
        }
    }

    /// Failure threshold `f = ⌊(n−1)/3⌋` for the current membership.
    pub fn f(&self) -> usize {
        if self.members.is_empty() {
            0
        } else {
            (self.members.len() - 1) / 3
        }
    }

    /// Quorum size `2f + 1` for the current membership.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }
}

/// A local total-order broadcast: the abstraction Hamava is parametric over.
///
/// Implementations are sans-I/O state machines: every entry point returns the actions
/// the caller (the Hamava replica, or a test harness) must carry out.
///
/// Both the protocol state and its messages must be `Send`: the parallel run
/// executor (`ava_scenario::parallel`) moves whole deployments — replicas with
/// their embedded TOB instances and in-flight messages — onto worker threads.
/// Nothing ever runs a single TOB concurrently, so `Sync` is not required.
pub trait TotalOrderBroadcast: Send {
    /// The protocol's wire message type.
    type Msg: Clone + WireSize + Send;

    /// Human-readable protocol name (used in reports: "HotStuff", "BFT-SMaRt").
    fn name(&self) -> &'static str;

    /// Request to order `op` (Alg. 7 line 16). The value reaches the current leader
    /// and is eventually delivered at every correct replica in a uniform order.
    fn broadcast(&mut self, op: Operation, now: Time) -> Vec<TobAction<Self::Msg>>;

    /// Handle a protocol message from `from`.
    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: Self::Msg,
        now: Time,
    ) -> Vec<TobAction<Self::Msg>>;

    /// Periodic tick: drives batching, retransmission and leader liveness checks.
    fn on_tick(&mut self, now: Time) -> Vec<TobAction<Self::Msg>>;

    /// Install a new leader elected with timestamp `ts` (Alg. 7 `new-leader`).
    fn new_leader(
        &mut self,
        leader: ReplicaId,
        ts: Timestamp,
        now: Time,
    ) -> Vec<TobAction<Self::Msg>>;

    /// Update the cluster membership after a reconfiguration took effect.
    fn set_membership(&mut self, members: Vec<ReplicaId>);

    /// The leader this instance currently believes in.
    fn leader(&self) -> ReplicaId;

    /// Inject a fault behaviour (tests and failure experiments only).
    fn set_fault_mode(&mut self, mode: FaultMode);

    /// Discard all volatile protocol state, as a process that crashed and lost its
    /// memory would: pending operations, in-flight decisions, vote bookkeeping and
    /// delivery cursors. Configuration (cluster, membership view, cost parameters)
    /// is retained; the caller re-installs leader context via
    /// [`TotalOrderBroadcast::new_leader`] once recovery establishes it. After a
    /// reset the instance must accept whatever height the cluster proposes next.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_thresholds() {
        let members: Vec<ReplicaId> = (0..7).map(ReplicaId).collect();
        let cfg = TobConfig::new(ClusterId(0), ReplicaId(0), members);
        assert_eq!(cfg.f(), 2);
        assert_eq!(cfg.quorum(), 5);
        let empty = TobConfig::new(ClusterId(0), ReplicaId(0), vec![]);
        assert_eq!(empty.f(), 0);
        assert_eq!(empty.quorum(), 1);
    }

    #[test]
    fn default_fault_mode_is_correct() {
        assert_eq!(FaultMode::default(), FaultMode::Correct);
    }
}
