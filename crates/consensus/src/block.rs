//! Blocks: the unit of agreement of the local total-order broadcast.
//!
//! A block is a batch of operations proposed by the cluster leader at a given height.
//! Once a quorum of the cluster signs it, the block plus its [`QuorumCert`] forms a
//! [`CommittedBlock`], which is exactly what Stage 2 ships to other clusters ("each
//! operation is paired with a certificate of consensus", §II-A).
//!
//! Blocks are immutable once built (construct via [`Block::new`]) and memoise their
//! digest and wire size: proposals travel as `Arc<Block>`, so every replica that
//! receives a clone of the same proposal shares one digest computation instead of
//! re-hashing the full batch (see `DESIGN.md` §4).

use ava_crypto::{Digest, QuorumCert};
use ava_types::{ClusterId, Encode, EncodeSink, Operation, ReplicaId};
use std::sync::{Arc, OnceLock};

/// A proposed batch of operations.
///
/// The payload fields are public for reading; treat a constructed block as
/// immutable — `digest()` and `wire_size()` memoise their first result, so mutating
/// `ops` after construction would make the caches stale.
#[derive(Clone)]
pub struct Block {
    /// The cluster in which the block was proposed.
    pub cluster: ClusterId,
    /// Consecutive height within the cluster's local log.
    pub height: u64,
    /// The replica that proposed the block.
    pub proposer: ReplicaId,
    /// The operations, in the proposed order.
    pub ops: Vec<Operation>,
    /// Memoised canonical digest (shared by all clones made after first use).
    digest_cache: OnceLock<Digest>,
    /// Memoised approximate wire size.
    wire_size_cache: OnceLock<usize>,
}

impl Block {
    /// Build a block from its parts.
    pub fn new(cluster: ClusterId, height: u64, proposer: ReplicaId, ops: Vec<Operation>) -> Self {
        Block {
            cluster,
            height,
            proposer,
            ops,
            digest_cache: OnceLock::new(),
            wire_size_cache: OnceLock::new(),
        }
    }

    /// Canonical digest of the block (what votes and certificates sign).
    /// Computed once and memoised.
    pub fn digest(&self) -> Digest {
        *self.digest_cache.get_or_init(|| Digest::of(self))
    }

    /// Number of transactions in the block (control operations — reconfiguration
    /// sets, round-cut markers — are not counted).
    pub fn tx_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Operation::Trans(_))).count()
    }

    /// Approximate wire size of the block in bytes. Computed once and memoised.
    pub fn wire_size(&self) -> usize {
        *self.wire_size_cache.get_or_init(|| {
            64 + self
                .ops
                .iter()
                .map(|o| match o {
                    Operation::Trans(t) => t.payload_size as usize + 32,
                    Operation::ReconfigSet { recs, .. } => recs.len() * 64 + 40,
                    Operation::RoundCut { .. } => 16,
                })
                .sum::<usize>()
        })
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.cluster == other.cluster
            && self.height == other.height
            && self.proposer == other.proposer
            && self.ops == other.ops
    }
}

impl Eq for Block {}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("cluster", &self.cluster)
            .field("height", &self.height)
            .field("proposer", &self.proposer)
            .field("ops", &self.ops)
            .finish()
    }
}

impl Encode for Block {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.cluster.encode(out);
        self.height.encode(out);
        self.proposer.encode(out);
        self.ops.encode(out);
    }
}

/// A block together with the quorum certificate that committed it.
///
/// The block is `Arc`-shared: a committed block flows from the local TOB into the
/// round package and from there to every remote replica, and none of those hops
/// needs its own copy of the operation batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommittedBlock {
    /// The committed block.
    pub block: Arc<Block>,
    /// Quorum certificate over the block digest, signed by the block's cluster.
    pub cert: QuorumCert,
}

impl CommittedBlock {
    /// Verify the certificate against a membership view of the originating cluster.
    ///
    /// `members` and `quorum` must come from the verifier's *current* membership map
    /// for `block.cluster` — this is the heterogeneity-critical check discussed in
    /// §II-B of the paper.
    pub fn verify(
        &self,
        registry: &ava_crypto::KeyRegistry,
        members: &[ReplicaId],
        quorum: usize,
    ) -> bool {
        self.cert.cluster == self.block.cluster
            && self.cert.is_valid(registry, &self.block.digest(), members, quorum)
    }

    /// Approximate wire size (block + signatures).
    pub fn wire_size(&self) -> usize {
        self.block.wire_size() + self.cert.signature_count() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_crypto::{KeyRegistry, SigSet};
    use ava_types::{ClientId, Transaction};

    /// The `Arc`-shared payloads must stay thread-safe (`OnceLock`/`Mutex` memos,
    /// not `Cell`/`RefCell`) so future parallel drivers can move deployments and
    /// messages across threads.
    #[test]
    fn shared_payloads_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Block>();
        assert_send_sync::<CommittedBlock>();
        assert_send_sync::<QuorumCert>();
    }

    fn block(n_tx: usize) -> Block {
        Block::new(
            ClusterId(0),
            3,
            ReplicaId(1),
            (0..n_tx)
                .map(|i| {
                    Operation::Trans(Transaction::write(ClientId(0), i as u64, i as u64, 1024))
                })
                .collect(),
        )
    }

    #[test]
    fn digest_changes_with_content() {
        assert_ne!(block(2).digest(), block(3).digest());
        assert_eq!(block(2).digest(), block(2).digest());
    }

    #[test]
    fn cached_digest_matches_fresh_computation() {
        let b = block(5);
        let first = b.digest();
        // Second call hits the memo; an identical uncached block must agree.
        assert_eq!(first, b.digest());
        assert_eq!(first, block(5).digest());
        assert_eq!(first, Digest::of(&b));
    }

    #[test]
    fn clones_share_the_memoised_digest() {
        let b = block(4);
        let d = b.digest();
        let c = b.clone();
        assert_eq!(c.digest(), d);
    }

    #[test]
    fn wire_size_tracks_payloads() {
        assert!(block(10).wire_size() > 10 * 1024);
        assert!(block(1).wire_size() < block(10).wire_size());
    }

    #[test]
    fn committed_block_verification_uses_current_quorum() {
        let reg = KeyRegistry::new();
        let kps: Vec<_> = (0..4).map(|i| reg.register(ReplicaId(i))).collect();
        let members: Vec<ReplicaId> = (0..4).map(ReplicaId).collect();
        let b = block(2);
        let digest = b.digest();
        let sigs: SigSet = kps[..3].iter().map(|kp| kp.sign(&digest)).collect();
        let cb = CommittedBlock {
            block: Arc::new(b),
            cert: QuorumCert::new(ClusterId(0), digest, sigs),
        };
        assert!(cb.verify(&reg, &members, 3));
        // With a grown cluster (quorum 5) the same certificate no longer validates.
        let grown: Vec<ReplicaId> = (0..7).map(ReplicaId).collect();
        assert!(!cb.verify(&reg, &grown, 5));
    }

    #[test]
    fn verification_rejects_mismatched_cluster() {
        let reg = KeyRegistry::new();
        let kp = reg.register(ReplicaId(0));
        let b = block(1);
        let digest = b.digest();
        let sigs: SigSet = [kp.sign(&digest)].into_iter().collect();
        let cb = CommittedBlock {
            block: Arc::new(b),
            cert: QuorumCert::new(ClusterId(9), digest, sigs),
        };
        assert!(!cb.verify(&reg, &[ReplicaId(0)], 1));
    }
}
