//! # ava-hotstuff
//!
//! A from-scratch implementation of (basic, non-pipelined) HotStuff used as the local
//! total-order broadcast of AVA-HOTSTUFF.
//!
//! Per decision the protocol runs the four HotStuff phases — *prepare*, *pre-commit*,
//! *commit*, *decide* — each consisting of a leader broadcast followed by replica
//! votes back to the leader, i.e. `O(8·n)` messages per decision (Table I of the
//! paper) and four round trips of latency (the paper's E2 notes "local ordering
//! involves 4 rounds of messages").
//!
//! ## Simplifications relative to production HotStuff
//!
//! * Blocks are decided one at a time (no pipelining/chaining); Hamava drives one
//!   batch per round, so pipelining would not change the round structure.
//! * Votes sign the block digest in every phase, so the final quorum certificate is
//!   directly the cross-cluster commit certificate Hamava ships in Stage 2.
//! * The pacemaker is externalised: liveness complaints are reported through
//!   [`TobAction::Complain`] and leader changes arrive through
//!   [`TotalOrderBroadcast::new_leader`], matching Hamava's leader-election module
//!   (Alg. 8/9).
//!
//! These simplifications preserve the message/latency complexity that the paper's
//! evaluation depends on, which is what this reproduction needs from the substrate.

use ava_consensus::{
    Block, CommittedBlock, FaultMode, PendingPool, TobAction, TobConfig, TotalOrderBroadcast,
    WireSize,
};
use ava_crypto::{Digest, KeyRegistry, Keypair, QuorumCert, SigSet, Signature};
use ava_types::{Operation, ReplicaId, Time, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// The HotStuff phases.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// Leader proposes a block; replicas vote on it.
    Prepare,
    /// Leader relays the prepare QC; replicas vote again.
    PreCommit,
    /// Leader relays the pre-commit QC; replicas vote again.
    Commit,
    /// Leader relays the commit QC; replicas deliver.
    Decide,
}

impl Phase {
    fn next(self) -> Option<Phase> {
        match self {
            Phase::Prepare => Some(Phase::PreCommit),
            Phase::PreCommit => Some(Phase::Commit),
            Phase::Commit => Some(Phase::Decide),
            Phase::Decide => None,
        }
    }
}

/// HotStuff wire messages.
#[derive(Clone, Debug)]
pub enum HotStuffMsg {
    /// A replica forwards an operation to the leader for ordering.
    Forward(Operation),
    /// Leader proposal for the `Prepare` phase. The block is `Arc`-shared: the
    /// leader's broadcast clones a pointer per member, not the operation batch.
    Proposal {
        /// The proposed block.
        block: Arc<Block>,
        /// Leader timestamp the proposal belongs to.
        ts: u64,
    },
    /// Leader phase message carrying the quorum certificate of the previous phase.
    PhaseCert {
        /// The phase this message starts (`PreCommit`, `Commit` or `Decide`).
        phase: Phase,
        /// Height of the block.
        height: u64,
        /// Digest of the block.
        digest: Digest,
        /// Signatures collected in the previous phase.
        justify: SigSet,
        /// Leader timestamp.
        ts: u64,
    },
    /// Replica vote sent to the leader.
    Vote {
        /// The phase being voted in.
        phase: Phase,
        /// Height of the block.
        height: u64,
        /// Digest of the block.
        digest: Digest,
        /// The voter's signature over the block digest.
        sig: Signature,
        /// Leader timestamp.
        ts: u64,
    },
}

impl WireSize for HotStuffMsg {
    fn wire_size(&self) -> usize {
        match self {
            HotStuffMsg::Forward(op) => match op {
                Operation::Trans(t) => t.payload_size as usize + 48,
                Operation::ReconfigSet { recs, .. } => recs.len() * 64 + 56,
                Operation::RoundCut { .. } => 32,
            },
            HotStuffMsg::Proposal { block, .. } => block.wire_size(),
            HotStuffMsg::PhaseCert { justify, .. } => 96 + justify.len() * 48,
            HotStuffMsg::Vote { .. } => 120,
        }
    }
}

/// State the leader keeps for the block currently being decided.
#[derive(Debug)]
struct InFlight {
    block: Arc<Block>,
    digest: Digest,
    phase: Phase,
    votes: SigSet,
}

/// The HotStuff total-order broadcast state machine for one replica.
pub struct HotStuff {
    cfg: TobConfig,
    keypair: Keypair,
    registry: KeyRegistry,
    leader: ReplicaId,
    ts: u64,
    fault: FaultMode,
    pool: PendingPool,
    /// Leader-side: block currently going through the phases.
    in_flight: Option<InFlight>,
    /// Replica-side: blocks received in `Prepare`, keyed by digest, so that the
    /// `Decide` phase can deliver the full block contents.
    known_blocks: HashMap<Digest, Arc<Block>>,
    /// Next height to propose / accept.
    next_height: u64,
    /// Height of the last delivered block.
    delivered_height: Option<u64>,
    /// Replica-side: the phase this replica last voted in per height (prevents double
    /// voting within a timestamp).
    voted: HashMap<(u64, Phase, u64), ()>,
}

impl HotStuff {
    /// Create a HotStuff instance for `cfg.me`, initially led by `leader`.
    pub fn new(cfg: TobConfig, keypair: Keypair, registry: KeyRegistry, leader: ReplicaId) -> Self {
        HotStuff {
            cfg,
            keypair,
            registry,
            leader,
            ts: 0,
            fault: FaultMode::Correct,
            pool: PendingPool::new(),
            in_flight: None,
            known_blocks: HashMap::new(),
            next_height: 0,
            delivered_height: None,
            voted: HashMap::new(),
        }
    }

    fn is_leader(&self) -> bool {
        self.leader == self.cfg.me
    }

    fn broadcast_to_members(&self, msg: HotStuffMsg, out: &mut Vec<TobAction<HotStuffMsg>>) {
        for &member in &self.cfg.members {
            out.push(TobAction::Send { to: member, msg: msg.clone() });
        }
    }

    /// Leader: propose the next block if idle and work is pending.
    fn maybe_propose(&mut self, out: &mut Vec<TobAction<HotStuffMsg>>) {
        if !self.is_leader()
            || self.fault == FaultMode::SilentLeader
            || self.in_flight.is_some()
            || self.pool.pending_len() == 0
        {
            return;
        }
        let ops = self.pool.take_batch(self.cfg.max_block_size);
        let block = Arc::new(Block::new(self.cfg.cluster, self.next_height, self.cfg.me, ops));
        let digest = block.digest();
        out.push(TobAction::Consume(self.cfg.sign_cost));
        self.in_flight = Some(InFlight {
            block: Arc::clone(&block),
            digest,
            phase: Phase::Prepare,
            votes: SigSet::new(),
        });
        self.broadcast_to_members(HotStuffMsg::Proposal { block, ts: self.ts }, out);
    }

    /// Replica: vote for `digest` in `phase`.
    fn vote(
        &mut self,
        phase: Phase,
        height: u64,
        digest: Digest,
        out: &mut Vec<TobAction<HotStuffMsg>>,
    ) {
        if self.voted.contains_key(&(height, phase, self.ts)) {
            return;
        }
        self.voted.insert((height, phase, self.ts), ());
        out.push(TobAction::Consume(self.cfg.sign_cost));
        let sig = self.keypair.sign(&digest);
        out.push(TobAction::Send {
            to: self.leader,
            msg: HotStuffMsg::Vote { phase, height, digest, sig, ts: self.ts },
        });
    }

    /// Deliver a block once the decide certificate is known.
    fn deliver(
        &mut self,
        block: Arc<Block>,
        cert: QuorumCert,
        now: Time,
        out: &mut Vec<TobAction<HotStuffMsg>>,
    ) {
        if self.delivered_height.is_some_and(|h| h >= block.height) {
            return;
        }
        self.delivered_height = Some(block.height);
        self.next_height = block.height + 1;
        self.pool.mark_delivered(&block.ops, now);
        self.known_blocks.remove(&cert.digest);
        out.push(TobAction::Deliver(CommittedBlock { block, cert }));
    }
}

impl TotalOrderBroadcast for HotStuff {
    type Msg = HotStuffMsg;

    fn name(&self) -> &'static str {
        "HotStuff"
    }

    fn broadcast(&mut self, op: Operation, now: Time) -> Vec<TobAction<HotStuffMsg>> {
        let mut out = Vec::new();
        self.pool.record_my_broadcast(op.clone(), now);
        if self.is_leader() {
            self.pool.enqueue(op);
            self.maybe_propose(&mut out);
        } else {
            out.push(TobAction::Send { to: self.leader, msg: HotStuffMsg::Forward(op) });
        }
        out
    }

    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: HotStuffMsg,
        now: Time,
    ) -> Vec<TobAction<HotStuffMsg>> {
        let mut out = Vec::new();
        match msg {
            HotStuffMsg::Forward(op) => {
                if self.is_leader() {
                    self.pool.enqueue(op);
                    self.maybe_propose(&mut out);
                }
            }
            HotStuffMsg::Proposal { block, ts } => {
                if from != self.leader || ts != self.ts || block.height < self.next_height {
                    return out;
                }
                // Charge hashing/validation of the proposal.
                out.push(TobAction::Consume(self.cfg.verify_cost));
                let digest = block.digest();
                let height = block.height;
                self.known_blocks.insert(digest, block);
                self.vote(Phase::Prepare, height, digest, &mut out);
            }
            HotStuffMsg::PhaseCert { phase, height, digest, justify, ts } => {
                if from != self.leader || ts != self.ts {
                    return out;
                }
                // Verify the quorum certificate of the previous phase.
                out.push(TobAction::Consume(
                    self.cfg.verify_cost.saturating_mul(justify.len() as u64),
                ));
                let valid = justify.count_valid(&self.registry, &digest, &self.cfg.members)
                    >= self.cfg.quorum();
                if !valid {
                    return out;
                }
                match phase {
                    Phase::PreCommit | Phase::Commit => {
                        self.vote(phase, height, digest, &mut out);
                    }
                    Phase::Decide => {
                        if let Some(block) = self.known_blocks.get(&digest).cloned() {
                            let cert = QuorumCert::new(self.cfg.cluster, digest, justify);
                            self.deliver(block, cert, now, &mut out);
                        }
                    }
                    Phase::Prepare => {}
                }
            }
            HotStuffMsg::Vote { phase, height, digest, sig, ts } => {
                if !self.is_leader() || ts != self.ts {
                    return out;
                }
                let Some(inflight) = self.in_flight.as_mut() else {
                    return out;
                };
                if inflight.phase != phase
                    || inflight.digest != digest
                    || inflight.block.height != height
                {
                    return out;
                }
                out.push(TobAction::Consume(self.cfg.verify_cost));
                if !self.registry.verify(&digest, &sig) || !self.cfg.members.contains(&from) {
                    return out;
                }
                inflight.votes.insert(sig);
                if inflight.votes.len() >= self.cfg.quorum() {
                    let justify = std::mem::take(&mut inflight.votes);
                    let next = inflight.phase.next().expect("Decide collects no votes");
                    inflight.phase = next;
                    let block = inflight.block.clone();
                    let msg = HotStuffMsg::PhaseCert {
                        phase: next,
                        height,
                        digest,
                        justify: justify.clone(),
                        ts: self.ts,
                    };
                    self.broadcast_to_members(msg, &mut out);
                    if next == Phase::Decide {
                        // The leader's own Decide handling happens via its loopback
                        // message, but clear the in-flight slot now so the next block
                        // can be proposed as soon as the decide is delivered locally.
                        let cert = QuorumCert::new(self.cfg.cluster, digest, justify);
                        self.in_flight = None;
                        self.deliver(block, cert, now, &mut out);
                        self.maybe_propose(&mut out);
                    }
                }
            }
        }
        out
    }

    fn on_tick(&mut self, now: Time) -> Vec<TobAction<HotStuffMsg>> {
        let mut out = Vec::new();
        self.maybe_propose(&mut out);
        if self.pool.should_complain(now, self.cfg.timeout) {
            out.push(TobAction::Complain { leader: self.leader });
        }
        out
    }

    fn new_leader(
        &mut self,
        leader: ReplicaId,
        ts: Timestamp,
        now: Time,
    ) -> Vec<TobAction<HotStuffMsg>> {
        let mut out = Vec::new();
        if ts.0 <= self.ts && leader == self.leader {
            return out;
        }
        // Abandon any in-flight proposal; its operations go back to the pool if we
        // become the leader, and every replica re-forwards its own undelivered
        // operations to the new leader so nothing is lost.
        if let Some(inflight) = self.in_flight.take() {
            self.pool.requeue_front(inflight.block.ops.clone());
        }
        self.leader = leader;
        self.ts = ts.0;
        self.pool.reset_watch(now);
        for op in self.pool.my_undelivered().to_vec() {
            if self.is_leader() {
                self.pool.enqueue(op);
            } else {
                out.push(TobAction::Send { to: self.leader, msg: HotStuffMsg::Forward(op) });
            }
        }
        self.maybe_propose(&mut out);
        out
    }

    fn set_membership(&mut self, members: Vec<ReplicaId>) {
        self.cfg.members = members;
    }

    fn leader(&self) -> ReplicaId {
        self.leader
    }

    fn set_fault_mode(&mut self, mode: FaultMode) {
        self.fault = mode;
    }

    fn reset(&mut self) {
        self.ts = 0;
        self.fault = FaultMode::Correct;
        self.pool = PendingPool::new();
        self.in_flight = None;
        self.known_blocks.clear();
        // Height 0 accepts any next proposal (`height < next_height` rejects);
        // `delivered_height` re-seeds from the first post-restart delivery.
        self.next_height = 0;
        self.delivered_height = None;
        self.voted.clear();
    }
}

#[cfg(test)]
mod tests;
