//! Unit and property tests for the HotStuff total-order broadcast.

use super::*;
use ava_consensus::testkit::LocalNet;
use ava_types::{ClientId, ClusterId, Duration, Transaction};
use proptest::prelude::*;

fn make_net(n: u32) -> LocalNet<HotStuff> {
    let registry = KeyRegistry::new();
    let members: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
    let leader = ReplicaId(0);
    let nodes = members.iter().map(|&id| {
        let kp = registry.register(id);
        let mut cfg = TobConfig::new(ClusterId(0), id, members.clone());
        cfg.max_block_size = 10;
        cfg.timeout = Duration::from_secs(5);
        (id, HotStuff::new(cfg, kp, registry.clone(), leader))
    });
    LocalNet::new(nodes.collect::<Vec<_>>())
}

fn tx(seq: u64) -> Operation {
    Operation::Trans(Transaction::write(ClientId(1), seq, seq % 16, 512))
}

#[test]
fn all_replicas_deliver_the_same_block() {
    let mut net = make_net(4);
    for i in 0..5 {
        net.broadcast(ReplicaId(i % 4), tx(i as u64));
    }
    net.run_to_quiescence(100_000);
    let reference = net.delivered_ops(ReplicaId(0));
    assert_eq!(reference.len(), 5);
    for i in 1..4 {
        assert_eq!(net.delivered_ops(ReplicaId(i)), reference, "replica {i} diverged");
    }
}

#[test]
fn delivered_blocks_carry_valid_quorum_certificates() {
    let registry = KeyRegistry::new();
    let members: Vec<ReplicaId> = (0..4).map(ReplicaId).collect();
    let nodes: Vec<(ReplicaId, HotStuff)> = members
        .iter()
        .map(|&id| {
            let kp = registry.register(id);
            let cfg = TobConfig::new(ClusterId(0), id, members.clone());
            (id, HotStuff::new(cfg, kp, registry.clone(), ReplicaId(0)))
        })
        .collect();
    let mut net = LocalNet::new(nodes);
    net.broadcast(ReplicaId(1), tx(0));
    net.tick(Duration::from_millis(10));
    net.run_to_quiescence(100_000);
    let blocks = net.delivered_at(ReplicaId(2));
    assert_eq!(blocks.len(), 1);
    assert!(blocks[0].verify(&registry, &members, 3));
}

#[test]
fn respects_batch_size_limit() {
    let mut net = make_net(4);
    for i in 0..25 {
        net.broadcast(ReplicaId(0), tx(i));
    }
    net.tick(Duration::from_millis(1));
    net.run_to_quiescence(200_000);
    let blocks = net.delivered_at(ReplicaId(0));
    assert!(blocks.len() >= 3, "expected multiple blocks, got {}", blocks.len());
    assert!(blocks.iter().all(|b| b.block.ops.len() <= 10));
    assert_eq!(net.delivered_ops(ReplicaId(3)).len(), 25);
}

#[test]
fn heights_are_consecutive_and_ordered() {
    let mut net = make_net(7);
    for i in 0..30 {
        net.broadcast(ReplicaId(i % 7), tx(i as u64));
        if i % 10 == 9 {
            net.run_to_quiescence(200_000);
        }
    }
    net.run_to_quiescence(200_000);
    for r in 0..7 {
        let blocks = net.delivered_at(ReplicaId(r));
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.block.height, i as u64);
        }
    }
}

#[test]
fn silent_leader_triggers_complaints_and_new_leader_recovers() {
    let mut net = make_net(4);
    net.nodes.get_mut(&ReplicaId(0)).unwrap().set_fault_mode(FaultMode::SilentLeader);
    for i in 0..4 {
        net.broadcast(ReplicaId(i), tx(i as u64));
    }
    net.run_to_quiescence(100_000);
    assert!(net.delivered_ops(ReplicaId(1)).is_empty());
    // Past the timeout every replica that is still waiting complains.
    net.tick(Duration::from_secs(6));
    net.run_to_quiescence(100_000);
    let complainers = net.complaints.values().filter(|c| !c.is_empty()).count();
    assert!(complainers >= 3, "expected non-leader replicas to complain, got {complainers}");
    // Installing the next leader recovers liveness without losing operations.
    net.install_leader(ReplicaId(1), Timestamp(1));
    net.run_to_quiescence(100_000);
    net.tick(Duration::from_millis(10));
    net.run_to_quiescence(100_000);
    let ops = net.delivered_ops(ReplicaId(2));
    assert_eq!(ops.len(), 4, "all operations should be delivered after leader change");
}

#[test]
fn crashed_follower_does_not_block_progress() {
    let mut net = make_net(4);
    net.down.insert(ReplicaId(3));
    for i in 0..6 {
        net.broadcast(ReplicaId(i % 3), tx(i as u64));
    }
    net.run_to_quiescence(100_000);
    assert_eq!(net.delivered_ops(ReplicaId(0)).len(), 6);
    assert_eq!(net.delivered_ops(ReplicaId(1)).len(), 6);
    assert!(net.delivered_ops(ReplicaId(3)).is_empty());
}

#[test]
fn duplicate_forwards_are_not_delivered_twice() {
    let mut net = make_net(4);
    net.broadcast(ReplicaId(1), tx(7));
    net.broadcast(ReplicaId(2), tx(7));
    net.run_to_quiescence(100_000);
    assert_eq!(net.delivered_ops(ReplicaId(0)), vec![tx(7)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Agreement and total order hold for arbitrary small workloads and cluster
    /// sizes: all correct replicas deliver exactly the same sequence of operations.
    #[test]
    fn prop_uniform_agreement(n in 4u32..8, ops in 1usize..30, submitter_seed in 0u32..1000) {
        let mut net = make_net(n);
        for i in 0..ops {
            let submitter = ReplicaId((submitter_seed.wrapping_add(i as u32)) % n);
            net.broadcast(submitter, tx(i as u64));
        }
        net.tick(Duration::from_millis(1));
        net.run_to_quiescence(2_000_000);
        let reference = net.delivered_ops(ReplicaId(0));
        prop_assert_eq!(reference.len(), ops);
        for r in 1..n {
            prop_assert_eq!(net.delivered_ops(ReplicaId(r)), reference.clone());
        }
    }

    /// Every delivered block carries a certificate valid for the cluster quorum.
    #[test]
    fn prop_certificates_always_valid(n in 4u32..8, ops in 1usize..15) {
        let registry = KeyRegistry::new();
        let members: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
        let nodes: Vec<(ReplicaId, HotStuff)> = members.iter().map(|&id| {
            let kp = registry.register(id);
            let cfg = TobConfig::new(ClusterId(0), id, members.clone());
            (id, HotStuff::new(cfg, kp, registry.clone(), ReplicaId(0)))
        }).collect();
        let quorum = 2 * ((n as usize - 1) / 3) + 1;
        let mut net = LocalNet::new(nodes);
        for i in 0..ops {
            net.broadcast(ReplicaId(i as u32 % n), tx(i as u64));
        }
        net.tick(Duration::from_millis(1));
        net.run_to_quiescence(2_000_000);
        for &r in &members {
            for block in net.delivered_at(r) {
                prop_assert!(block.verify(&registry, &members, quorum));
            }
        }
    }
}
