//! Criterion micro-benchmarks of the hot protocol paths the figures depend on:
//! hashing, signing/verification, Zipfian sampling, block digesting, one HotStuff
//! decision, one BFT-SMaRt decision, and one BRD dissemination round.

use ava_consensus::testkit::LocalNet;
use ava_consensus::{TobConfig, TotalOrderBroadcast};
use ava_crypto::{hmac_sha256, sha256, Digest, KeyRegistry};
use ava_hamava::brd::{Brd, BrdAction, BrdMsg};
use ava_types::{
    ClientId, ClusterId, Duration, Operation, Reconfig, Region, ReplicaId, Round, Time, Timestamp,
    Transaction,
};
use ava_workload::Zipfian;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, VecDeque};
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 1024];
    c.bench_function("sha256_1kb", |b| b.iter(|| black_box(sha256(black_box(&data)))));
    c.bench_function("hmac_sha256_1kb", |b| {
        b.iter(|| black_box(hmac_sha256(b"key", black_box(&data))))
    });
    let registry = KeyRegistry::new();
    let kp = registry.register(ReplicaId(0));
    let digest = Digest::of_bytes(&data);
    let sig = kp.sign(&digest);
    c.bench_function("sign", |b| b.iter(|| black_box(kp.sign(black_box(&digest)))));
    c.bench_function("verify", |b| b.iter(|| black_box(registry.verify(&digest, &sig))));
}

fn bench_workload(c: &mut Criterion) {
    let zipf = Zipfian::new(100_000, 0.9);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipfian_sample", |b| b.iter(|| black_box(zipf.sample(&mut rng))));
}

fn bench_block_digest(c: &mut Criterion) {
    let ops = || {
        (0..100)
            .map(|i| Operation::Trans(Transaction::write(ClientId(0), i, i % 64, 1024)))
            .collect()
    };
    let block = ava_consensus::Block::new(ClusterId(0), 7, ReplicaId(1), ops());
    // `digest()` memoises, so benchmark the cached path and the fresh path apart.
    c.bench_function("block_digest_100tx_cached", |b| b.iter(|| black_box(block.digest())));
    c.bench_function("block_digest_100tx_fresh", |b| {
        b.iter(|| {
            let block = ava_consensus::Block::new(ClusterId(0), 7, ReplicaId(1), ops());
            black_box(block.digest())
        })
    });
}

fn tob_decision<T, F>(n: u32, ops: usize, factory: F)
where
    T: TotalOrderBroadcast,
    F: Fn(TobConfig, ava_crypto::Keypair, KeyRegistry, ReplicaId) -> T,
{
    let registry = KeyRegistry::new();
    let members: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
    let nodes: Vec<(ReplicaId, T)> = members
        .iter()
        .map(|&id| {
            let kp = registry.register(id);
            let cfg = TobConfig::new(ClusterId(0), id, members.clone());
            (id, factory(cfg, kp, registry.clone(), ReplicaId(0)))
        })
        .collect();
    let mut net = LocalNet::new(nodes);
    for i in 0..ops {
        net.broadcast(
            ReplicaId(i as u32 % n),
            Operation::Trans(Transaction::write(ClientId(0), i as u64, i as u64, 512)),
        );
    }
    net.tick(Duration::from_millis(1));
    net.run_to_quiescence(5_000_000);
    assert_eq!(net.delivered_ops(ReplicaId(0)).len(), ops);
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_consensus_decision");
    group.sample_size(10);
    group.bench_function("hotstuff_4nodes_20ops", |b| {
        b.iter(|| {
            tob_decision(4, 20, |cfg, kp, reg, leader| {
                ava_hotstuff::HotStuff::new(cfg, kp, reg, leader)
            })
        })
    });
    group.bench_function("bftsmart_4nodes_20ops", |b| {
        b.iter(|| {
            tob_decision(4, 20, |cfg, kp, reg, leader| {
                ava_bftsmart::BftSmart::new(cfg, kp, reg, leader)
            })
        })
    });
    group.finish();
}

/// Run one full BRD dissemination round among `n` replicas and return the number of
/// replicas that delivered.
fn brd_round(n: u32) -> usize {
    let registry = KeyRegistry::new();
    let members: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
    let mut nodes: BTreeMap<ReplicaId, Brd> = members
        .iter()
        .map(|&id| {
            let kp = registry.register(id);
            (
                id,
                Brd::new(
                    id,
                    members.clone(),
                    kp,
                    registry.clone(),
                    ReplicaId(0),
                    Timestamp(0),
                    Round(1),
                    Duration::from_secs(5),
                ),
            )
        })
        .collect();
    let mut queue: VecDeque<(ReplicaId, ReplicaId, BrdMsg)> = VecDeque::new();
    let mut delivered = 0usize;
    for (&id, node) in nodes.iter_mut() {
        let recs = vec![Reconfig::Join { replica: ReplicaId(100 + id.0), region: Region::Europe }];
        for action in node.broadcast(recs, Time::ZERO) {
            if let BrdAction::Send { to, msg } = action {
                queue.push_back((id, to, msg));
            }
        }
    }
    while let Some((from, to, msg)) = queue.pop_front() {
        for action in nodes.get_mut(&to).unwrap().on_message(from, msg, Time::ZERO) {
            match action {
                BrdAction::Send { to: t, msg: m } => queue.push_back((to, t, m)),
                BrdAction::Deliver { .. } => delivered += 1,
                _ => {}
            }
        }
    }
    delivered
}

fn bench_brd(c: &mut Criterion) {
    let mut group = c.benchmark_group("brd_dissemination");
    group.sample_size(10);
    group.bench_function("brd_round_7replicas", |b| {
        b.iter(|| {
            let delivered = brd_round(7);
            assert_eq!(delivered, 7);
            black_box(delivered)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_workload,
    bench_block_digest,
    bench_consensus,
    bench_brd
);
criterion_main!(benches);
