//! Criterion benchmarks that exercise reduced-scale versions of the paper's figures
//! end to end: a full Hamava deployment processing rounds under the simulator, for
//! both protocol instantiations, for a heterogeneous layout (E3 setup 2), and for the
//! GeoBFT baseline (E6). The full figure regeneration lives in the `e*` binaries;
//! these benches track the cost of the complete pipeline so regressions are caught by
//! `cargo bench`.

use ava_hamava::harness::DeploymentOptions;
use ava_scenario::Protocol;
use ava_simnet::{CostModel, LatencyModel};
use ava_types::{Duration, Output, Region, SystemConfig};
use ava_workload::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn opts(seed: u64) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 32,
        store: None,
        state_machine: ava_hamava::StateMachineKind::Counter,
    }
}

fn small_config(clusters: usize) -> SystemConfig {
    let mut config = SystemConfig::even_split_single_region(4 * clusters, clusters, Region::UsWest);
    config.params.batch_size = 20;
    config
}

fn completed(outputs: &[Output]) -> usize {
    outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count()
}

fn bench_e0_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_e0_small");
    group.sample_size(10);
    for clusters in [2usize, 3] {
        group.bench_function(format!("ava_hotstuff_{clusters}clusters_5s"), |b| {
            b.iter(|| {
                let mut dep = Protocol::AvaHotStuff.deploy(small_config(clusters), opts(1));
                dep.run_for(Duration::from_secs(5));
                let n = completed(dep.outputs());
                assert!(n > 0);
                black_box(n)
            })
        });
        group.bench_function(format!("ava_bftsmart_{clusters}clusters_5s"), |b| {
            b.iter(|| {
                let mut dep = Protocol::AvaBftSmart.deploy(small_config(clusters), opts(2));
                dep.run_for(Duration::from_secs(5));
                let n = completed(dep.outputs());
                assert!(n > 0);
                black_box(n)
            })
        });
    }
    group.finish();
}

fn bench_e3_heterogeneous(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_e3_small");
    group.sample_size(10);
    group.bench_function("heterogeneous_9asia_5eu_5s", |b| {
        b.iter(|| {
            let mut config =
                SystemConfig::heterogeneous(&[vec![Region::AsiaSouth; 9], vec![Region::Europe; 5]]);
            config.params.batch_size = 20;
            let mut dep = Protocol::AvaHotStuff.deploy(config, opts(3));
            dep.run_for(Duration::from_secs(5));
            black_box(completed(dep.outputs()))
        })
    });
    group.finish();
}

fn bench_e6_geobft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_e6_small");
    group.sample_size(10);
    group.bench_function("geobft_2clusters_5s", |b| {
        b.iter(|| {
            let mut dep = Protocol::GeoBft.deploy(small_config(2), opts(4));
            dep.run_for(Duration::from_secs(5));
            black_box(completed(dep.outputs()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e0_shape, bench_e3_heterogeneous, bench_e6_geobft);
criterion_main!(benches);
