//! Wall-clock performance harness for the simulation hot path.
//!
//! While the Criterion benches track micro-costs, this module times the *end-to-end*
//! deployment shapes from `benches/figure_benches.rs` (E0/E1/E3 pipelines, the
//! GeoBFT baseline, plus the store-enabled E10 shapes) in real wall-clock time
//! and emits a machine-readable
//! `BENCH_PR*.json` trajectory so hot-path refactors can prove (and later PRs cannot
//! silently regress) their speedups. The `perf_wallclock` binary is the CLI front
//! end; CI runs it at quick scale as a bench smoke test.

use crate::experiments::{e0_single_region, ExperimentScale, Protocol};
use ava_hamava::harness::DeploymentOptions;
use ava_simnet::{CostModel, LatencyModel};
use ava_store::StoreConfig;
use ava_types::{Duration, Output, Region, ReplicaId, SystemConfig, Time};
use ava_workload::WorkloadSpec;
use std::collections::BTreeMap;
use std::time::Instant;

/// Timing record of one end-to-end shape.
#[derive(Clone, Debug)]
pub struct PerfRecord {
    /// Shape name (stable across PRs; used to join against baselines).
    pub name: String,
    /// Best-of-iterations wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Simulator events processed during one run (0 when not tracked).
    pub events: u64,
    /// Events per wall-clock second (0 when not tracked).
    pub events_per_sec: f64,
    /// Transactions completed during one run (sanity check that work happened).
    pub completed_txns: usize,
}

fn opts(seed: u64) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 32,
        store: None,
    }
}

fn small_config(clusters: usize) -> SystemConfig {
    let mut config = SystemConfig::even_split_single_region(4 * clusters, clusters, Region::UsWest);
    config.params.batch_size = 20;
    config
}

fn multi_region_config(clusters: usize) -> SystemConfig {
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let mut config = SystemConfig::even_split_multi_region(4 * clusters, clusters, &regions);
    config.params.batch_size = 20;
    config
}

fn completed(outputs: &[Output]) -> usize {
    outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count()
}

/// Time `run` (which returns `(events_processed, completed_txns)`) `iters` times and
/// record the fastest wall-clock pass; counters come from the last pass (runs are
/// seed-deterministic, so every pass produces identical counters).
fn time_shape(name: &str, iters: u32, mut run: impl FnMut() -> (u64, usize)) -> PerfRecord {
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    let mut txns = 0usize;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let (e, t) = run();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        events = e;
        txns = t;
    }
    PerfRecord {
        name: name.to_string(),
        wall_ms: best,
        events,
        events_per_sec: if best > 0.0 { events as f64 / (best / 1e3) } else { 0.0 },
        completed_txns: txns,
    }
}

/// Run and time the quick end-to-end shapes (the `figure_benches` set plus an E1
/// multi-region shape). Each shape is a full deployment driven for 5 s of virtual
/// time.
pub fn run_quick_shapes(iters: u32) -> Vec<PerfRecord> {
    let run_secs = Duration::from_secs(5);
    let time_deploy = |name: &str, protocol: Protocol, config: SystemConfig, seed: u64| {
        time_shape(name, iters, || {
            let mut dep = protocol.deploy(config.clone(), opts(seed));
            dep.run_for(run_secs);
            (dep.net_stats().events_processed, completed(dep.outputs()))
        })
    };
    let mut records = Vec::new();
    for clusters in [2usize, 3] {
        records.push(time_deploy(
            &format!("e0/hotstuff_{clusters}clusters_5s"),
            Protocol::AvaHotStuff,
            small_config(clusters),
            1,
        ));
        records.push(time_deploy(
            &format!("e0/bftsmart_{clusters}clusters_5s"),
            Protocol::AvaBftSmart,
            small_config(clusters),
            2,
        ));
    }
    records.push(time_deploy(
        "e1/hotstuff_3clusters_multiregion_5s",
        Protocol::AvaHotStuff,
        multi_region_config(3),
        5,
    ));
    let mut hetero =
        SystemConfig::heterogeneous(&[vec![Region::AsiaSouth; 9], vec![Region::Europe; 5]]);
    hetero.params.batch_size = 20;
    records.push(time_deploy("e3/heterogeneous_9asia_5eu_5s", Protocol::AvaHotStuff, hetero, 3));
    records.push(time_deploy("e6/geobft_2clusters_5s", Protocol::GeoBft, small_config(2), 4));
    // Store-enabled hot path: the same E0 shape with the ava-store round log +
    // checkpoints on (every append pays the fsync cost model), and a
    // crash→restart→catch-up variant exercising the recovery path end to end.
    let store_opts = |seed: u64| {
        let mut o = opts(seed);
        o.store = Some(StoreConfig::every(8));
        o
    };
    records.push(time_shape("e10/hotstuff_2clusters_store_5s", iters, || {
        let mut dep = Protocol::AvaHotStuff.deploy(small_config(2), store_opts(6));
        dep.run_for(run_secs);
        (dep.net_stats().events_processed, completed(dep.outputs()))
    }));
    records.push(time_shape("e10/hotstuff_crash_restart_5s", iters, || {
        let mut dep = Protocol::AvaHotStuff.deploy(small_config(2), store_opts(7));
        dep.crash_at(ReplicaId(1), Time::from_secs(1));
        dep.restart_at(ReplicaId(1), Time::from_secs(3));
        dep.run_for(run_secs);
        (dep.net_stats().events_processed, completed(dep.outputs()))
    }));
    records
}

/// Run and time the full paper-scale E0 sweep (`AVA_FULL=1` equivalent: 96 nodes,
/// 180 s virtual windows, 6 cluster counts × 2 protocols). Returns the timing record
/// and the E0 result rows (clusters, A.H tput/lat, A.B tput/lat) so callers can
/// transcribe them into EXPERIMENTS.md.
pub fn run_full_e0() -> (PerfRecord, Vec<Vec<String>>) {
    let start = Instant::now();
    let rows = e0_single_region(&ExperimentScale::paper());
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let record = PerfRecord {
        name: "e0/full_96nodes_180s_sweep".to_string(),
        wall_ms: ms,
        events: 0,
        events_per_sec: 0.0,
        completed_txns: 0,
    };
    (record, rows)
}

/// Peak resident set size of this process in kiB (Linux `VmHWM`), if available.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Serialize records (with optional per-shape baselines) into the `BENCH_PR6.json`
/// document. `baseline` maps shape name to the pre-refactor wall-clock milliseconds.
pub fn render_json(
    mode: &str,
    iters: u32,
    records: &[PerfRecord],
    baseline: &BTreeMap<String, f64>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 5,\n");
    out.push_str("  \"harness\": \"perf_wallclock\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    match peak_rss_kb() {
        Some(kb) => out.push_str(&format!("  \"peak_rss_kb\": {kb},\n")),
        None => out.push_str("  \"peak_rss_kb\": null,\n"),
    }
    out.push_str("  \"shapes\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", r.name));
        out.push_str(&format!("\"wall_ms\": {:.3}, ", r.wall_ms));
        out.push_str(&format!("\"events\": {}, ", r.events));
        out.push_str(&format!("\"events_per_sec\": {:.1}, ", r.events_per_sec));
        out.push_str(&format!("\"completed_txns\": {}", r.completed_txns));
        if let Some(base) = baseline.get(&r.name) {
            out.push_str(&format!(", \"baseline_wall_ms\": {base:.3}"));
            if r.wall_ms > 0.0 {
                out.push_str(&format!(", \"speedup\": {:.2}", base / r.wall_ms));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract per-shape `name -> wall_ms` from a `BENCH_PR*.json` document produced by
/// [`render_json`] (a hand-rolled scan; the format is our own renderer's).
pub fn parse_bench_json(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = &rest[..name_end];
        let Some(ms_at) = line.find("\"wall_ms\": ") else { continue };
        let ms_text: String = line[ms_at + 11..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(ms) = ms_text.parse::<f64>() {
            map.insert(name.to_string(), ms);
        }
    }
    map
}

/// Shapes that exist on only one side of a run/baseline comparison, as
/// `(missing_from_run, new_in_run)`. Neither direction is a regression: a shape
/// present only in the baseline was removed or renamed (the gate cannot time what
/// did not run), and a shape present only in the run is new and has no baseline
/// yet. `perf_wallclock --check` reports both informationally so adding or
/// retiring a shape can never fail the CI gate spuriously — the next baseline
/// regeneration re-syncs the sets.
pub fn unmatched_shapes(
    records: &[PerfRecord],
    baseline: &BTreeMap<String, f64>,
) -> (Vec<String>, Vec<String>) {
    let run_names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
    let missing_from_run =
        baseline.keys().filter(|name| !run_names.contains(&name.as_str())).cloned().collect();
    let new_in_run = records
        .iter()
        .filter(|r| !baseline.contains_key(&r.name))
        .map(|r| r.name.clone())
        .collect();
    (missing_from_run, new_in_run)
}

/// Compare `records` against committed per-shape baselines: any shape slower than
/// `baseline × (1 + threshold)` is a regression. Returns one human-readable line
/// per offending shape (empty = gate passes). Only shapes present on both sides
/// are compared — see [`unmatched_shapes`] for the tolerated leftovers.
pub fn check_regressions(
    records: &[PerfRecord],
    baseline: &BTreeMap<String, f64>,
    threshold: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in records {
        if let Some(&base) = baseline.get(&r.name) {
            if base > 0.0 && r.wall_ms > base * (1.0 + threshold) {
                failures.push(format!(
                    "{}: {:.1} ms vs baseline {:.1} ms (+{:.0}%, budget +{:.0}%)",
                    r.name,
                    r.wall_ms,
                    base,
                    (r.wall_ms / base - 1.0) * 100.0,
                    threshold * 100.0
                ));
            }
        }
    }
    failures
}

/// Render records as `name\twall_ms` lines (the baseline interchange format).
pub fn render_tsv(records: &[PerfRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!("{}\t{:.3}\n", r.name, r.wall_ms));
    }
    out
}

/// Parse the `name\twall_ms` baseline format produced by [`render_tsv`].
pub fn parse_baseline(text: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.splitn(2, '\t');
        if let (Some(name), Some(ms)) = (parts.next(), parts.next()) {
            if let Ok(ms) = ms.trim().parse::<f64>() {
                map.insert(name.to_string(), ms);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, wall_ms: f64) -> PerfRecord {
        PerfRecord {
            name: name.to_string(),
            wall_ms,
            events: 10,
            events_per_sec: 100.0,
            completed_txns: 5,
        }
    }

    #[test]
    fn tsv_roundtrips_through_baseline_parser() {
        let records = vec![record("a/b_2c", 12.5), record("c/d_3c", 1000.125)];
        let map = parse_baseline(&render_tsv(&records));
        assert_eq!(map.len(), 2);
        assert!((map["a/b_2c"] - 12.5).abs() < 1e-9);
        assert!((map["c/d_3c"] - 1000.125).abs() < 1e-9);
    }

    #[test]
    fn json_includes_speedup_only_for_known_baselines() {
        let records = vec![record("x", 10.0), record("y", 10.0)];
        let mut baseline = BTreeMap::new();
        baseline.insert("x".to_string(), 25.0);
        let json = render_json("quick", 3, &records, &baseline);
        assert!(json.contains("\"speedup\": 2.50"));
        assert!(json.contains("\"name\": \"y\""));
        assert_eq!(json.matches("baseline_wall_ms").count(), 1);
    }

    #[test]
    fn bench_json_roundtrips_through_the_parser() {
        let records = vec![record("e0/x_2c", 12.5), record("e6/y_3c", 1000.125)];
        let json = render_json("quick", 1, &records, &BTreeMap::new());
        let map = parse_bench_json(&json);
        assert_eq!(map.len(), 2);
        assert!((map["e0/x_2c"] - 12.5).abs() < 1e-6);
        assert!((map["e6/y_3c"] - 1000.125).abs() < 1e-6);
    }

    #[test]
    fn regression_gate_flags_only_shapes_over_budget() {
        let mut baseline = BTreeMap::new();
        baseline.insert("slow".to_string(), 100.0);
        baseline.insert("ok".to_string(), 100.0);
        // "new" has no baseline and must be ignored.
        let records = vec![record("slow", 130.0), record("ok", 120.0), record("new", 9.9)];
        let failures = check_regressions(&records, &baseline, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("slow:"), "{failures:?}");
    }

    #[test]
    fn unmatched_shapes_are_tolerated_in_both_directions() {
        // A baseline-only shape (retired) and a run-only shape (new, e.g. the
        // e10/store shapes) must be reported without failing the gate.
        let mut baseline = BTreeMap::new();
        baseline.insert("both".to_string(), 100.0);
        baseline.insert("retired".to_string(), 50.0);
        let records = vec![record("both", 90.0), record("e10/new_shape", 10.0)];
        let (missing, new) = unmatched_shapes(&records, &baseline);
        assert_eq!(missing, vec!["retired".to_string()]);
        assert_eq!(new, vec!["e10/new_shape".to_string()]);
        assert!(check_regressions(&records, &baseline, 0.25).is_empty());
    }

    #[test]
    fn time_shape_records_best_pass_and_counters() {
        let r = time_shape("t", 3, || (42, 7));
        assert_eq!(r.name, "t");
        assert_eq!(r.events, 42);
        assert_eq!(r.completed_txns, 7);
        assert!(r.wall_ms >= 0.0);
    }
}
