//! Wall-clock performance harness for the simulation hot path.
//!
//! While the Criterion benches track micro-costs, this module times the *end-to-end*
//! deployment shapes from `benches/figure_benches.rs` (E0/E1/E3 pipelines, the
//! GeoBFT baseline, the store-enabled E10 shapes, plus the broker-tier E11
//! shapes) in real wall-clock time and emits a machine-readable
//! `BENCH_PR*.json` trajectory so hot-path refactors can prove (and later PRs cannot
//! silently regress) their speedups. The `perf_wallclock` binary is the CLI front
//! end; CI runs it at quick scale as a bench smoke test.

use crate::experiments::{e0_single_region, ExperimentScale, Protocol};
use ava_hamava::harness::DeploymentOptions;
use ava_scenario::{thread_cpu_time, BrokerTier, RunPool, Scenario};
use ava_simnet::{CostModel, LatencyModel};
use ava_store::StoreConfig;
use ava_types::{Duration, Output, Region, ReplicaId, SystemConfig, Time};
use ava_workload::{AggregateLoad, WorkloadSpec};
use std::collections::BTreeMap;
use std::time::Instant;

/// Timing record of one end-to-end shape.
#[derive(Clone, Debug)]
pub struct PerfRecord {
    /// Shape name (stable across PRs; used to join against baselines).
    pub name: String,
    /// Best-of-iterations wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// Median of the per-iteration wall-clock times in milliseconds (equals
    /// `wall_ms` for a single iteration; the spread vs. `wall_ms` makes
    /// run-to-run noise visible in the BENCH json).
    pub wall_ms_median: f64,
    /// Mean of the per-iteration wall-clock times in milliseconds.
    pub wall_ms_mean: f64,
    /// Best-of-iterations *thread CPU time* in milliseconds, when the platform
    /// exposes per-thread CPU clocks (`None` elsewhere). Under `--jobs > 1`
    /// concurrent shapes contend for cores and inflate each other's wall-clock,
    /// so CPU time is the stable per-shape cost metric — the regression gate
    /// prefers it whenever both sides of a comparison have it.
    pub cpu_ms: Option<f64>,
    /// Simulator events processed during one run (0 when not tracked).
    pub events: u64,
    /// Events per wall-clock second (0 when not tracked).
    pub events_per_sec: f64,
    /// Transactions completed during one run (sanity check that work happened).
    pub completed_txns: usize,
}

fn opts(seed: u64) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec { key_space: 1_000, ..WorkloadSpec::default() },
        clients_per_cluster: 1,
        client_concurrency: 32,
        store: None,
        state_machine: ava_hamava::StateMachineKind::Counter,
    }
}

fn small_config(clusters: usize) -> SystemConfig {
    let mut config = SystemConfig::even_split_single_region(4 * clusters, clusters, Region::UsWest);
    config.params.batch_size = 20;
    config
}

fn multi_region_config(clusters: usize) -> SystemConfig {
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let mut config = SystemConfig::even_split_multi_region(4 * clusters, clusters, &regions);
    config.params.batch_size = 20;
    config
}

fn completed(outputs: &[Output]) -> usize {
    outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count()
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 0 {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Time `run` (which returns `(events_processed, completed_txns)`) `iters` times and
/// record the fastest pass by wall-clock and by thread CPU time, plus the
/// median/mean of the wall-clock samples; counters come from the last pass (runs
/// are seed-deterministic, so every pass produces identical counters).
fn time_shape(name: &str, iters: u32, mut run: impl FnMut() -> (u64, usize)) -> PerfRecord {
    let mut walls = Vec::with_capacity(iters.max(1) as usize);
    let mut best_cpu = f64::INFINITY;
    let mut events = 0u64;
    let mut txns = 0usize;
    for _ in 0..iters.max(1) {
        let cpu_before = thread_cpu_time();
        let start = Instant::now();
        let (e, t) = run();
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        if let (Some(before), Some(after)) = (cpu_before, thread_cpu_time()) {
            best_cpu = best_cpu.min(after.saturating_sub(before).as_secs_f64() * 1e3);
        }
        events = e;
        txns = t;
    }
    walls.sort_by(|a, b| a.total_cmp(b));
    let best = walls[0];
    PerfRecord {
        name: name.to_string(),
        wall_ms: best,
        wall_ms_median: median(&walls),
        wall_ms_mean: walls.iter().sum::<f64>() / walls.len() as f64,
        cpu_ms: (best_cpu.is_finite()).then_some(best_cpu),
        events,
        events_per_sec: if best > 0.0 { events as f64 / (best / 1e3) } else { 0.0 },
        completed_txns: txns,
    }
}

/// One nameable end-to-end shape: a label plus a runnable returning
/// `(events_processed, completed_txns)`. Boxed so heterogeneous shapes can ride
/// one list onto the worker pool.
type Shape = (String, Box<dyn Fn() -> (u64, usize) + Send>);

fn quick_shape_set() -> Vec<Shape> {
    let run_secs = Duration::from_secs(5);
    let deploy_shape = |name: &str, protocol: Protocol, config: SystemConfig, seed: u64| -> Shape {
        (
            name.to_string(),
            Box::new(move || {
                let mut dep = protocol.deploy(config.clone(), opts(seed));
                dep.run_for(run_secs);
                (dep.net_stats().events_processed, completed(dep.outputs()))
            }),
        )
    };
    let mut shapes = Vec::new();
    for clusters in [2usize, 3] {
        shapes.push(deploy_shape(
            &format!("e0/hotstuff_{clusters}clusters_5s"),
            Protocol::AvaHotStuff,
            small_config(clusters),
            1,
        ));
        shapes.push(deploy_shape(
            &format!("e0/bftsmart_{clusters}clusters_5s"),
            Protocol::AvaBftSmart,
            small_config(clusters),
            2,
        ));
    }
    shapes.push(deploy_shape(
        "e1/hotstuff_3clusters_multiregion_5s",
        Protocol::AvaHotStuff,
        multi_region_config(3),
        5,
    ));
    let mut hetero =
        SystemConfig::heterogeneous(&[vec![Region::AsiaSouth; 9], vec![Region::Europe; 5]]);
    hetero.params.batch_size = 20;
    shapes.push(deploy_shape("e3/heterogeneous_9asia_5eu_5s", Protocol::AvaHotStuff, hetero, 3));
    shapes.push(deploy_shape("e6/geobft_2clusters_5s", Protocol::GeoBft, small_config(2), 4));
    // Store-enabled hot path: the same E0 shape with the ava-store round log +
    // checkpoints on (every append pays the fsync cost model), and a
    // crash→restart→catch-up variant exercising the recovery path end to end.
    let store_opts = |seed: u64| {
        let mut o = opts(seed);
        o.store = Some(StoreConfig::every(8));
        o
    };
    shapes.push((
        "e10/hotstuff_2clusters_store_5s".to_string(),
        Box::new(move || {
            let mut dep = Protocol::AvaHotStuff.deploy(small_config(2), store_opts(6));
            dep.run_for(run_secs);
            (dep.net_stats().events_processed, completed(dep.outputs()))
        }),
    ));
    let store_opts7 = {
        let mut o = opts(7);
        o.store = Some(StoreConfig::every(8));
        o
    };
    shapes.push((
        "e10/hotstuff_crash_restart_5s".to_string(),
        Box::new(move || {
            let mut dep = Protocol::AvaHotStuff.deploy(small_config(2), store_opts7.clone());
            dep.crash_at(ReplicaId(1), Time::from_secs(1));
            dep.restart_at(ReplicaId(1), Time::from_secs(3));
            dep.run_for(run_secs);
            (dep.net_stats().events_processed, completed(dep.outputs()))
        }),
    ));
    // Broker-tier hot path (the PR8 subsystem): aggregate virtual-client load
    // through one broker per cluster. The second variant drives the tier well
    // past the replicas' execution ceiling (heavyweight state machine), so the
    // saturated bookkeeping — full batches, stalled in-flight slots, deep
    // pending-ack fan-back — is on the timed path too.
    let broker_shape =
        |name: &str, offered_tps: u64, per_tx_execute: Duration, seed: u64| -> Shape {
            let tier = BrokerTier {
                brokers_per_cluster: 1,
                queue_cap: 20_000,
                load: AggregateLoad {
                    virtual_clients: 20_000,
                    offered_tps,
                    issue_for: Duration::from_secs(4),
                    ..AggregateLoad::default()
                },
                ..BrokerTier::default()
            };
            (
                name.to_string(),
                Box::new(move || {
                    let mut o = opts(seed);
                    o.clients_per_cluster = 0;
                    o.costs.per_tx_execute = per_tx_execute;
                    let run = Scenario::builder(Protocol::AvaHotStuff, small_config(2))
                        .options(o)
                        .run_for(run_secs)
                        .brokers(tier.clone())
                        .build()
                        .run();
                    (run.stats.events_processed, completed(&run.outputs))
                }),
            )
        };
    shapes.push(broker_shape(
        "e11/hotstuff_2clusters_broker_2ktps_5s",
        2_000,
        Duration::from_micros(5),
        8,
    ));
    shapes.push(broker_shape(
        "e11/hotstuff_2clusters_broker_saturated_5s",
        16_000,
        Duration::from_micros(250),
        9,
    ));
    // KV state-machine hot path (the PR10 subsystem): real value bytes move
    // through execution, reads answer from versioned state, every round folds
    // the incremental set-hash digest, and the per-value-byte cost model is
    // live. One read-heavy shape (the cluster-local read path dominates) and
    // one write-heavy 1 KiB shape (apply + digest update dominate).
    let kv_shape = |name: &str, read_ratio: f64, seed: u64| -> Shape {
        let mut o = opts(seed);
        o.state_machine = ava_hamava::StateMachineKind::Kv;
        o.workload = WorkloadSpec { read_ratio, ..o.workload };
        (
            name.to_string(),
            Box::new(move || {
                let mut dep = Protocol::AvaHotStuff.deploy(small_config(2), o.clone());
                dep.run_for(run_secs);
                (dep.net_stats().events_processed, completed(dep.outputs()))
            }),
        )
    };
    shapes.push(kv_shape("e13/hotstuff_2clusters_kv_readheavy_5s", 0.95, 10));
    shapes.push(kv_shape("e13/hotstuff_2clusters_kv_writeheavy_1kib_5s", 0.1, 11));
    shapes
}

/// Run and time the quick end-to-end shapes (the `figure_benches` set plus an E1
/// multi-region shape) on `jobs` worker threads. Each shape is a full deployment
/// driven for 5 s of virtual time; a shape's `iters` passes run back-to-back on
/// one worker (so its best-of wall-clock stays comparable), while distinct shapes
/// time concurrently — which is why [`PerfRecord`] carries thread CPU time.
/// Returns the records (in the canonical shape order regardless of `jobs`) plus
/// the pool wall-clock for the whole set in milliseconds.
pub fn run_quick_shapes(iters: u32, jobs: usize) -> (Vec<PerfRecord>, f64) {
    let start = Instant::now();
    let records =
        RunPool::new(jobs).map(quick_shape_set(), |_, (name, run)| time_shape(&name, iters, run));
    (records, start.elapsed().as_secs_f64() * 1e3)
}

/// Run and time the full paper-scale E0 sweep (`AVA_FULL=1` equivalent: 96 nodes,
/// 180 s virtual windows, 6 cluster counts × 2 protocols) with its 12 runs fanned
/// out over `jobs` workers. Returns the timing record and the E0 result rows
/// (clusters, A.H tput/lat, A.B tput/lat) so callers can transcribe them into
/// EXPERIMENTS.md.
pub fn run_full_e0(jobs: usize) -> (PerfRecord, Vec<Vec<String>>) {
    let scale = ExperimentScale { jobs: jobs.max(1), ..ExperimentScale::paper() };
    let start = Instant::now();
    let rows = e0_single_region(&scale);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    // The sweep's runs execute on pool workers, so the driving thread's CPU clock
    // would only cover orchestration — the meaningful number for the sweep is its
    // pool wall-clock, recorded as `wall_ms`.
    let record = PerfRecord {
        name: "e0/full_96nodes_180s_sweep".to_string(),
        wall_ms: ms,
        wall_ms_median: ms,
        wall_ms_mean: ms,
        cpu_ms: None,
        events: 0,
        events_per_sec: 0.0,
        completed_txns: 0,
    };
    (record, rows)
}

/// Peak resident set size of this process in kiB (Linux `VmHWM`), if available.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One side of a shape comparison as read back from a committed `BENCH_PR*.json`:
/// the best-of wall-clock plus, when the producing run recorded it, the best-of
/// thread CPU time. Older baselines (pre-PR7) carry only `wall_ms`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselineEntry {
    /// Best-of-iterations wall-clock milliseconds.
    pub wall_ms: f64,
    /// Best-of-iterations thread CPU milliseconds, if the baseline recorded it.
    pub cpu_ms: Option<f64>,
}

/// Serialize records (with optional per-shape baselines) into the `BENCH_PR*.json`
/// document. `pool_wall_ms` is the wall-clock of the whole shape set on the worker
/// pool (None for single-record full-E0 runs, where the record itself is the
/// pool time); `baseline` maps shape name to the committed pre-change timings.
pub fn render_json(
    mode: &str,
    iters: u32,
    jobs: usize,
    pool_wall_ms: Option<f64>,
    records: &[PerfRecord],
    baseline: &BTreeMap<String, BaselineEntry>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 10,\n");
    out.push_str("  \"harness\": \"perf_wallclock\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    match pool_wall_ms {
        Some(ms) => out.push_str(&format!("  \"pool_wall_ms\": {ms:.3},\n")),
        None => out.push_str("  \"pool_wall_ms\": null,\n"),
    }
    match peak_rss_kb() {
        Some(kb) => out.push_str(&format!("  \"peak_rss_kb\": {kb},\n")),
        None => out.push_str("  \"peak_rss_kb\": null,\n"),
    }
    out.push_str("  \"shapes\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", r.name));
        out.push_str(&format!("\"wall_ms\": {:.3}, ", r.wall_ms));
        out.push_str(&format!("\"wall_ms_median\": {:.3}, ", r.wall_ms_median));
        out.push_str(&format!("\"wall_ms_mean\": {:.3}, ", r.wall_ms_mean));
        match r.cpu_ms {
            Some(cpu) => out.push_str(&format!("\"cpu_ms\": {cpu:.3}, ")),
            None => out.push_str("\"cpu_ms\": null, "),
        }
        out.push_str(&format!("\"events\": {}, ", r.events));
        out.push_str(&format!("\"events_per_sec\": {:.1}, ", r.events_per_sec));
        out.push_str(&format!("\"completed_txns\": {}", r.completed_txns));
        if let Some(base) = baseline.get(&r.name) {
            out.push_str(&format!(", \"baseline_wall_ms\": {:.3}", base.wall_ms));
            if r.wall_ms > 0.0 {
                out.push_str(&format!(", \"speedup\": {:.2}", base.wall_ms / r.wall_ms));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract per-shape `name -> {wall_ms, cpu_ms}` from a `BENCH_PR*.json` document
/// produced by [`render_json`] (a hand-rolled scan; the format is our own
/// renderer's). Pre-PR7 documents have no `cpu_ms` field; the entry then carries
/// `cpu_ms: None` and comparisons fall back to wall-clock.
pub fn parse_bench_json(text: &str) -> BTreeMap<String, BaselineEntry> {
    fn number_after(line: &str, key: &str) -> Option<f64> {
        let at = line.find(key)?;
        let text: String = line[at + key.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        text.parse().ok()
    }
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = &rest[..name_end];
        let Some(wall_ms) = number_after(line, "\"wall_ms\": ") else { continue };
        let cpu_ms = number_after(line, "\"cpu_ms\": ");
        map.insert(name.to_string(), BaselineEntry { wall_ms, cpu_ms });
    }
    map
}

/// Shapes that exist on only one side of a run/baseline comparison, as
/// `(missing_from_run, new_in_run)`. Neither direction is a regression: a shape
/// present only in the baseline was removed or renamed (the gate cannot time what
/// did not run), and a shape present only in the run is new and has no baseline
/// yet. `perf_wallclock --check` reports both informationally so adding or
/// retiring a shape can never fail the CI gate spuriously — the next baseline
/// regeneration re-syncs the sets.
pub fn unmatched_shapes(
    records: &[PerfRecord],
    baseline: &BTreeMap<String, BaselineEntry>,
) -> (Vec<String>, Vec<String>) {
    let run_names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
    let missing_from_run =
        baseline.keys().filter(|name| !run_names.contains(&name.as_str())).cloned().collect();
    let new_in_run = records
        .iter()
        .filter(|r| !baseline.contains_key(&r.name))
        .map(|r| r.name.clone())
        .collect();
    (missing_from_run, new_in_run)
}

/// Pick the comparable metric for one shape: thread CPU time when *both* the run
/// and the baseline recorded it (stable under `--jobs > 1` core contention and on
/// shared CI runners), otherwise wall-clock. Returns `(metric_label, run_ms,
/// baseline_ms)`.
fn comparison_metric(r: &PerfRecord, base: &BaselineEntry) -> (&'static str, f64, f64) {
    match (r.cpu_ms, base.cpu_ms) {
        (Some(run_cpu), Some(base_cpu)) => ("cpu", run_cpu, base_cpu),
        _ => ("wall", r.wall_ms, base.wall_ms),
    }
}

/// Compare `records` against committed per-shape baselines: any shape slower than
/// `baseline × (1 + threshold)` is a regression. The comparison runs on thread CPU
/// time when both sides recorded it and on wall-clock otherwise (see
/// `comparison_metric`). Returns one human-readable line per offending shape
/// (empty = gate passes). Only shapes present on both sides are compared — see
/// [`unmatched_shapes`] for the tolerated leftovers.
pub fn check_regressions(
    records: &[PerfRecord],
    baseline: &BTreeMap<String, BaselineEntry>,
    threshold: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in records {
        if let Some(base) = baseline.get(&r.name) {
            let (metric, run_ms, base_ms) = comparison_metric(r, base);
            if base_ms > 0.0 && run_ms > base_ms * (1.0 + threshold) {
                failures.push(format!(
                    "{}: {:.1} ms vs baseline {:.1} ms ({metric}, +{:.0}%, budget +{:.0}%)",
                    r.name,
                    run_ms,
                    base_ms,
                    (run_ms / base_ms - 1.0) * 100.0,
                    threshold * 100.0
                ));
            }
        }
    }
    failures
}

/// One `±N%` comparison line per shape matched against the baseline, printed by
/// `perf_wallclock --check` even when the gate passes, so every CI log shows the
/// per-shape drift instead of a bare "ok". Uses the same metric selection as
/// [`check_regressions`].
pub fn delta_lines(
    records: &[PerfRecord],
    baseline: &BTreeMap<String, BaselineEntry>,
) -> Vec<String> {
    let mut lines = Vec::new();
    for r in records {
        if let Some(base) = baseline.get(&r.name) {
            let (metric, run_ms, base_ms) = comparison_metric(r, base);
            if base_ms > 0.0 {
                lines.push(format!(
                    "{}: {:.1} ms vs baseline {:.1} ms ({metric}, {:+.1}%)",
                    r.name,
                    run_ms,
                    base_ms,
                    (run_ms / base_ms - 1.0) * 100.0
                ));
            }
        }
    }
    lines
}

/// Render records as `name\twall_ms` lines (the baseline interchange format).
pub fn render_tsv(records: &[PerfRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!("{}\t{:.3}\n", r.name, r.wall_ms));
    }
    out
}

/// Parse the `name\twall_ms` baseline format produced by [`render_tsv`]. The TSV
/// format is wall-clock-only, so every entry comes back with `cpu_ms: None` and
/// comparisons against it use wall-clock.
pub fn parse_baseline(text: &str) -> BTreeMap<String, BaselineEntry> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.splitn(2, '\t');
        if let (Some(name), Some(ms)) = (parts.next(), parts.next()) {
            if let Ok(wall_ms) = ms.trim().parse::<f64>() {
                map.insert(name.to_string(), BaselineEntry { wall_ms, cpu_ms: None });
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, wall_ms: f64) -> PerfRecord {
        PerfRecord {
            name: name.to_string(),
            wall_ms,
            wall_ms_median: wall_ms,
            wall_ms_mean: wall_ms,
            cpu_ms: None,
            events: 10,
            events_per_sec: 100.0,
            completed_txns: 5,
        }
    }

    fn entry(wall_ms: f64) -> BaselineEntry {
        BaselineEntry { wall_ms, cpu_ms: None }
    }

    #[test]
    fn tsv_roundtrips_through_baseline_parser() {
        let records = vec![record("a/b_2c", 12.5), record("c/d_3c", 1000.125)];
        let map = parse_baseline(&render_tsv(&records));
        assert_eq!(map.len(), 2);
        assert!((map["a/b_2c"].wall_ms - 12.5).abs() < 1e-9);
        assert!((map["c/d_3c"].wall_ms - 1000.125).abs() < 1e-9);
        assert_eq!(map["a/b_2c"].cpu_ms, None);
    }

    #[test]
    fn json_includes_speedup_only_for_known_baselines() {
        let records = vec![record("x", 10.0), record("y", 10.0)];
        let mut baseline = BTreeMap::new();
        baseline.insert("x".to_string(), entry(25.0));
        let json = render_json("quick", 3, 2, Some(20.0), &records, &baseline);
        assert!(json.contains("\"speedup\": 2.50"));
        assert!(json.contains("\"name\": \"y\""));
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains("\"pool_wall_ms\": 20.000"));
        assert_eq!(json.matches("baseline_wall_ms").count(), 1);
    }

    #[test]
    fn bench_json_roundtrips_through_the_parser() {
        let mut with_cpu = record("e0/x_2c", 12.5);
        with_cpu.cpu_ms = Some(11.25);
        let records = vec![with_cpu, record("e6/y_3c", 1000.125)];
        let json = render_json("quick", 1, 1, None, &records, &BTreeMap::new());
        let map = parse_bench_json(&json);
        assert_eq!(map.len(), 2);
        assert!((map["e0/x_2c"].wall_ms - 12.5).abs() < 1e-6);
        assert_eq!(map["e0/x_2c"].cpu_ms, Some(11.25));
        assert!((map["e6/y_3c"].wall_ms - 1000.125).abs() < 1e-6);
        assert_eq!(map["e6/y_3c"].cpu_ms, None);
    }

    #[test]
    fn parser_accepts_pre_pr7_documents_without_cpu_fields() {
        let legacy = r#"{
  "pr": 5,
  "shapes": [
    {"name": "e0/x_2c", "wall_ms": 42.500, "events": 10, "events_per_sec": 1.0, "completed_txns": 5}
  ]
}"#;
        let map = parse_bench_json(legacy);
        assert_eq!(map["e0/x_2c"], BaselineEntry { wall_ms: 42.5, cpu_ms: None });
    }

    #[test]
    fn regression_gate_flags_only_shapes_over_budget() {
        let mut baseline = BTreeMap::new();
        baseline.insert("slow".to_string(), entry(100.0));
        baseline.insert("ok".to_string(), entry(100.0));
        // "new" has no baseline and must be ignored.
        let records = vec![record("slow", 130.0), record("ok", 120.0), record("new", 9.9)];
        let failures = check_regressions(&records, &baseline, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("slow:"), "{failures:?}");
    }

    #[test]
    fn regression_gate_prefers_cpu_time_when_both_sides_have_it() {
        // Wall-clock looks like a 2x regression (core contention under --jobs),
        // but CPU time is flat — the gate must pass on CPU and say so.
        let mut baseline = BTreeMap::new();
        baseline.insert("s".to_string(), BaselineEntry { wall_ms: 100.0, cpu_ms: Some(90.0) });
        let mut r = record("s", 200.0);
        r.cpu_ms = Some(92.0);
        assert!(check_regressions(&[r.clone()], &baseline, 0.25).is_empty());
        // Against a legacy baseline without cpu_ms, the same record falls back to
        // wall-clock and fails.
        baseline.insert("s".to_string(), entry(100.0));
        let failures = check_regressions(&[r], &baseline, 0.25);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("(wall,"), "{failures:?}");
    }

    #[test]
    fn delta_lines_cover_every_matched_shape_even_when_faster() {
        let mut baseline = BTreeMap::new();
        baseline.insert("fast".to_string(), entry(100.0));
        baseline.insert("slow".to_string(), entry(100.0));
        let records = vec![record("fast", 50.0), record("slow", 150.0), record("new", 1.0)];
        let lines = delta_lines(&records, &baseline);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("-50.0%"), "{lines:?}");
        assert!(lines[1].contains("+50.0%"), "{lines:?}");
    }

    #[test]
    fn unmatched_shapes_are_tolerated_in_both_directions() {
        // A baseline-only shape (retired) and a run-only shape (new, e.g. the
        // e10/store shapes) must be reported without failing the gate.
        let mut baseline = BTreeMap::new();
        baseline.insert("both".to_string(), entry(100.0));
        baseline.insert("retired".to_string(), entry(50.0));
        let records = vec![record("both", 90.0), record("e10/new_shape", 10.0)];
        let (missing, new) = unmatched_shapes(&records, &baseline);
        assert_eq!(missing, vec!["retired".to_string()]);
        assert_eq!(new, vec!["e10/new_shape".to_string()]);
        assert!(check_regressions(&records, &baseline, 0.25).is_empty());
    }

    #[test]
    fn time_shape_records_best_pass_and_counters() {
        let r = time_shape("t", 3, || (42, 7));
        assert_eq!(r.name, "t");
        assert_eq!(r.events, 42);
        assert_eq!(r.completed_txns, 7);
        assert!(r.wall_ms >= 0.0);
        assert!(r.wall_ms_median >= r.wall_ms);
        assert!(r.wall_ms_mean >= r.wall_ms);
    }
}
