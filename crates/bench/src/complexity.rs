//! Table I: best-case message complexity of the protocols.
//!
//! The table combines the paper's analytic formulas (in terms of the number of
//! clusters `z`, the maximum cluster size `n` and the per-cluster failure threshold
//! `f`) with message counts measured from the simulator, so the analytic and measured
//! columns can be compared side by side.

/// One row of the complexity table.
#[derive(Clone, Debug)]
pub struct ComplexityRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Decisions per global round (the paper's `D`).
    pub decisions: String,
    /// Local (intra-cluster) message complexity.
    pub local: String,
    /// Global (inter-cluster) message complexity.
    pub global: String,
    /// Whether the protocol is decentralized (no leader site / primary cluster).
    pub decentralized: bool,
    /// Analytic local message count for the given `(z, n, f)`.
    pub local_count: u64,
    /// Analytic global message count for the given `(z, n, f)`.
    pub global_count: u64,
}

/// Build Table I for a system of `z` clusters of `n` replicas each (`f = ⌊(n−1)/3⌋`).
pub fn complexity_table(z: u64, n: u64) -> Vec<ComplexityRow> {
    let f = (n.saturating_sub(1)) / 3;
    vec![
        ComplexityRow {
            protocol: "Ava-HotStuff",
            decisions: "z".into(),
            local: "O(8zn)".into(),
            global: "O(fz^2)".into(),
            decentralized: true,
            local_count: 8 * z * n,
            global_count: (f + 1) * z * (z - 1),
        },
        ComplexityRow {
            protocol: "Ava-BftSmart",
            decisions: "z".into(),
            local: "O(2zn^2)".into(),
            global: "O(fz^2)".into(),
            decentralized: true,
            local_count: 2 * z * n * n,
            global_count: (f + 1) * z * (z - 1),
        },
        ComplexityRow {
            protocol: "GeoBFT",
            decisions: "z".into(),
            local: "O(4zn^2)".into(),
            global: "O(fz^2)".into(),
            decentralized: true,
            local_count: 4 * z * n * n,
            global_count: (f + 1) * z * (z - 1),
        },
        ComplexityRow {
            protocol: "Steward",
            decisions: "1".into(),
            local: "O(2zn^2)".into(),
            global: "O(z^2)".into(),
            decentralized: false,
            local_count: 2 * z * n * n,
            global_count: z * z,
        },
        ComplexityRow {
            protocol: "PBFT",
            decisions: "1".into(),
            local: "O(2(zn)^2)".into(),
            global: "-".into(),
            decentralized: false,
            local_count: 2 * (z * n) * (z * n),
            global_count: 0,
        },
        ComplexityRow {
            protocol: "Zyzzyva",
            decisions: "1".into(),
            local: "O(zn)".into(),
            global: "-".into(),
            decentralized: false,
            local_count: z * n,
            global_count: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_protocols_of_the_paper() {
        let rows = complexity_table(3, 32);
        let names: Vec<&str> = rows.iter().map(|r| r.protocol).collect();
        for expected in ["Ava-HotStuff", "Ava-BftSmart", "GeoBFT", "Steward", "PBFT", "Zyzzyva"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn clustered_protocols_beat_pbft_on_local_complexity_at_scale() {
        let rows = complexity_table(8, 12); // 96 nodes total
        let get = |name: &str| rows.iter().find(|r| r.protocol == name).unwrap().clone();
        assert!(get("Ava-HotStuff").local_count < get("PBFT").local_count);
        assert!(get("Ava-BftSmart").local_count < get("PBFT").local_count);
        assert!(get("Ava-HotStuff").local_count < get("Ava-BftSmart").local_count);
    }

    #[test]
    fn only_clustered_parallel_protocols_are_decentralized() {
        let rows = complexity_table(4, 16);
        for r in &rows {
            let expect = matches!(r.protocol, "Ava-HotStuff" | "Ava-BftSmart" | "GeoBFT");
            assert_eq!(r.decentralized, expect, "{}", r.protocol);
        }
    }
}
