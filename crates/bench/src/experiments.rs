//! Experiment runners for E0–E10.
//!
//! Every function regenerates one of the paper's figures/tables as a printed table
//! of rows (and returns the rows so tests and EXPERIMENTS.md generation can assert on
//! them). Configurations follow the paper; the `ExperimentScale` controls run length
//! and sweep density so that the default invocation finishes in seconds while
//! `AVA_FULL=1` runs paper-scale parameters.
//!
//! All experiments are expressed through the declarative scenario API
//! ([`ava_scenario::Scenario`]): a protocol, a configuration, a schedule of typed
//! events, and observers collecting series mid-run. There are no per-protocol
//! deployment `match` arms here — [`Protocol::deploy`] is the single label-to-stack
//! mapping — and fault/churn injection is schedule construction, not generic free
//! functions.

use crate::report::{fmt, print_table, summarize, RunMetrics};
use ava_fuzz::CheckerSet;
use ava_hamava::harness::DeploymentOptions;
use ava_scenario::{
    BrokerStatsObserver, BrokerTier, ByzantineBehavior, ByzantineObserver, ReconfigTraceObserver,
    RecoveryObserver, RunPool, Scenario, ScenarioBuilder, StageBreakdownObserver,
    ThroughputObserver,
};
use ava_simnet::{CostModel, LatencyModel};
use ava_store::StoreConfig;
use ava_types::{ClusterId, Duration, Output, Region, SystemConfig, Time};
use ava_workload::{AggregateLoad, WorkloadSpec};

pub use ava_scenario::Protocol;

/// Scaling knobs for experiment runs.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentScale {
    /// Virtual run length.
    pub run: Duration,
    /// Fraction of the run treated as warm-up (excluded from the measurement window).
    pub warmup_frac: f64,
    /// Whether to run the full paper-scale sweeps.
    pub full: bool,
    /// Worker threads the sweep fans independent runs out over (1 = serial; the
    /// results are byte-identical either way, see `ava_scenario::parallel`).
    pub jobs: usize,
}

impl ExperimentScale {
    /// Reduced scale: small deployments, 12 s virtual runs.
    pub fn quick() -> Self {
        ExperimentScale {
            run: Duration::from_secs(12),
            warmup_frac: 0.4,
            full: false,
            jobs: ava_scenario::default_jobs(),
        }
    }

    /// Paper scale: 96-node deployments, 3-minute virtual runs.
    pub fn paper() -> Self {
        ExperimentScale {
            run: Duration::from_secs(180),
            warmup_frac: 2.0 / 3.0,
            full: true,
            jobs: ava_scenario::default_jobs(),
        }
    }

    /// `AVA_FULL=1` selects paper scale; `AVA_JOBS=n` overrides the worker count
    /// (default: all available cores).
    pub fn from_env() -> Self {
        let mut scale = if std::env::var("AVA_FULL").map(|v| v == "1").unwrap_or(false) {
            Self::paper()
        } else {
            Self::quick()
        };
        if let Some(jobs) = std::env::var("AVA_JOBS").ok().and_then(|v| v.parse::<usize>().ok()) {
            scale.jobs = jobs.max(1);
        }
        scale
    }

    /// Parse experiment-binary CLI flags on top of [`ExperimentScale::from_env`]:
    /// `--full` selects paper scale, `--jobs N` sets the worker count. Unknown
    /// arguments are ignored (the binaries have no other flags).
    pub fn from_env_and_args() -> Self {
        let mut scale = Self::from_env();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scale = ExperimentScale { jobs: scale.jobs, ..Self::paper() },
                "--jobs" => {
                    if let Some(jobs) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                        scale.jobs = jobs.max(1);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// The run pool every sweep of this scale fans out on.
    pub fn pool(&self) -> RunPool {
        RunPool::new(self.jobs)
    }

    fn window(&self) -> (Time, Time) {
        let end = Time::ZERO + self.run;
        let start = Time(((self.run.as_micros() as f64) * self.warmup_frac) as u64);
        (start, end)
    }

    /// Total node count used by the E0/E1 sweeps.
    pub fn total_nodes(&self) -> usize {
        if self.full {
            96
        } else {
            24
        }
    }

    /// Cluster-count sweep used by E0/E1/E6.
    pub fn cluster_sweep(&self) -> Vec<usize> {
        if self.full {
            vec![2, 3, 4, 6, 8, 12]
        } else {
            vec![2, 3, 4]
        }
    }
}

fn default_opts(seed: u64, scale: &ExperimentScale) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec {
            key_space: if scale.full { 100_000 } else { 10_000 },
            ..WorkloadSpec::default()
        },
        clients_per_cluster: 1,
        client_concurrency: if scale.full { 128 } else { 64 },
        store: None,
        state_machine: ava_hamava::StateMachineKind::Counter,
    }
}

fn adjust_batch(config: &mut SystemConfig, scale: &ExperimentScale) {
    if !scale.full {
        config.params.batch_size = 30;
    }
}

/// Tighten the failure/reconfiguration timeouts so recovery fits a reduced run.
fn adjust_timeouts(config: &mut SystemConfig, scale: &ExperimentScale) {
    if !scale.full {
        config.params.remote_leader_timeout = Duration::from_secs(4);
        config.params.local_timeout = Duration::from_secs(4);
        config.params.brd_timeout = Duration::from_secs(4);
    }
}

/// Start a scenario for one experiment run of `protocol`.
fn scenario(
    protocol: Protocol,
    config: SystemConfig,
    opts: DeploymentOptions,
    scale: &ExperimentScale,
) -> ScenarioBuilder {
    Scenario::builder(protocol, config).options(opts).run_for(scale.run)
}

/// Schedule E5-style churn: at each of `churn_count` evenly spaced boundaries, one
/// replica joins every cluster and one original member per cluster requests to
/// leave. Purely declarative — the runner applies the events at their times.
fn with_churn(
    mut builder: ScenarioBuilder,
    config: &SystemConfig,
    run: Duration,
    churn_count: usize,
) -> ScenarioBuilder {
    let segment = run.as_micros() / (churn_count as u64 + 1);
    for i in 0..churn_count {
        let at = Time(segment * (i as u64 + 1));
        for cluster in &config.clusters {
            let region = cluster.replicas[0].1;
            builder = builder.join_at(at, cluster.id, region);
            // Ask an original member (not the leader) to leave.
            if let Some((leaver, _)) = cluster.replicas.get(1 + i) {
                builder = builder.leave_at(at, *leaver);
            }
        }
    }
    builder
}

/// Run one plain deployment of `protocol` (empty schedule) and return its metrics
/// plus all raw outputs.
pub fn run_once(
    protocol: Protocol,
    config: SystemConfig,
    opts: DeploymentOptions,
    scale: &ExperimentScale,
) -> (RunMetrics, Vec<Output>) {
    let (start, end) = scale.window();
    let run = scenario(protocol, config, opts, scale).build().run();
    (summarize(&run.outputs, start, end), run.outputs)
}

// ---------------------------------------------------------------------------------
// E0 / E1: throughput and latency vs. number of clusters
// ---------------------------------------------------------------------------------

/// E0 (Fig. 3, left): multi-cluster, single region.
pub fn e0_single_region(scale: &ExperimentScale) -> Vec<Vec<String>> {
    clusters_sweep(scale, false, "E0: multi-cluster, single region (Fig. 3 left)")
}

/// E1 (Fig. 3, right): multi-cluster, three regions.
pub fn e1_multi_region(scale: &ExperimentScale) -> Vec<Vec<String>> {
    clusters_sweep(scale, true, "E1: multi-cluster, multi-region (Fig. 3 right)")
}

fn clusters_sweep(scale: &ExperimentScale, multi_region: bool, title: &str) -> Vec<Vec<String>> {
    let total = scale.total_nodes();
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let sweep = scale.cluster_sweep();
    // One independent run per (cluster count, protocol) cell, fanned out on the
    // pool; the map returns in input order, so row assembly below is identical to
    // the serial nested loop this replaces.
    let cells: Vec<(usize, Protocol)> =
        sweep.iter().flat_map(|&clusters| Protocol::AVA.map(|p| (clusters, p))).collect();
    let metrics = scale.pool().map(cells, |_, (clusters, protocol)| {
        let mut cfg = if multi_region {
            SystemConfig::even_split_multi_region(total, clusters, &regions)
        } else {
            SystemConfig::even_split_single_region(total, clusters, Region::UsWest)
        };
        adjust_batch(&mut cfg, scale);
        run_once(protocol, cfg, default_opts(1, scale), scale).0
    });
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .zip(metrics.chunks(Protocol::AVA.len()))
        .map(|(clusters, per_protocol)| {
            let mut row = vec![clusters.to_string()];
            for m in per_protocol {
                row.push(fmt(m.throughput_tps, 1));
                row.push(fmt(m.avg_latency_ms / 1000.0, 3));
            }
            row
        })
        .collect();
    print_table(
        title,
        &["clusters", "A.H tput (txn/s)", "A.H latency (s)", "A.B tput (txn/s)", "A.B latency (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E2: latency breakdown
// ---------------------------------------------------------------------------------

/// E2 (Fig. 4a): per-stage latency breakdown for 3 clusters × 4 nodes over 1, 2 and 3
/// regions, for both systems. The breakdown is collected by a
/// [`StageBreakdownObserver`] while the run executes.
pub fn e2_latency_breakdown(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let region_sets: [(&str, Vec<Region>); 3] = [
        ("1 region", vec![Region::AsiaSouth; 3]),
        ("2 regions", vec![Region::Europe, Region::AsiaSouth, Region::AsiaSouth]),
        ("3 regions", vec![Region::Europe, Region::AsiaSouth, Region::UsWest]),
    ];
    let (start, end) = scale.window();
    let cells: Vec<(Protocol, &str, &Vec<Region>)> = [Protocol::AvaBftSmart, Protocol::AvaHotStuff]
        .iter()
        .flat_map(|&p| region_sets.iter().map(move |(label, regions)| (p, *label, regions)))
        .collect();
    // Observers are created inside the worker, so each run's breakdown is
    // collected independently; rows come back in input order.
    let rows = scale.pool().map(cells, |_, (protocol, label, regions)| {
        let cluster_regions: Vec<Vec<Region>> = regions.iter().map(|&r| vec![r; 4]).collect();
        let mut config = SystemConfig::heterogeneous(&cluster_regions);
        adjust_batch(&mut config, scale);
        let mut stages = StageBreakdownObserver::new();
        let run = scenario(protocol, config, default_opts(2, scale), scale)
            .build()
            .run_observed(&mut [&mut stages]);
        let metrics = summarize(&run.outputs, start, end);
        let breakdown = stages.breakdown();
        vec![
            protocol.label().to_string(),
            label.to_string(),
            fmt(breakdown[0], 1),
            fmt(breakdown[1], 1),
            fmt(breakdown[2], 1),
            fmt(metrics.read_latency_ms, 1),
            fmt(metrics.write_latency_ms, 1),
        ]
    });
    print_table(
        "E2: latency breakdown (Fig. 4a)",
        &[
            "system",
            "regions",
            "intra-cluster (ms)",
            "inter-cluster (ms)",
            "execution (ms)",
            "read latency (ms)",
            "write latency (ms)",
        ],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E3: heterogeneity
// ---------------------------------------------------------------------------------

/// The three setups of E3 at scale factor `s`: (1) equal-sized clusters mixing
/// regions, (2) clusters partitioned by region, (3) region partition plus an
/// intra-region split.
pub fn e3_setup(setup: usize, s: usize) -> SystemConfig {
    let asia = Region::AsiaSouth;
    let eu = Region::Europe;
    let cluster_regions: Vec<Vec<Region>> = match setup {
        1 => vec![vec![asia; 7 * s], [vec![asia; 2 * s], vec![eu; 5 * s]].concat()],
        2 => vec![vec![asia; 9 * s], vec![eu; 5 * s]],
        3 => vec![vec![asia; 5 * s], vec![asia; 4 * s], vec![eu; 5 * s]],
        _ => panic!("unknown E3 setup {setup}"),
    };
    SystemConfig::heterogeneous(&cluster_regions)
}

/// E3 (Fig. 4b–e): impact of heterogeneity for both systems.
pub fn e3_heterogeneity(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let scales: Vec<usize> = if scale.full { vec![1, 2, 3, 4, 5] } else { vec![1, 2] };
    let cells: Vec<(Protocol, usize, usize)> = Protocol::AVA
        .iter()
        .flat_map(|&p| scales.iter().flat_map(move |&s| (1..=3).map(move |setup| (p, s, setup))))
        .collect();
    let metrics = scale.pool().map(cells.clone(), |_, (protocol, s, setup)| {
        let mut config = e3_setup(setup, s);
        adjust_batch(&mut config, scale);
        run_once(protocol, config, default_opts(3, scale), scale).0
    });
    let rows: Vec<Vec<String>> = cells
        .chunks(3)
        .zip(metrics.chunks(3))
        .map(|(cell_chunk, per_setup)| {
            let (protocol, s, _) = cell_chunk[0];
            let mut row = vec![protocol.label().to_string(), s.to_string()];
            for m in per_setup {
                row.push(fmt(m.throughput_tps, 1));
                row.push(fmt(m.avg_latency_ms / 1000.0, 3));
            }
            row
        })
        .collect();
    print_table(
        "E3: heterogeneity (Fig. 4b-e)",
        &[
            "system",
            "scale s",
            "setup1 tput",
            "setup1 lat (s)",
            "setup2 tput",
            "setup2 lat (s)",
            "setup3 tput",
            "setup3 lat (s)",
        ],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E4: failures
// ---------------------------------------------------------------------------------

/// Failure scenarios of E4.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureScenario {
    /// E4.1: crash up to f non-leader replicas per cluster.
    NonLeader,
    /// E4.2: crash the leader of one cluster.
    Leader,
    /// E4.3: Byzantine leader that withholds inter-cluster messages.
    ByzantineLeader,
}

/// E4 (Fig. 4f–h): throughput time series around a failure, for both systems.
///
/// The failure is a scheduled [`ava_scenario::ScenarioEvent`]; the series comes from
/// a [`ThroughputObserver`] attached to the run. The old harness silently ran a
/// BFT-SMaRt deployment when handed the GeoBFT label here — with [`Protocol::deploy`]
/// as the only label-to-stack mapping, that mismatch is unrepresentable.
pub fn e4_failures(scenario_kind: FailureScenario, scale: &ExperimentScale) -> Vec<Vec<String>> {
    let nodes_per_cluster = if scale.full { 10 } else { 7 };
    let fail_at = Time(scale.run.as_micros() / 3);
    let series: Vec<(Protocol, Vec<(f64, f64)>)> =
        scale.pool().map(Protocol::AVA.to_vec(), |_, protocol| {
            let mut config = SystemConfig::homogeneous_regions(&[
                (nodes_per_cluster, Region::UsWest),
                (nodes_per_cluster, Region::Europe),
            ]);
            adjust_batch(&mut config, scale);
            // Faster remote-leader/local timeouts so recovery fits the reduced run.
            adjust_timeouts(&mut config, scale);
            let mut builder = scenario(protocol, config.clone(), default_opts(4, scale), scale);
            builder = match scenario_kind {
                FailureScenario::NonLeader => {
                    // Crash f non-leader replicas in each cluster.
                    for cluster in &config.clusters {
                        let f = (cluster.replicas.len() - 1) / 3;
                        for (id, _) in cluster.replicas.iter().skip(1).take(f) {
                            builder = builder.crash_at(fail_at, *id);
                        }
                    }
                    builder
                }
                FailureScenario::Leader => builder.crash_initial_leader_at(fail_at, ClusterId(0)),
                FailureScenario::ByzantineLeader => {
                    // The leader keeps acting correctly locally but stops
                    // inter-cluster broadcasts; the remote cluster must trigger the
                    // remote leader change.
                    let leader = config.initial_leader(ClusterId(0));
                    builder.mute_inter_cluster_at(fail_at, leader)
                }
            };
            let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
            builder.build().run_observed(&mut [&mut throughput]);
            (protocol, throughput.series())
        });
    let mut rows = Vec::new();
    for (protocol, points) in &series {
        for (t, tps) in points {
            rows.push(vec![protocol.label().to_string(), fmt(*t, 0), fmt(*tps, 1)]);
        }
    }
    print_table(
        &format!(
            "E4 ({scenario_kind:?}): throughput over time, failure at {}s (Fig. 4f-h)",
            fail_at.as_secs_f64()
        ),
        &["system", "time (s)", "throughput (txn/s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E5: reconfiguration
// ---------------------------------------------------------------------------------

/// E5.1 (Fig. 5a): three joins and three leaves per cluster at marked times.
pub fn e5_joins_and_leaves(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let nodes = if scale.full { 7 } else { 5 };
    let per_protocol = scale.pool().map(Protocol::AVA.to_vec(), |_, protocol| {
        let mut config =
            SystemConfig::homogeneous_regions(&[(nodes, Region::UsWest), (nodes, Region::Europe)]);
        adjust_batch(&mut config, scale);
        let builder = scenario(protocol, config.clone(), default_opts(5, scale), scale);
        let builder = with_churn(builder, &config, scale.run, 3);
        let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
        let run = builder.build().run_observed(&mut [&mut throughput]);
        let applied =
            run.outputs.iter().filter(|o| matches!(o, Output::ReconfigApplied { .. })).count();
        (protocol, applied, throughput.series())
    });
    let mut rows = Vec::new();
    for (protocol, applied, series) in per_protocol {
        for (t, tps) in series {
            rows.push(vec![
                protocol.label().to_string(),
                fmt(t, 0),
                fmt(tps, 1),
                applied.to_string(),
            ]);
        }
    }
    print_table(
        "E5.1: join/leave churn (Fig. 5a)",
        &["system", "time (s)", "throughput (txn/s)", "reconfigs applied (total)"],
        &rows,
    );
    rows
}

fn e5_workflow_config(scale: &ExperimentScale, parallel: bool) -> SystemConfig {
    let mut config = SystemConfig::homogeneous_regions(&[
        (if scale.full { 10 } else { 6 }, Region::UsWest),
        (if scale.full { 8 } else { 5 }, Region::Europe),
    ]);
    adjust_batch(&mut config, scale);
    config.params.parallel_reconfig_workflow = parallel;
    config
}

/// E5.2 (Fig. 5b): parallel reconfiguration workflow vs. single workflow.
pub fn e5_workflow_comparison(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let cells: Vec<(Protocol, bool)> =
        Protocol::AVA.iter().flat_map(|&p| [true, false].map(|w| (p, w))).collect();
    let rows = scale.pool().map(cells, |_, (protocol, parallel)| {
        let config = e5_workflow_config(scale, parallel);
        let mut opts = default_opts(6, scale);
        opts.workload = WorkloadSpec::default().write_only();
        let (start, end) = scale.window();
        let builder = scenario(protocol, config.clone(), opts, scale);
        let run = with_churn(builder, &config, scale.run, 2).build().run();
        let m = summarize(&run.outputs, start, end);
        vec![
            protocol.label().to_string(),
            if parallel { "parallel workflows".into() } else { "single workflow".into() },
            fmt(m.throughput_tps, 1),
            fmt(m.avg_latency_ms / 1000.0, 3),
        ]
    });
    print_table(
        "E5.2: parallel vs single reconfiguration workflow (Fig. 5b)",
        &["system", "workflow", "throughput (txn/s)", "latency (s)"],
        &rows,
    );
    rows
}

/// E5.2 diagnosis: run the "single workflow" ablation with a
/// [`ReconfigTraceObserver`] attached and print the per-round
/// reconfiguration/commit trace (which rounds executed, when, with how many
/// transactions, which reconfigurations they carried, plus leader changes). This is
/// the mid-run visibility the old `take_outputs()`-at-the-end harness could not
/// provide; see EXPERIMENTS.md for the resulting finding.
pub fn e5_workflow_trace(scale: &ExperimentScale) -> ReconfigTraceObserver {
    let config = e5_workflow_config(scale, false);
    let mut opts = default_opts(6, scale);
    opts.workload = WorkloadSpec::default().write_only();
    let builder = scenario(Protocol::AvaHotStuff, config.clone(), opts, scale);
    let mut trace = ReconfigTraceObserver::new();
    let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
    let run = with_churn(builder, &config, scale.run, 2)
        .build()
        .run_observed(&mut [&mut trace, &mut throughput]);
    print_table(
        "E5.2 trace: per-round commit/reconfiguration activity (single workflow, A.H)",
        &[
            "cluster",
            "round",
            "s1/s2/s3",
            "executions",
            "txns",
            "reconfigs",
            "first (s)",
            "last (s)",
        ],
        &trace.trace_rows(),
    );
    let mut aux: Vec<Vec<String>> = trace
        .scheduled_events()
        .iter()
        .map(|(t, e)| vec![fmt(t.as_secs_f64(), 1), e.clone()])
        .collect();
    for (t, cluster, leader) in trace.leader_changes() {
        aux.push(vec![
            fmt(t.as_secs_f64(), 1),
            format!("LeaderChanged {{ cluster: {}, new_leader: {leader} }}", cluster.0),
        ]);
    }
    print_table("E5.2 trace: schedule + leader changes", &["time (s)", "event"], &aux);
    println!(
        "completed transactions: {} (throughput buckets: {})",
        throughput.completed(),
        throughput.series().len()
    );
    let _ = run;
    trace
}

// ---------------------------------------------------------------------------------
// E6: comparison with GeoBFT
// ---------------------------------------------------------------------------------

/// E6 (Fig. 6): AVA-HOTSTUFF vs GeoBFT, single- and multi-region.
pub fn e6_vs_geobft(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let total = if scale.full { 48 } else { 16 };
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let protocols = [Protocol::AvaHotStuff, Protocol::GeoBft];
    let shapes: Vec<(&str, bool, usize)> = [("single region", false), ("multi region", true)]
        .iter()
        .flat_map(|&(mode, multi)| {
            scale
                .cluster_sweep()
                .into_iter()
                .filter(|&clusters| clusters <= total / 4)
                .map(move |clusters| (mode, multi, clusters))
        })
        .collect();
    let cells: Vec<(&str, bool, usize, Protocol)> = shapes
        .iter()
        .flat_map(|&(mode, multi, clusters)| protocols.map(|p| (mode, multi, clusters, p)))
        .collect();
    let metrics = scale.pool().map(cells, |_, (_, multi, clusters, protocol)| {
        let mut cfg = if multi {
            SystemConfig::even_split_multi_region(total, clusters, &regions)
        } else {
            SystemConfig::even_split_single_region(total, clusters, Region::UsWest)
        };
        adjust_batch(&mut cfg, scale);
        run_once(protocol, cfg, default_opts(7, scale), scale).0
    });
    let rows: Vec<Vec<String>> = shapes
        .iter()
        .zip(metrics.chunks(protocols.len()))
        .map(|(&(mode, _, clusters), per_protocol)| {
            let mut row = vec![mode.to_string(), clusters.to_string()];
            for m in per_protocol {
                row.push(fmt(m.throughput_tps, 1));
                row.push(fmt(m.avg_latency_ms / 1000.0, 3));
            }
            row
        })
        .collect();
    print_table(
        "E6: Ava-HotStuff vs GeoBFT (Fig. 6)",
        &["placement", "clusters", "A.H tput", "A.H lat (s)", "GeoBFT tput", "GeoBFT lat (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E7: reconfiguration frequency
// ---------------------------------------------------------------------------------

/// E7 (Fig. 7): impact of the reconfiguration request frequency.
pub fn e7_reconfig_frequency(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let frequencies = [("none", 0usize), ("every 20s", 2), ("continuous", 6)];
    let cells: Vec<(Protocol, &str, usize)> = Protocol::AVA
        .iter()
        .flat_map(|&p| frequencies.map(|(label, churn)| (p, label, churn)))
        .collect();
    let rows = scale.pool().map(cells, |_, (protocol, label, churn_rounds)| {
        let mut config = SystemConfig::homogeneous_regions(&[
            (if scale.full { 10 } else { 6 }, Region::UsWest),
            (if scale.full { 10 } else { 6 }, Region::Europe),
        ]);
        adjust_batch(&mut config, scale);
        let (start, end) = scale.window();
        let builder = scenario(protocol, config.clone(), default_opts(8, scale), scale);
        let run = with_churn(builder, &config, scale.run, churn_rounds).build().run();
        let m = summarize(&run.outputs, start, end);
        vec![
            protocol.label().to_string(),
            label.to_string(),
            fmt(m.throughput_tps, 1),
            fmt(m.avg_latency_ms / 1000.0, 3),
        ]
    });
    print_table(
        "E7: reconfiguration frequency (Fig. 7)",
        &["system", "reconfig frequency", "throughput (txn/s)", "latency (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E8: network latency during reconfiguration
// ---------------------------------------------------------------------------------

/// E8 (Fig. 8): impact of the inter-cluster network latency while reconfigurations
/// are issued continuously. The second cluster is placed at increasing RTT from the
/// first (52, 91, 142, 219 ms — the paper's us-east5, asia-northeast1, europe-west3,
/// asia-south1 zones).
pub fn e8_network_latency(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let second_regions = [
        (Region::UsEast, 52.0),
        (Region::AsiaNortheast, 91.0),
        (Region::Europe, 142.0),
        (Region::AsiaSouth, 219.0),
    ];
    let cells: Vec<(Protocol, Region, f64)> = Protocol::AVA
        .iter()
        .flat_map(|&p| second_regions.map(|(region, rtt)| (p, region, rtt)))
        .collect();
    let rows = scale.pool().map(cells, |_, (protocol, region, rtt)| {
        let mut config = SystemConfig::homogeneous_regions(&[
            (if scale.full { 10 } else { 6 }, Region::UsWest),
            (if scale.full { 10 } else { 6 }, region),
        ]);
        adjust_batch(&mut config, scale);
        let mut opts = default_opts(9, scale);
        let mut latency = LatencyModel::paper_table2();
        latency.set_rtt(Region::UsWest, region, rtt);
        opts.latency = latency;
        let (start, end) = scale.window();
        let builder = scenario(protocol, config.clone(), opts, scale);
        let run = with_churn(builder, &config, scale.run, 2).build().run();
        let m = summarize(&run.outputs, start, end);
        vec![
            protocol.label().to_string(),
            format!("{rtt:.0} ms ({})", region.zone_name()),
            fmt(m.throughput_tps, 1),
            fmt(m.avg_latency_ms / 1000.0, 3),
        ]
    });
    print_table(
        "E8: network latency during reconfiguration (Fig. 8)",
        &["system", "inter-cluster RTT", "throughput (txn/s)", "latency (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E9: partitions and latency shifts (scenario shapes beyond the paper)
// ---------------------------------------------------------------------------------

/// E9: two scenario shapes the hand-wired harness could not express —
/// (a) a mid-run inter-region partition between the two clusters that heals after a
/// third of the run, and (b) a mid-run latency-model shift that moves the
/// inter-cluster RTT from the paper's table to a uniform 219 ms WAN. Both print an
/// observer-produced throughput time series.
pub fn e9_partitions(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let nodes = if scale.full { 7 } else { 5 };
    let third = Time(scale.run.as_micros() / 3);
    let two_thirds = Time(2 * scale.run.as_micros() / 3);
    let half = Time(scale.run.as_micros() / 2);
    let cells: Vec<(Protocol, &str)> = Protocol::AVA
        .iter()
        .flat_map(|&p| ["partition+heal", "latency shift 142->219ms"].map(|shape| (p, shape)))
        .collect();
    let results = scale.pool().map(cells, |_, (protocol, shape)| {
        let mut config =
            SystemConfig::homogeneous_regions(&[(nodes, Region::UsWest), (nodes, Region::Europe)]);
        adjust_batch(&mut config, scale);
        adjust_timeouts(&mut config, scale);
        let builder = match shape {
            "partition+heal" => scenario(protocol, config, default_opts(10, scale), scale)
                .partition_at(third, ClusterId(0), ClusterId(1))
                .heal_at(two_thirds, ClusterId(0), ClusterId(1)),
            _ => scenario(protocol, config, default_opts(10, scale), scale)
                .latency_shift_at(half, LatencyModel::uniform(219.0)),
        };
        let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
        let run = builder.build().run_observed(&mut [&mut throughput]);
        (protocol, shape, throughput.series(), run.stats.dropped_messages)
    });
    let mut rows = Vec::new();
    let mut dropped = Vec::new();
    for (protocol, shape, series, dropped_messages) in results {
        for (t, tps) in series {
            rows.push(vec![
                protocol.label().to_string(),
                shape.to_string(),
                fmt(t, 0),
                fmt(tps, 1),
            ]);
        }
        dropped.push(vec![
            protocol.label().to_string(),
            shape.to_string(),
            dropped_messages.to_string(),
        ]);
    }
    print_table(
        "E9: mid-run partition/heal and latency shift (scenario API)",
        &["system", "shape", "time (s)", "throughput (txn/s)"],
        &rows,
    );
    print_table(
        "E9: messages dropped by the partition",
        &["system", "shape", "dropped messages"],
        &dropped,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E10: crash → restart → catch-up recovery (the ava-store subsystem)
// ---------------------------------------------------------------------------------

/// E10: recovery-time curves for the crash → restart → catch-up path. Sweeps crash
/// duration × checkpoint interval on the E4.1 shape (f non-leader replicas per
/// cluster crash, then restart with only their persisted store): for each cell the
/// table reports the slowest time-to-caught-up, the rounds/bytes transferred from
/// peers, and end-of-run throughput relative to the pre-crash rate. The
/// `RecoveryObserver` supplies the recovery columns; the acceptance bar of the
/// subsystem is the recovery ratio returning to ≥ 80% at quick scale.
pub fn e10_recovery(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let nodes_per_cluster = if scale.full { 10 } else { 7 };
    let crash_at = Time(scale.run.as_micros() / 3);
    let crash_durations: Vec<u64> = if scale.full { vec![5, 20, 60] } else { vec![1, 4] };
    let checkpoint_intervals: Vec<u64> = if scale.full { vec![4, 16, 64] } else { vec![4, 16] };
    let bucket = Duration::from_secs(2);
    let mut cells: Vec<(Protocol, u64, u64)> = Vec::new();
    for p in Protocol::AVA {
        for &crash_secs in &crash_durations {
            for &interval in &checkpoint_intervals {
                cells.push((p, crash_secs, interval));
            }
        }
    }
    let rows = scale.pool().map(cells, |_, (protocol, crash_secs, interval)| {
        let mut config = SystemConfig::homogeneous_regions(&[
            (nodes_per_cluster, Region::UsWest),
            (nodes_per_cluster, Region::Europe),
        ]);
        adjust_batch(&mut config, scale);
        adjust_timeouts(&mut config, scale);
        let restart_at = crash_at + Duration::from_secs(crash_secs);
        let mut builder = scenario(protocol, config.clone(), default_opts(13, scale), scale)
            .store(StoreConfig::every(interval));
        for cluster in &config.clusters {
            let f = (cluster.replicas.len() - 1) / 3;
            for (id, _) in cluster.replicas.iter().skip(1).take(f) {
                builder = builder.crash_at(crash_at, *id).restart_at(restart_at, *id);
            }
        }
        let mut throughput = ThroughputObserver::new(bucket);
        let mut recovery = RecoveryObserver::new();
        builder.build().run_observed(&mut [&mut throughput, &mut recovery]);

        let series = throughput.series();
        let pre_crash = series
            .iter()
            .filter(|(t, _)| *t <= crash_at.as_secs_f64())
            .map(|(_, tps)| *tps)
            .fold(0.0f64, f64::max);
        let end_rate = series.iter().rev().take(3).map(|(_, tps)| *tps).fold(0.0f64, f64::max);
        let ratio = if pre_crash > 0.0 { 100.0 * end_rate / pre_crash } else { 0.0 };
        let ttc = recovery
            .max_time_to_caught_up()
            .map(|d| fmt(d.as_millis_f64(), 1))
            .unwrap_or_else(|| "stalled".into());
        vec![
            protocol.label().to_string(),
            crash_secs.to_string(),
            interval.to_string(),
            ttc,
            recovery.total_rounds_transferred().to_string(),
            recovery.total_bytes_transferred().to_string(),
            fmt(pre_crash, 1),
            fmt(end_rate, 1),
            fmt(ratio, 1),
        ]
    });
    print_table(
        &format!(
            "E10: crash→restart recovery, crash at {}s (crash duration × checkpoint interval)",
            crash_at.as_secs_f64()
        ),
        &[
            "system",
            "crash dur (s)",
            "ckpt every (rounds)",
            "time-to-caught-up (ms)",
            "rounds transferred",
            "bytes transferred",
            "pre-crash tput",
            "end tput",
            "recovery %",
        ],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E11: broker-tier saturation sweep (beyond the paper)
// ---------------------------------------------------------------------------------

/// One cell of the E11 saturation sweep.
#[derive(Clone, Debug)]
pub struct SaturationPoint {
    /// Total offered load across all clusters, in transactions per second.
    pub offered_tps: u64,
    /// Acked throughput over the steady-state window, in transactions per second.
    pub committed_tps: f64,
    /// Median ack latency over the window, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile ack latency over the window, in milliseconds.
    pub p99_ms: f64,
    /// Virtual-client acks over the whole run (issue window plus drain).
    pub acked: u64,
    /// Operations bounced by broker backpressure over the whole run.
    pub shed: u64,
    /// Mean operations per flushed batch across all brokers.
    pub batch_occupancy: f64,
}

/// Virtual clients collapsed into each broker's aggregate generator: the E11
/// acceptance bar is ≥ 10⁵ per broker actor even at quick scale.
pub fn e11_virtual_clients(scale: &ExperimentScale) -> u64 {
    if scale.full {
        250_000
    } else {
        100_000
    }
}

/// Per-cluster offered-rate sweep for E11, in transactions per second. The
/// sweep is sized to cross the tier's admission ceiling (see [`e11_cell`]) well
/// before its top cell, so the knee sits inside the sweep at either scale.
pub fn e11_offered_sweep(scale: &ExperimentScale) -> Vec<u64> {
    if scale.full {
        vec![1_000, 2_000, 4_000, 8_000, 16_000, 24_000]
    } else {
        vec![1_000, 2_000, 4_000, 8_000, 12_000, 16_000]
    }
}

fn e11_config(scale: &ExperimentScale) -> SystemConfig {
    let mut config = if scale.full {
        let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
        SystemConfig::even_split_multi_region(24, 3, &regions)
    } else {
        SystemConfig::even_split_single_region(8, 2, Region::UsWest)
    };
    adjust_batch(&mut config, scale);
    config
}

/// Run one E11 cell: a broker tier per cluster (1 broker each) absorbing an
/// open-loop aggregate load of `offered_per_cluster` tps, measured over the
/// steady-state part of the issue window.
///
/// The broker tier itself is generously provisioned (default batch and
/// in-flight bounds; its pipelined admission ceiling sits near 10⁵ tps per
/// cluster under intra-region latencies), so the binding constraint is the
/// replicas' virtual CPU: the cell dials `per_tx_execute` up to 250 µs — a
/// heavyweight state machine — which puts the execution ceiling near the
/// middle of [`e11_offered_sweep`]. Below the ceiling the tier is transparent
/// (committed ≈ offered); above it the execution backlog delays admission
/// replies, the broker's in-flight slots stall, its bounded queue fills and
/// sheds, and committed throughput plateaus while ack latency inflates: that
/// crossover is the saturation knee E11 reports.
pub fn e11_cell(scale: &ExperimentScale, offered_per_cluster: u64) -> SaturationPoint {
    let config = e11_config(scale);
    let clusters = config.clusters.len() as u64;
    // Issue for two thirds of the run, then let the backlog drain; measure
    // steady state in the second three quarters of the issue window.
    let issue = Duration(scale.run.as_micros() * 2 / 3);
    let tier = BrokerTier {
        brokers_per_cluster: 1,
        queue_cap: 20_000,
        load: AggregateLoad {
            virtual_clients: e11_virtual_clients(scale),
            offered_tps: offered_per_cluster,
            issue_for: issue,
            ..AggregateLoad::default()
        },
        ..BrokerTier::default()
    };
    let mut opts = default_opts(14, scale);
    opts.clients_per_cluster = 0; // all load arrives through the broker tier
    opts.costs.per_tx_execute = Duration::from_micros(250); // heavyweight state machine
    let mut stats = BrokerStatsObserver::new();
    let run = scenario(Protocol::AvaHotStuff, config, opts, scale)
        .brokers(tier)
        .build()
        .run_observed(&mut [&mut stats]);
    let window_start = Time(issue.as_micros() / 4);
    let window_end = Time(issue.as_micros());
    let m = summarize(&run.outputs, window_start, window_end);
    let acked =
        run.outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count() as u64;
    SaturationPoint {
        offered_tps: offered_per_cluster * clusters,
        committed_tps: m.throughput_tps,
        p50_ms: m.p50_latency_ms,
        p99_ms: m.p99_latency_ms,
        acked,
        shed: stats.total_shed(),
        batch_occupancy: stats.mean_occupancy(),
    }
}

/// The saturation knee: the first sweep point whose committed throughput falls
/// visibly (> 10%) short of its offered load. Everything before it is the linear
/// regime; everything from it on is the plateau.
pub fn e11_knee(points: &[SaturationPoint]) -> Option<u64> {
    points.iter().find(|p| p.committed_tps < 0.9 * p.offered_tps as f64).map(|p| p.offered_tps)
}

/// E11: offered-load sweep through the broker tier — committed throughput,
/// latency percentiles and shed counts per offered rate, plus the detected
/// saturation knee. Returns the sweep points and the knee.
pub fn e11_saturation(scale: &ExperimentScale) -> (Vec<SaturationPoint>, Option<u64>) {
    let points = scale.pool().map(e11_offered_sweep(scale), |_, offered| e11_cell(scale, offered));
    let knee = e11_knee(&points);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.offered_tps.to_string(),
                fmt(p.committed_tps, 1),
                fmt(p.p50_ms, 1),
                fmt(p.p99_ms, 1),
                p.acked.to_string(),
                p.shed.to_string(),
                fmt(p.batch_occupancy, 1),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E11: broker-tier saturation sweep ({} virtual clients per broker), knee at {}",
            e11_virtual_clients(scale),
            knee.map(|k| format!("{k} tps offered")).unwrap_or_else(|| "none".into()),
        ),
        &[
            "offered (txn/s)",
            "committed (txn/s)",
            "p50 (ms)",
            "p99 (ms)",
            "acked (total)",
            "shed",
            "batch occupancy",
        ],
        &rows,
    );
    (points, knee)
}

/// Serialize an E11 sweep into the JSON document the binary prints (hand-rolled,
/// like [`crate::perf::render_json`] — the format is our own).
pub fn e11_json(scale: &ExperimentScale, points: &[SaturationPoint], knee: Option<u64>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"e11_saturation\",\n  \"mode\": \"{}\",\n",
        if scale.full { "full" } else { "quick" }
    ));
    out.push_str(&format!("  \"virtual_clients_per_broker\": {},\n", e11_virtual_clients(scale)));
    out.push_str(&format!(
        "  \"knee_offered_tps\": {},\n  \"points\": [\n",
        knee.map(|k| k.to_string()).unwrap_or_else(|| "null".into())
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"offered_tps\": {}, \"committed_tps\": {:.1}, \"p50_ms\": {:.1}, \
             \"p99_ms\": {:.1}, \"acked\": {}, \"shed\": {}, \"batch_occupancy\": {:.2}}}{}\n",
            p.offered_tps,
            p.committed_tps,
            p.p50_ms,
            p.p99_ms,
            p.acked,
            p.shed,
            p.batch_occupancy,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------------
// E12: Byzantine adversary sweep (beyond the paper)
// ---------------------------------------------------------------------------------

/// One cell of the E12 Byzantine sweep: one behavior at one per-cluster
/// corruption count, with the full invariant-checker suite riding along.
#[derive(Clone, Debug)]
pub struct ByzantineCell {
    /// The adversary behavior every corrupted replica exhibits.
    pub behavior: ByzantineBehavior,
    /// Distinct replicas corrupted in each cluster (≤ f by construction).
    pub corrupted_per_cluster: usize,
    /// Committed throughput over the measurement window, in transactions per
    /// second.
    pub committed_tps: f64,
    /// Throughput loss relative to the `Honest` baseline cell at the same
    /// corruption count, in percent (0 for the baseline itself).
    pub degradation_pct: f64,
    /// `ByzantineRejected` evidence honest replicas emitted during the run.
    pub rejections: u64,
    /// `EquivocationObserved` evidence honest replicas emitted during the run.
    pub equivocations: u64,
    /// Safety-checker violations — the sweep's acceptance bar is that this is
    /// empty in every cell.
    pub violations: Vec<String>,
}

/// Per-cluster corruption counts the sweep covers: `1..=f` for the scale's
/// cluster size (quick: f = 1; full: f = 2).
pub fn e12_corrupt_counts(scale: &ExperimentScale) -> Vec<usize> {
    let f = (e12_nodes_per_cluster(scale) - 1) / 3;
    (1..=f).collect()
}

fn e12_nodes_per_cluster(scale: &ExperimentScale) -> usize {
    if scale.full {
        7
    } else {
        4
    }
}

fn e12_config(scale: &ExperimentScale) -> SystemConfig {
    let n = e12_nodes_per_cluster(scale);
    let mut config = SystemConfig::homogeneous_regions(&[(n, Region::UsWest), (n, Region::Europe)]);
    adjust_batch(&mut config, scale);
    // Corrupting a leader must be recoverable inside a reduced run: tighten the
    // leader-change and BRD timeouts the same way the E4 failure sweeps do.
    adjust_timeouts(&mut config, scale);
    config
}

/// Run one E12 cell: corrupt `corrupted_per_cluster` replicas in *every*
/// cluster (the initial leader first — the most disruptive target — then the
/// members after it) at 20% of the run, with `behavior`. The fuzzer's full
/// [`CheckerSet`] observes the run, so any safety regression a behavior causes
/// fails the sweep rather than hiding in a throughput number.
pub fn e12_cell(
    scale: &ExperimentScale,
    behavior: ByzantineBehavior,
    corrupted_per_cluster: usize,
) -> ByzantineCell {
    let config = e12_config(scale);
    let corrupt_at = Time(scale.run.as_micros() / 5);
    let mut builder =
        scenario(Protocol::AvaHotStuff, config.clone(), default_opts(12, scale), scale);
    for cluster in &config.clusters {
        let leader = config.initial_leader(cluster.id);
        let mut targets = vec![leader];
        targets.extend(cluster.replicas.iter().map(|(id, _)| *id).filter(|id| *id != leader));
        for id in targets.into_iter().take(corrupted_per_cluster) {
            builder = builder.corrupt_at(corrupt_at, id, behavior);
        }
    }
    let mut checkers = CheckerSet::standard();
    let mut evidence = ByzantineObserver::new();
    let run = builder.build().run_observed(&mut [&mut checkers, &mut evidence]);
    let (start, end) = scale.window();
    let m = summarize(&run.outputs, start, end);
    ByzantineCell {
        behavior,
        corrupted_per_cluster,
        committed_tps: m.throughput_tps,
        degradation_pct: 0.0, // filled in against the Honest baseline by the sweep
        rejections: evidence.total_rejections(),
        equivocations: evidence.equivocations(),
        violations: checkers.violations().iter().map(|v| v.to_string()).collect(),
    }
}

/// E12: behavior × corruption-count sweep. Every cell stays within the f-per-
/// cluster adversary model (the scenario builder enforces it), every cell runs
/// under the full checker suite, and the table reports the liveness price of
/// each behavior against the `Honest` decorator baseline.
pub fn e12_byzantine(scale: &ExperimentScale) -> Vec<ByzantineCell> {
    let grid: Vec<(ByzantineBehavior, usize)> = e12_corrupt_counts(scale)
        .into_iter()
        .flat_map(|count| ByzantineBehavior::ALL.into_iter().map(move |b| (b, count)))
        .collect();
    let mut cells = scale.pool().map(grid, |_, (b, count)| e12_cell(scale, b, count));
    // Degradation is relative to the Honest cell at the same corruption count:
    // same schedule shape, same decorators, zero deviation.
    let baselines: Vec<(usize, f64)> = cells
        .iter()
        .filter(|c| c.behavior == ByzantineBehavior::Honest)
        .map(|c| (c.corrupted_per_cluster, c.committed_tps))
        .collect();
    for cell in &mut cells {
        let base = baselines
            .iter()
            .find(|(count, _)| *count == cell.corrupted_per_cluster)
            .map(|(_, tps)| *tps)
            .unwrap_or(0.0);
        cell.degradation_pct =
            if base > 0.0 { ((base - cell.committed_tps) / base * 100.0).max(0.0) } else { 0.0 };
    }
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.behavior.label().to_string(),
                c.corrupted_per_cluster.to_string(),
                fmt(c.committed_tps, 1),
                fmt(c.degradation_pct, 1),
                c.rejections.to_string(),
                c.equivocations.to_string(),
                c.violations.len().to_string(),
            ]
        })
        .collect();
    let total_violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    print_table(
        &format!(
            "E12: Byzantine adversary sweep, corruption at {}s ({} safety violations)",
            Time(scale.run.as_micros() / 5).as_secs_f64(),
            total_violations
        ),
        &[
            "behavior",
            "corrupt/cluster",
            "committed (txn/s)",
            "vs honest (%)",
            "rejections",
            "equivocations",
            "violations",
        ],
        &rows,
    );
    cells
}

/// Serialize an E12 sweep into the JSON document the binary prints. The CI gate
/// greps for `"total_violations": 0` — the sweep's safety bar in one line.
pub fn e12_json(scale: &ExperimentScale, cells: &[ByzantineCell]) -> String {
    let total_violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"e12_byzantine\",\n  \"mode\": \"{}\",\n",
        if scale.full { "full" } else { "quick" }
    ));
    out.push_str(&format!("  \"total_violations\": {total_violations},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"behavior\": \"{}\", \"corrupted_per_cluster\": {}, \
             \"committed_tps\": {:.1}, \"degradation_pct\": {:.1}, \"rejections\": {}, \
             \"equivocations\": {}, \"violations\": {}}}{}\n",
            c.behavior.label(),
            c.corrupted_per_cluster,
            c.committed_tps,
            c.degradation_pct,
            c.rejections,
            c.equivocations,
            c.violations.len(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------------
// E13: keyed KV state machine — read-ratio × skew workload sweep (beyond the paper)
// ---------------------------------------------------------------------------------

/// One cell of the E13 workload sweep: one YCSB-style mix executed against the
/// real keyed KV state machine, with the full invariant-checker suite (including
/// per-round state-digest agreement) riding along.
#[derive(Clone, Debug)]
pub struct WorkloadCell {
    /// Fraction of read transactions in the mix.
    pub read_ratio: f64,
    /// Zipfian skew parameter of the key-selection distribution.
    pub zipf_theta: f64,
    /// Committed throughput over the measurement window, in transactions per
    /// second.
    pub committed_tps: f64,
    /// Mean latency of reads (answered cluster-locally, E2's read path), in
    /// milliseconds.
    pub read_latency_ms: f64,
    /// Mean latency of writes (three-stage ordered), in milliseconds.
    pub write_latency_ms: f64,
    /// Distinct keys in the replicated state at the end of the run.
    pub state_entries: u64,
    /// Total stored value bytes at the end of the run (state-size growth).
    pub state_value_bytes: u64,
    /// Executed rounds that reported a state digest during the run.
    pub digest_rounds: u64,
    /// Safety-checker violations — the sweep's acceptance bar is that this is
    /// empty in every cell.
    pub violations: Vec<String>,
}

impl WorkloadCell {
    /// The cluster-local read advantage: write latency over read latency.
    /// Reads skip Stages 1–3 entirely (E2), so read-heavy mixes must show this
    /// well above 1.
    pub fn read_advantage(&self) -> f64 {
        if self.read_latency_ms > 0.0 {
            self.write_latency_ms / self.read_latency_ms
        } else {
            0.0
        }
    }
}

/// The E13 sweep grid: read ratio × Zipfian skew. The quick grid covers the
/// update-heavy / read-heavy / read-mostly corners at uniform and paper skew;
/// the full grid fills the YCSB-A/B/C axis in and adds hot-key contention
/// (θ = 1.2).
pub fn e13_grid(scale: &ExperimentScale) -> Vec<(f64, f64)> {
    let (ratios, thetas): (Vec<f64>, Vec<f64>) = if scale.full {
        (vec![0.5, 0.85, 0.9, 0.95, 0.99], vec![0.0, 0.9, 1.2])
    } else {
        (vec![0.5, 0.9, 0.95], vec![0.0, 0.9])
    };
    ratios.iter().flat_map(|&r| thetas.iter().map(move |&t| (r, t))).collect()
}

/// Run one E13 cell: the KV state machine under a YCSB-style mix with
/// `read_ratio` and `zipf_theta`, a 10% multi-key write fraction and 1 KiB
/// values, judged by the full [`CheckerSet`] (whose execution-agreement checker
/// now compares full state digests across replicas every round).
pub fn e13_cell(scale: &ExperimentScale, read_ratio: f64, zipf_theta: f64) -> WorkloadCell {
    let n = if scale.full { 7 } else { 4 };
    let mut config = SystemConfig::homogeneous_regions(&[(n, Region::UsWest), (n, Region::Europe)]);
    adjust_batch(&mut config, scale);
    let mut opts = default_opts(15, scale);
    opts.state_machine = ava_hamava::StateMachineKind::Kv;
    opts.workload = WorkloadSpec {
        key_space: if scale.full { 100_000 } else { 5_000 },
        ..WorkloadSpec::default()
    }
    .with_read_ratio(read_ratio)
    .with_zipf(zipf_theta)
    .with_multi_key(0.1, 4);
    let mut checkers = CheckerSet::standard();
    let run = scenario(Protocol::AvaHotStuff, config, opts, scale)
        .build()
        .run_observed(&mut [&mut checkers]);
    let (start, end) = scale.window();
    let m = summarize(&run.outputs, start, end);
    // The state machine reports its size with every per-round digest; the last
    // report of the run is the final state footprint.
    let (mut entries, mut value_bytes, mut digest_rounds) = (0u64, 0u64, 0u64);
    let mut seen_rounds = std::collections::BTreeSet::new();
    for o in &run.outputs {
        if let Output::StateDigest { round, entries: e, value_bytes: v, .. } = o {
            if seen_rounds.insert(*round) {
                digest_rounds += 1;
            }
            entries = *e;
            value_bytes = *v;
        }
    }
    WorkloadCell {
        read_ratio,
        zipf_theta,
        committed_tps: m.throughput_tps,
        read_latency_ms: m.read_latency_ms,
        write_latency_ms: m.write_latency_ms,
        state_entries: entries,
        state_value_bytes: value_bytes,
        digest_rounds,
        violations: checkers.violations().iter().map(|v| v.to_string()).collect(),
    }
}

/// E13: the read-ratio × skew sweep over the KV state machine. Every cell runs
/// under the full checker suite; the table reports the committed throughput,
/// the read/write latency split (the cluster-local read advantage of E2) and
/// the state-size growth per mix.
pub fn e13_workloads(scale: &ExperimentScale) -> Vec<WorkloadCell> {
    let cells = scale.pool().map(e13_grid(scale), |_, (r, t)| e13_cell(scale, r, t));
    let total_violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                fmt(c.read_ratio, 2),
                fmt(c.zipf_theta, 1),
                fmt(c.committed_tps, 1),
                fmt(c.read_latency_ms, 1),
                fmt(c.write_latency_ms, 1),
                fmt(c.read_advantage(), 1),
                c.state_entries.to_string(),
                c.state_value_bytes.to_string(),
                c.digest_rounds.to_string(),
                c.violations.len().to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E13: KV state machine, read-ratio × skew sweep ({total_violations} safety violations)"
        ),
        &[
            "read ratio",
            "zipf θ",
            "committed (txn/s)",
            "read lat (ms)",
            "write lat (ms)",
            "read advantage",
            "state keys",
            "state bytes",
            "digest rounds",
            "violations",
        ],
        &rows,
    );
    cells
}

/// Serialize an E13 sweep into the JSON document the binary prints. The CI gate
/// greps for `"total_violations": 0` — digest-level execution agreement held in
/// every cell.
pub fn e13_json(scale: &ExperimentScale, cells: &[WorkloadCell]) -> String {
    let total_violations: usize = cells.iter().map(|c| c.violations.len()).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"experiment\": \"e13_workloads\",\n  \"mode\": \"{}\",\n",
        if scale.full { "full" } else { "quick" }
    ));
    out.push_str("  \"state_machine\": \"kv\",\n");
    out.push_str(&format!("  \"total_violations\": {total_violations},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"read_ratio\": {:.2}, \"zipf_theta\": {:.1}, \"committed_tps\": {:.1}, \
             \"read_latency_ms\": {:.2}, \"write_latency_ms\": {:.2}, \
             \"read_advantage\": {:.2}, \"state_entries\": {}, \"state_value_bytes\": {}, \
             \"digest_rounds\": {}, \"violations\": {}}}{}\n",
            c.read_ratio,
            c.zipf_theta,
            c.committed_tps,
            c.read_latency_ms,
            c.write_latency_ms,
            c.read_advantage(),
            c.state_entries,
            c.state_value_bytes,
            c.digest_rounds,
            c.violations.len(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale { run: Duration::from_secs(6), warmup_frac: 0.3, full: false, jobs: 2 }
    }

    #[test]
    fn e3_setups_match_paper_cluster_sizes() {
        let s2 = e3_setup(2, 1);
        let m = s2.membership();
        assert_eq!(m.size(ClusterId(0)), 9);
        assert_eq!(m.size(ClusterId(1)), 5);
        let s3 = e3_setup(3, 2);
        assert_eq!(s3.total_replicas(), 28);
        assert_eq!(s3.clusters.len(), 3);
        let s1 = e3_setup(1, 1);
        assert_eq!(s1.clusters[0].replicas.len(), s1.clusters[1].replicas.len());
    }

    #[test]
    fn run_once_produces_committed_transactions() {
        let scale = tiny_scale();
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        let (m, outputs) =
            run_once(Protocol::AvaHotStuff, config, default_opts(11, &scale), &scale);
        assert!(m.completed > 0, "no transactions completed");
        assert!(outputs.iter().any(|o| matches!(o, Output::RoundExecuted { .. })));
    }

    #[test]
    fn every_protocol_label_runs_its_own_stack() {
        // Regression test for the old e4 arm that ran a BFT-SMaRt deployment for
        // the GeoBFT label: with the scenario API the deployment reports the label
        // it was built for, and GeoBFT visibly gets its config transform.
        let scale = tiny_scale();
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        for protocol in Protocol::ALL {
            let dep = protocol.deploy(config.clone(), default_opts(12, &scale));
            assert_eq!(dep.protocol(), protocol, "label must map to its own deployment");
        }
        let geo = Protocol::GeoBft.deploy(config.clone(), default_opts(12, &scale));
        assert!(geo.config().params.parallel_reconfig_workflow);
    }

    #[test]
    fn churn_schedule_matches_the_e5_shape() {
        let config = SystemConfig::homogeneous_regions(&[(5, Region::UsWest), (5, Region::Europe)]);
        let builder = Scenario::builder(Protocol::AvaHotStuff, config.clone())
            .run_for(Duration::from_secs(12));
        let s = with_churn(builder, &config, Duration::from_secs(12), 3).build();
        // 3 boundaries × 2 clusters × (join + leave) = 12 events.
        assert_eq!(s.schedule().len(), 12);
        assert_eq!(s.schedule().last_time(), Some(Time::from_secs(9)));
    }

    #[test]
    fn e11_cell_commits_through_the_broker_tier() {
        let scale = tiny_scale();
        let p = e11_cell(&scale, 200);
        assert_eq!(p.offered_tps, 400, "two clusters at 200 tps each");
        assert!(p.committed_tps > 200.0, "committed only {} tps", p.committed_tps);
        assert!(p.acked > 500, "only {} acks", p.acked);
        assert!(p.batch_occupancy >= 1.0);
    }

    #[test]
    fn e11_knee_detection_and_json_rendering() {
        let mk = |offered: u64, committed: f64| SaturationPoint {
            offered_tps: offered,
            committed_tps: committed,
            p50_ms: 5.0,
            p99_ms: 20.0,
            acked: 100,
            shed: 0,
            batch_occupancy: 8.0,
        };
        let points =
            vec![mk(1_000, 990.0), mk(2_000, 1_950.0), mk(4_000, 2_600.0), mk(8_000, 2_700.0)];
        assert_eq!(e11_knee(&points), Some(4_000));
        assert_eq!(e11_knee(&points[..2]), None);
        let json = e11_json(&ExperimentScale::quick(), &points, e11_knee(&points));
        assert!(json.contains("\"knee_offered_tps\": 4000"));
        assert!(json.contains("\"offered_tps\": 8000"));
        assert_eq!(json.matches("\"committed_tps\"").count(), 4);
        let no_knee = e11_json(&ExperimentScale::quick(), &points[..2], None);
        assert!(no_knee.contains("\"knee_offered_tps\": null"));
    }

    #[test]
    fn e13_cell_executes_kv_state_under_the_checker_suite() {
        let scale = tiny_scale();
        let c = e13_cell(&scale, 0.95, 0.9);
        assert!(c.committed_tps > 0.0, "no committed transactions");
        assert!(c.digest_rounds > 0, "KV runs must report per-round state digests");
        assert!(c.state_entries > 0, "writes must land in the state");
        assert!(c.state_value_bytes >= c.state_entries * 1024, "1 KiB values");
        assert!(c.violations.is_empty(), "checker violations: {:?}", c.violations);
        assert!(
            c.read_advantage() > 1.0,
            "cluster-local reads must beat ordered writes (read {} ms, write {} ms)",
            c.read_latency_ms,
            c.write_latency_ms
        );
    }

    #[test]
    fn e13_grid_and_json_rendering() {
        let quick = e13_grid(&ExperimentScale::quick());
        assert_eq!(quick.len(), 6, "3 read ratios × 2 skews at quick scale");
        let cell = WorkloadCell {
            read_ratio: 0.9,
            zipf_theta: 0.9,
            committed_tps: 1_000.0,
            read_latency_ms: 2.0,
            write_latency_ms: 400.0,
            state_entries: 500,
            state_value_bytes: 512_000,
            digest_rounds: 40,
            violations: Vec::new(),
        };
        assert!((cell.read_advantage() - 200.0).abs() < 1e-9);
        let json = e13_json(&ExperimentScale::quick(), &[cell]);
        assert!(json.contains("\"total_violations\": 0"));
        assert!(json.contains("\"state_machine\": \"kv\""));
        assert!(json.contains("\"read_advantage\": 200.00"));
    }

    #[test]
    fn complexity_scale_from_env_defaults_to_quick() {
        std::env::remove_var("AVA_FULL");
        assert!(!ExperimentScale::from_env().full);
    }
}
