//! Experiment runners for E0–E8.
//!
//! Every function regenerates one of the paper's figures/tables as a printed table
//! of rows (and returns the rows so tests and EXPERIMENTS.md generation can assert on
//! them). Configurations follow the paper; the `ExperimentScale` controls run length
//! and sweep density so that the default invocation finishes in seconds while
//! `AVA_FULL=1` runs paper-scale parameters.

use crate::report::{
    fmt, print_table, stage_breakdown, summarize, throughput_timeseries, RunMetrics,
};
use ava_geobft::geobft_deployment;
use ava_hamava::harness::{
    bftsmart_deployment, hotstuff_deployment, Deployment, DeploymentOptions,
};
use ava_simnet::{CostModel, LatencyModel};
use ava_types::{ClusterId, Duration, Output, Region, SystemConfig, Time};
use ava_workload::WorkloadSpec;

/// Which replicated system to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// Hamava instantiated with HotStuff (A.H).
    AvaHotStuff,
    /// Hamava instantiated with BFT-SMaRt (A.B).
    AvaBftSmart,
    /// The GeoBFT-style baseline (fixed membership).
    GeoBft,
}

impl Protocol {
    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::AvaHotStuff => "A.H",
            Protocol::AvaBftSmart => "A.B",
            Protocol::GeoBft => "GeoBFT",
        }
    }
}

/// Scaling knobs for experiment runs.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentScale {
    /// Virtual run length.
    pub run: Duration,
    /// Fraction of the run treated as warm-up (excluded from the measurement window).
    pub warmup_frac: f64,
    /// Whether to run the full paper-scale sweeps.
    pub full: bool,
}

impl ExperimentScale {
    /// Reduced scale: small deployments, 12 s virtual runs.
    pub fn quick() -> Self {
        ExperimentScale { run: Duration::from_secs(12), warmup_frac: 0.4, full: false }
    }

    /// Paper scale: 96-node deployments, 3-minute virtual runs.
    pub fn paper() -> Self {
        ExperimentScale { run: Duration::from_secs(180), warmup_frac: 2.0 / 3.0, full: true }
    }

    /// `AVA_FULL=1` selects paper scale.
    pub fn from_env() -> Self {
        if std::env::var("AVA_FULL").map(|v| v == "1").unwrap_or(false) {
            Self::paper()
        } else {
            Self::quick()
        }
    }

    fn window(&self) -> (Time, Time) {
        let end = Time::ZERO + self.run;
        let start = Time(((self.run.as_micros() as f64) * self.warmup_frac) as u64);
        (start, end)
    }

    /// Total node count used by the E0/E1 sweeps.
    pub fn total_nodes(&self) -> usize {
        if self.full {
            96
        } else {
            24
        }
    }

    /// Cluster-count sweep used by E0/E1/E6.
    pub fn cluster_sweep(&self) -> Vec<usize> {
        if self.full {
            vec![2, 3, 4, 6, 8, 12]
        } else {
            vec![2, 3, 4]
        }
    }
}

fn default_opts(seed: u64, scale: &ExperimentScale) -> DeploymentOptions {
    DeploymentOptions {
        seed,
        latency: LatencyModel::paper_table2(),
        costs: CostModel::cloud_vm(),
        workload: WorkloadSpec {
            key_space: if scale.full { 100_000 } else { 10_000 },
            ..WorkloadSpec::default()
        },
        clients_per_cluster: 1,
        client_concurrency: if scale.full { 128 } else { 64 },
    }
}

fn adjust_batch(config: &mut SystemConfig, scale: &ExperimentScale) {
    if !scale.full {
        config.params.batch_size = 30;
    }
}

/// Run one deployment of `protocol` and return its metrics plus all raw outputs.
pub fn run_once(
    protocol: Protocol,
    config: SystemConfig,
    opts: DeploymentOptions,
    scale: &ExperimentScale,
) -> (RunMetrics, Vec<Output>) {
    let (start, end) = scale.window();
    let outputs = match protocol {
        Protocol::AvaHotStuff => {
            let mut dep = hotstuff_deployment(config, opts);
            dep.run_for(scale.run);
            dep.sim.take_outputs()
        }
        Protocol::AvaBftSmart => {
            let mut dep = bftsmart_deployment(config, opts);
            dep.run_for(scale.run);
            dep.sim.take_outputs()
        }
        Protocol::GeoBft => {
            let mut dep = geobft_deployment(config, opts);
            dep.run_for(scale.run);
            dep.sim.take_outputs()
        }
    };
    (summarize(&outputs, start, end), outputs)
}

// ---------------------------------------------------------------------------------
// E0 / E1: throughput and latency vs. number of clusters
// ---------------------------------------------------------------------------------

/// E0 (Fig. 3, left): multi-cluster, single region.
pub fn e0_single_region(scale: &ExperimentScale) -> Vec<Vec<String>> {
    clusters_sweep(scale, false, "E0: multi-cluster, single region (Fig. 3 left)")
}

/// E1 (Fig. 3, right): multi-cluster, three regions.
pub fn e1_multi_region(scale: &ExperimentScale) -> Vec<Vec<String>> {
    clusters_sweep(scale, true, "E1: multi-cluster, multi-region (Fig. 3 right)")
}

fn clusters_sweep(scale: &ExperimentScale, multi_region: bool, title: &str) -> Vec<Vec<String>> {
    let total = scale.total_nodes();
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let mut rows = Vec::new();
    for clusters in scale.cluster_sweep() {
        let config = if multi_region {
            SystemConfig::even_split_multi_region(total, clusters, &regions)
        } else {
            SystemConfig::even_split_single_region(total, clusters, Region::UsWest)
        };
        let mut row = vec![clusters.to_string()];
        for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
            let mut cfg = config.clone();
            adjust_batch(&mut cfg, scale);
            let (m, _) = run_once(protocol, cfg, default_opts(1, scale), scale);
            row.push(fmt(m.throughput_tps, 1));
            row.push(fmt(m.avg_latency_ms / 1000.0, 3));
        }
        rows.push(row);
    }
    print_table(
        title,
        &["clusters", "A.H tput (txn/s)", "A.H latency (s)", "A.B tput (txn/s)", "A.B latency (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E2: latency breakdown
// ---------------------------------------------------------------------------------

/// E2 (Fig. 4a): per-stage latency breakdown for 3 clusters × 4 nodes over 1, 2 and 3
/// regions, for both systems.
pub fn e2_latency_breakdown(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let region_sets: [(&str, Vec<Region>); 3] = [
        ("1 region", vec![Region::AsiaSouth; 3]),
        ("2 regions", vec![Region::Europe, Region::AsiaSouth, Region::AsiaSouth]),
        ("3 regions", vec![Region::Europe, Region::AsiaSouth, Region::UsWest]),
    ];
    let mut rows = Vec::new();
    for protocol in [Protocol::AvaBftSmart, Protocol::AvaHotStuff] {
        for (label, regions) in &region_sets {
            let cluster_regions: Vec<Vec<Region>> = regions.iter().map(|&r| vec![r; 4]).collect();
            let mut config = SystemConfig::heterogeneous(&cluster_regions);
            adjust_batch(&mut config, scale);
            let (metrics, outputs) = run_once(protocol, config, default_opts(2, scale), scale);
            let stages = stage_breakdown(&outputs);
            rows.push(vec![
                protocol.label().to_string(),
                (*label).to_string(),
                fmt(stages[0], 1),
                fmt(stages[1], 1),
                fmt(stages[2], 1),
                fmt(metrics.read_latency_ms, 1),
                fmt(metrics.write_latency_ms, 1),
            ]);
        }
    }
    print_table(
        "E2: latency breakdown (Fig. 4a)",
        &[
            "system",
            "regions",
            "intra-cluster (ms)",
            "inter-cluster (ms)",
            "execution (ms)",
            "read latency (ms)",
            "write latency (ms)",
        ],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E3: heterogeneity
// ---------------------------------------------------------------------------------

/// The three setups of E3 at scale factor `s`: (1) equal-sized clusters mixing
/// regions, (2) clusters partitioned by region, (3) region partition plus an
/// intra-region split.
pub fn e3_setup(setup: usize, s: usize) -> SystemConfig {
    let asia = Region::AsiaSouth;
    let eu = Region::Europe;
    let cluster_regions: Vec<Vec<Region>> = match setup {
        1 => vec![vec![asia; 7 * s], [vec![asia; 2 * s], vec![eu; 5 * s]].concat()],
        2 => vec![vec![asia; 9 * s], vec![eu; 5 * s]],
        3 => vec![vec![asia; 5 * s], vec![asia; 4 * s], vec![eu; 5 * s]],
        _ => panic!("unknown E3 setup {setup}"),
    };
    SystemConfig::heterogeneous(&cluster_regions)
}

/// E3 (Fig. 4b–e): impact of heterogeneity for both systems.
pub fn e3_heterogeneity(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let scales: Vec<usize> = if scale.full { vec![1, 2, 3, 4, 5] } else { vec![1, 2] };
    let mut rows = Vec::new();
    for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
        for &s in &scales {
            let mut row = vec![protocol.label().to_string(), s.to_string()];
            for setup in 1..=3 {
                let mut config = e3_setup(setup, s);
                adjust_batch(&mut config, scale);
                let (m, _) = run_once(protocol, config, default_opts(3, scale), scale);
                row.push(fmt(m.throughput_tps, 1));
                row.push(fmt(m.avg_latency_ms / 1000.0, 3));
            }
            rows.push(row);
        }
    }
    print_table(
        "E3: heterogeneity (Fig. 4b-e)",
        &[
            "system",
            "scale s",
            "setup1 tput",
            "setup1 lat (s)",
            "setup2 tput",
            "setup2 lat (s)",
            "setup3 tput",
            "setup3 lat (s)",
        ],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E4: failures
// ---------------------------------------------------------------------------------

/// Failure scenarios of E4.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureScenario {
    /// E4.1: crash up to f non-leader replicas per cluster.
    NonLeader,
    /// E4.2: crash the leader of one cluster.
    Leader,
    /// E4.3: Byzantine leader that withholds inter-cluster messages.
    ByzantineLeader,
}

/// E4 (Fig. 4f–h): throughput time series around a failure, for both systems.
pub fn e4_failures(scenario: FailureScenario, scale: &ExperimentScale) -> Vec<Vec<String>> {
    let nodes_per_cluster = if scale.full { 10 } else { 7 };
    let fail_at = Time(scale.run.as_micros() / 3);
    let mut series: Vec<(Protocol, Vec<(f64, f64)>)> = Vec::new();
    for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
        let mut config = SystemConfig::homogeneous_regions(&[
            (nodes_per_cluster, Region::UsWest),
            (nodes_per_cluster, Region::Europe),
        ]);
        adjust_batch(&mut config, scale);
        // Faster remote-leader/local timeouts so recovery fits the reduced run.
        if !scale.full {
            config.params.remote_leader_timeout = Duration::from_secs(4);
            config.params.local_timeout = Duration::from_secs(4);
            config.params.brd_timeout = Duration::from_secs(4);
        }
        let opts = default_opts(4, scale);
        let outputs = match protocol {
            Protocol::AvaHotStuff => {
                let mut dep = hotstuff_deployment(config.clone(), opts);
                inject_failure(&mut dep, scenario, fail_at, &config);
                dep.run_for(scale.run);
                dep.sim.take_outputs()
            }
            Protocol::AvaBftSmart | Protocol::GeoBft => {
                let mut dep = bftsmart_deployment(config.clone(), opts);
                inject_failure(&mut dep, scenario, fail_at, &config);
                dep.run_for(scale.run);
                dep.sim.take_outputs()
            }
        };
        series.push((protocol, throughput_timeseries(&outputs, Duration::from_secs(2))));
    }
    let mut rows = Vec::new();
    for (protocol, points) in &series {
        for (t, tps) in points {
            rows.push(vec![protocol.label().to_string(), fmt(*t, 0), fmt(*tps, 1)]);
        }
    }
    print_table(
        &format!(
            "E4 ({scenario:?}): throughput over time, failure at {}s (Fig. 4f-h)",
            fail_at.as_secs_f64()
        ),
        &["system", "time (s)", "throughput (txn/s)"],
        &rows,
    );
    rows
}

fn inject_failure<T>(
    dep: &mut Deployment<T>,
    scenario: FailureScenario,
    at: Time,
    config: &SystemConfig,
) where
    T: ava_consensus::TotalOrderBroadcast + 'static,
    T::Msg: Clone + ava_consensus::WireSize + 'static,
    ava_hamava::AvaMsg<T::Msg>: ava_simnet::SimMessage,
{
    match scenario {
        FailureScenario::NonLeader => {
            // Crash f non-leader replicas in each cluster.
            for cluster in &config.clusters {
                let f = (cluster.replicas.len() - 1) / 3;
                for (id, _) in cluster.replicas.iter().skip(1).take(f) {
                    dep.crash_at(*id, at);
                }
            }
        }
        FailureScenario::Leader => {
            let leader = dep.initial_leader(ClusterId(0));
            dep.crash_at(leader, at);
        }
        FailureScenario::ByzantineLeader => {
            // The leader keeps acting correctly locally but stops inter-cluster
            // broadcasts; the remote cluster must trigger the remote leader change.
            let leader = dep.initial_leader(ClusterId(0));
            // Control message is delivered (and takes effect) at time `at`.
            dep.sim.external_send(
                leader,
                leader,
                ava_hamava::AvaMsg::Control(ava_hamava::ControlCmd::MuteInterCluster),
                at,
            );
        }
    }
}

// ---------------------------------------------------------------------------------
// E5: reconfiguration
// ---------------------------------------------------------------------------------

/// E5.1 (Fig. 5a): three joins and three leaves per cluster at marked times.
pub fn e5_joins_and_leaves(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let nodes = if scale.full { 7 } else { 5 };
    let mut rows = Vec::new();
    for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
        let mut config =
            SystemConfig::homogeneous_regions(&[(nodes, Region::UsWest), (nodes, Region::Europe)]);
        adjust_batch(&mut config, scale);
        let opts = default_opts(5, scale);
        let outputs = match protocol {
            Protocol::AvaHotStuff => {
                let mut dep = hotstuff_deployment(config, opts);
                drive_churn(&mut dep, scale, 3);
                dep.sim.take_outputs()
            }
            _ => {
                let mut dep = bftsmart_deployment(config, opts);
                drive_churn(&mut dep, scale, 3);
                dep.sim.take_outputs()
            }
        };
        let applied =
            outputs.iter().filter(|o| matches!(o, Output::ReconfigApplied { .. })).count();
        for (t, tps) in throughput_timeseries(&outputs, Duration::from_secs(2)) {
            rows.push(vec![
                protocol.label().to_string(),
                fmt(t, 0),
                fmt(tps, 1),
                applied.to_string(),
            ]);
        }
    }
    print_table(
        "E5.1: join/leave churn (Fig. 5a)",
        &["system", "time (s)", "throughput (txn/s)", "reconfigs applied (total)"],
        &rows,
    );
    rows
}

fn drive_churn<T>(dep: &mut Deployment<T>, scale: &ExperimentScale, churn_count: usize)
where
    T: ava_consensus::TotalOrderBroadcast + 'static,
    T::Msg: Clone + ava_consensus::WireSize + 'static,
    ava_hamava::AvaMsg<T::Msg>: ava_simnet::SimMessage,
{
    // Run in three segments; at each boundary add joining replicas and request leaves.
    let segment = Duration(scale.run.as_micros() / (churn_count as u64 + 1));
    let mut joined = Vec::new();
    for i in 0..churn_count {
        dep.run_for(segment);
        for cluster in dep.config.clusters.clone() {
            let region = cluster.replicas[0].1;
            let new_id = dep.add_joining_replica(cluster.id, region);
            joined.push(new_id);
            // Ask an original member (not the leader) to leave.
            if let Some((leaver, _)) = cluster.replicas.get(1 + i) {
                dep.request_leave(*leaver);
            }
        }
    }
    dep.run_for(segment);
}

/// E5.2 (Fig. 5b): parallel reconfiguration workflow vs. single workflow.
pub fn e5_workflow_comparison(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
        for parallel in [true, false] {
            let mut config = SystemConfig::homogeneous_regions(&[
                (if scale.full { 10 } else { 6 }, Region::UsWest),
                (if scale.full { 8 } else { 5 }, Region::Europe),
            ]);
            adjust_batch(&mut config, scale);
            config.params.parallel_reconfig_workflow = parallel;
            let mut opts = default_opts(6, scale);
            opts.workload = WorkloadSpec::default().write_only();
            let (start, end) = scale.window();
            let outputs = match protocol {
                Protocol::AvaHotStuff => {
                    let mut dep = hotstuff_deployment(config, opts);
                    drive_churn(&mut dep, scale, 2);
                    dep.sim.take_outputs()
                }
                _ => {
                    let mut dep = bftsmart_deployment(config, opts);
                    drive_churn(&mut dep, scale, 2);
                    dep.sim.take_outputs()
                }
            };
            let m = summarize(&outputs, start, end);
            rows.push(vec![
                protocol.label().to_string(),
                if parallel { "parallel workflows".into() } else { "single workflow".into() },
                fmt(m.throughput_tps, 1),
                fmt(m.avg_latency_ms / 1000.0, 3),
            ]);
        }
    }
    print_table(
        "E5.2: parallel vs single reconfiguration workflow (Fig. 5b)",
        &["system", "workflow", "throughput (txn/s)", "latency (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E6: comparison with GeoBFT
// ---------------------------------------------------------------------------------

/// E6 (Fig. 6): AVA-HOTSTUFF vs GeoBFT, single- and multi-region.
pub fn e6_vs_geobft(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let total = if scale.full { 48 } else { 16 };
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let mut rows = Vec::new();
    for (mode, multi) in [("single region", false), ("multi region", true)] {
        for clusters in scale.cluster_sweep() {
            if clusters > total / 4 {
                continue;
            }
            let config = if multi {
                SystemConfig::even_split_multi_region(total, clusters, &regions)
            } else {
                SystemConfig::even_split_single_region(total, clusters, Region::UsWest)
            };
            let mut row = vec![mode.to_string(), clusters.to_string()];
            for protocol in [Protocol::AvaHotStuff, Protocol::GeoBft] {
                let mut cfg = config.clone();
                adjust_batch(&mut cfg, scale);
                let (m, _) = run_once(protocol, cfg, default_opts(7, scale), scale);
                row.push(fmt(m.throughput_tps, 1));
                row.push(fmt(m.avg_latency_ms / 1000.0, 3));
            }
            rows.push(row);
        }
    }
    print_table(
        "E6: Ava-HotStuff vs GeoBFT (Fig. 6)",
        &["placement", "clusters", "A.H tput", "A.H lat (s)", "GeoBFT tput", "GeoBFT lat (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E7: reconfiguration frequency
// ---------------------------------------------------------------------------------

/// E7 (Fig. 7): impact of the reconfiguration request frequency.
pub fn e7_reconfig_frequency(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
        for (label, churn_rounds) in [("none", 0usize), ("every 20s", 2), ("continuous", 6)] {
            let mut config = SystemConfig::homogeneous_regions(&[
                (if scale.full { 10 } else { 6 }, Region::UsWest),
                (if scale.full { 10 } else { 6 }, Region::Europe),
            ]);
            adjust_batch(&mut config, scale);
            let opts = default_opts(8, scale);
            let (start, end) = scale.window();
            let outputs = match protocol {
                Protocol::AvaHotStuff => {
                    let mut dep = hotstuff_deployment(config, opts);
                    drive_churn(&mut dep, scale, churn_rounds);
                    dep.sim.take_outputs()
                }
                _ => {
                    let mut dep = bftsmart_deployment(config, opts);
                    drive_churn(&mut dep, scale, churn_rounds);
                    dep.sim.take_outputs()
                }
            };
            let m = summarize(&outputs, start, end);
            rows.push(vec![
                protocol.label().to_string(),
                label.to_string(),
                fmt(m.throughput_tps, 1),
                fmt(m.avg_latency_ms / 1000.0, 3),
            ]);
        }
    }
    print_table(
        "E7: reconfiguration frequency (Fig. 7)",
        &["system", "reconfig frequency", "throughput (txn/s)", "latency (s)"],
        &rows,
    );
    rows
}

// ---------------------------------------------------------------------------------
// E8: network latency during reconfiguration
// ---------------------------------------------------------------------------------

/// E8 (Fig. 8): impact of the inter-cluster network latency while reconfigurations
/// are issued continuously. The second cluster is placed at increasing RTT from the
/// first (52, 91, 142, 219 ms — the paper's us-east5, asia-northeast1, europe-west3,
/// asia-south1 zones).
pub fn e8_network_latency(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let second_regions = [
        (Region::UsEast, 52.0),
        (Region::AsiaNortheast, 91.0),
        (Region::Europe, 142.0),
        (Region::AsiaSouth, 219.0),
    ];
    let mut rows = Vec::new();
    for protocol in [Protocol::AvaHotStuff, Protocol::AvaBftSmart] {
        for &(region, rtt) in &second_regions {
            let mut config = SystemConfig::homogeneous_regions(&[
                (if scale.full { 10 } else { 6 }, Region::UsWest),
                (if scale.full { 10 } else { 6 }, region),
            ]);
            adjust_batch(&mut config, scale);
            let mut opts = default_opts(9, scale);
            let mut latency = LatencyModel::paper_table2();
            latency.set_rtt(Region::UsWest, region, rtt);
            opts.latency = latency;
            let (start, end) = scale.window();
            let outputs = match protocol {
                Protocol::AvaHotStuff => {
                    let mut dep = hotstuff_deployment(config, opts);
                    drive_churn(&mut dep, scale, 2);
                    dep.sim.take_outputs()
                }
                _ => {
                    let mut dep = bftsmart_deployment(config, opts);
                    drive_churn(&mut dep, scale, 2);
                    dep.sim.take_outputs()
                }
            };
            let m = summarize(&outputs, start, end);
            rows.push(vec![
                protocol.label().to_string(),
                format!("{rtt:.0} ms ({})", region.zone_name()),
                fmt(m.throughput_tps, 1),
                fmt(m.avg_latency_ms / 1000.0, 3),
            ]);
        }
    }
    print_table(
        "E8: network latency during reconfiguration (Fig. 8)",
        &["system", "inter-cluster RTT", "throughput (txn/s)", "latency (s)"],
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale { run: Duration::from_secs(6), warmup_frac: 0.3, full: false }
    }

    #[test]
    fn e3_setups_match_paper_cluster_sizes() {
        let s2 = e3_setup(2, 1);
        let m = s2.membership();
        assert_eq!(m.size(ClusterId(0)), 9);
        assert_eq!(m.size(ClusterId(1)), 5);
        let s3 = e3_setup(3, 2);
        assert_eq!(s3.total_replicas(), 28);
        assert_eq!(s3.clusters.len(), 3);
        let s1 = e3_setup(1, 1);
        assert_eq!(s1.clusters[0].replicas.len(), s1.clusters[1].replicas.len());
    }

    #[test]
    fn run_once_produces_committed_transactions() {
        let scale = tiny_scale();
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        let (m, outputs) =
            run_once(Protocol::AvaHotStuff, config, default_opts(11, &scale), &scale);
        assert!(m.completed > 0, "no transactions completed");
        assert!(outputs.iter().any(|o| matches!(o, Output::RoundExecuted { .. })));
    }

    #[test]
    fn complexity_scale_from_env_defaults_to_quick() {
        std::env::remove_var("AVA_FULL");
        assert!(!ExperimentScale::from_env().full);
    }
}
