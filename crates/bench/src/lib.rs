//! # ava-bench
//!
//! The experiment harness that regenerates every table and figure of the paper's
//! evaluation (E0–E10, Table I, Table II) on top of the simulated deployments, plus
//! Criterion micro-benchmarks of the hot protocol paths.
//!
//! Each experiment has a binary (`src/bin/e*.rs`) that prints the same rows/series
//! the paper reports. Binaries run a reduced-scale configuration by default so they
//! finish in seconds; set `AVA_FULL=1` to run the paper-scale configurations
//! (96 nodes, three-minute virtual runs).
//!
//! Every experiment is a declarative [`ava_scenario::Scenario`]: protocol +
//! configuration + event schedule + observers. New workloads add schedule shapes,
//! not new plumbing.

pub mod complexity;
pub mod experiments;
pub mod perf;
pub mod report;

pub use complexity::{complexity_table, ComplexityRow};
pub use experiments::{ExperimentScale, Protocol};
pub use perf::PerfRecord;
pub use report::{print_table, stage_breakdown, throughput_timeseries, RunMetrics};
