//! Turning the simulator's measurement events into the numbers the paper reports:
//! throughput, latency (average and percentiles, split by read/write), per-stage
//! latency breakdowns and throughput time series.

use ava_types::{Duration, Output, StageKind, Time};

/// Summary statistics of one run over a measurement window.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Completed transactions per second of virtual time.
    pub throughput_tps: f64,
    /// Mean end-to-end latency over all transactions, in milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Mean latency of read transactions, in milliseconds.
    pub read_latency_ms: f64,
    /// Mean latency of write transactions, in milliseconds.
    pub write_latency_ms: f64,
    /// Number of completed transactions in the window.
    pub completed: usize,
    /// Number of completed writes in the window.
    pub writes: usize,
}

/// Summarize completed transactions within `[window_start, window_end)`.
///
/// The paper measures "the last minute" of each three-minute run; callers pass the
/// corresponding window.
pub fn summarize(outputs: &[Output], window_start: Time, window_end: Time) -> RunMetrics {
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut read_lat = Vec::new();
    let mut write_lat = Vec::new();
    for o in outputs {
        if let Output::TxCompleted { issued_at, completed_at, is_write, .. } = o {
            if *completed_at < window_start || *completed_at >= window_end {
                continue;
            }
            let lat = completed_at.since(*issued_at).as_millis_f64();
            latencies_ms.push(lat);
            if *is_write {
                write_lat.push(lat);
            } else {
                read_lat.push(lat);
            }
        }
    }
    let window_secs = window_end.since(window_start).as_secs_f64().max(1e-9);
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    let mut sorted = latencies_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            0.0
        } else {
            sorted[((sorted.len() as f64 - 1.0) * p).round() as usize]
        }
    };
    RunMetrics {
        throughput_tps: latencies_ms.len() as f64 / window_secs,
        avg_latency_ms: mean(&latencies_ms),
        p50_latency_ms: pct(0.5),
        p99_latency_ms: pct(0.99),
        read_latency_ms: mean(&read_lat),
        write_latency_ms: mean(&write_lat),
        completed: latencies_ms.len(),
        writes: write_lat.len(),
    }
}

/// Throughput time series: completed transactions per second, bucketed by `bucket`.
/// Returns `(bucket_end_seconds, txns_per_second)` pairs. Used by the failure and
/// reconfiguration experiments (E4, E5, E7).
pub fn throughput_timeseries(outputs: &[Output], bucket: Duration) -> Vec<(f64, f64)> {
    let mut counts: Vec<(u64, usize)> = Vec::new();
    for o in outputs {
        if let Output::TxCompleted { completed_at, .. } = o {
            let idx = completed_at.as_micros() / bucket.as_micros().max(1);
            match counts.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, c)) => *c += 1,
                None => counts.push((idx, 1)),
            }
        }
    }
    counts.sort_by_key(|(i, _)| *i);
    let bucket_secs = bucket.as_secs_f64();
    counts
        .into_iter()
        .map(|(i, c)| (((i + 1) as f64) * bucket_secs, c as f64 / bucket_secs))
        .collect()
}

/// Average per-stage latency in milliseconds, in protocol order
/// `[intra-cluster, inter-cluster, execution]` (the E2 breakdown).
pub fn stage_breakdown(outputs: &[Output]) -> [f64; 3] {
    let mut sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for o in outputs {
        if let Output::StageCompleted { stage, started_at, completed_at, .. } = o {
            let idx = StageKind::ALL.iter().position(|s| s == stage).expect("known stage");
            sums[idx] += completed_at.since(*started_at).as_millis_f64();
            counts[idx] += 1;
        }
    }
    let mut out = [0.0; 3];
    for i in 0..3 {
        out[i] = if counts[i] == 0 { 0.0 } else { sums[i] / counts[i] as f64 };
    }
    out
}

/// Print a fixed-width table (markdown-ish) to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Format a float with a fixed number of decimals (helper for report rows).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{ClientId, ClusterId, ReplicaId, Round, TxId};

    fn tx_output(seq: u64, issued_ms: u64, completed_ms: u64, is_write: bool) -> Output {
        Output::TxCompleted {
            tx: TxId { client: ClientId(0), seq },
            client: ClientId(0),
            cluster: ClusterId(0),
            issued_at: Time::from_millis(issued_ms),
            completed_at: Time::from_millis(completed_ms),
            is_write,
        }
    }

    #[test]
    fn summarize_computes_throughput_and_latency() {
        let outputs = vec![
            tx_output(0, 0, 100, true),
            tx_output(1, 0, 200, false),
            tx_output(2, 100, 400, true),
            // outside the window
            tx_output(3, 0, 5_000, true),
        ];
        let m = summarize(&outputs, Time::ZERO, Time::from_secs(1));
        assert_eq!(m.completed, 3);
        assert_eq!(m.writes, 2);
        assert!((m.throughput_tps - 3.0).abs() < 1e-9);
        assert!((m.avg_latency_ms - 200.0).abs() < 1e-9);
        assert!((m.read_latency_ms - 200.0).abs() < 1e-9);
        assert!((m.write_latency_ms - 200.0).abs() < 1e-9);
        assert!(m.p99_latency_ms >= m.p50_latency_ms);
    }

    #[test]
    fn empty_window_yields_zeroes() {
        let m = summarize(&[], Time::ZERO, Time::from_secs(1));
        assert_eq!(m.completed, 0);
        assert_eq!(m.throughput_tps, 0.0);
    }

    #[test]
    fn timeseries_buckets_by_second() {
        let outputs = vec![
            tx_output(0, 0, 500, true),
            tx_output(1, 0, 600, true),
            tx_output(2, 0, 1_500, true),
        ];
        let series = throughput_timeseries(&outputs, Duration::from_secs(1));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (1.0, 2.0));
        assert_eq!(series[1], (2.0, 1.0));
    }

    #[test]
    fn stage_breakdown_averages_per_stage() {
        let stage = |kind, start, end| Output::StageCompleted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            round: Round(1),
            stage: kind,
            started_at: Time::from_millis(start),
            completed_at: Time::from_millis(end),
        };
        let outputs = vec![
            stage(StageKind::IntraCluster, 0, 100),
            stage(StageKind::IntraCluster, 0, 300),
            stage(StageKind::InterCluster, 100, 150),
            stage(StageKind::Execution, 150, 151),
        ];
        let b = stage_breakdown(&outputs);
        assert!((b[0] - 200.0).abs() < 1e-9);
        assert!((b[1] - 50.0).abs() < 1e-9);
        assert!((b[2] - 1.0).abs() < 1e-9);
    }
}
