//! E12: Byzantine adversary sweep — every [`ByzantineBehavior`] at every
//! corruption count within the f-per-cluster adversary model, with the fuzzer's
//! full invariant-checker suite observing each run. Safety must stay green in
//! every cell; the sweep measures the liveness price (committed throughput vs
//! the `Honest` decorator baseline) and the rejection/equivocation evidence
//! honest replicas emit against each behavior.
//!
//! Usage: `e12_byzantine [--jobs N] [--json PATH]` (reduced scale, f = 1) or
//! `AVA_FULL=1 e12_byzantine` / `e12_byzantine --full` (paper-style scale,
//! f = 2). Prints the sweep table, then the machine-readable JSON document
//! (also written to `PATH` when `--json` is given). The JSON's
//! `"total_violations"` field is the CI gate: any non-zero value means a
//! behavior broke a safety invariant, and the binary exits non-zero.
//!
//! [`ByzantineBehavior`]: ava_scenario::ByzantineBehavior
use ava_bench::experiments::{e12_byzantine, e12_json, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env_and_args();
    let cells = e12_byzantine(&scale);
    let json = e12_json(&scale, &cells);
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.windows(2).find(|w| w[0] == "--json").map(|w| w[1].clone()) {
        std::fs::write(&path, &json).expect("write --json output");
        eprintln!("wrote {path}");
    }
    println!("{json}");
    let violating = cells.iter().filter(|c| !c.violations.is_empty()).count();
    if violating > 0 {
        for cell in cells.iter().filter(|c| !c.violations.is_empty()) {
            eprintln!(
                "SAFETY VIOLATION: behavior={} corrupted={}:",
                cell.behavior.label(),
                cell.corrupted_per_cluster
            );
            for v in &cell.violations {
                eprintln!("  {v}");
            }
        }
        std::process::exit(1);
    }
}
