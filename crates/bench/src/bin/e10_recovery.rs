//! E10: crash → restart → catch-up recovery curves (crash duration × checkpoint
//! interval), built on the `ava-store` durable round log + state transfer.
//!
//! Usage: `e10_recovery` (reduced scale) or `AVA_FULL=1 e10_recovery` (paper-style
//! scale). Prints the slowest time-to-caught-up, the rounds/bytes transferred
//! during catch-up, and end-of-run throughput relative to the pre-crash rate.
use ava_bench::experiments::{e10_recovery, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env_and_args();
    e10_recovery(&scale);
}
