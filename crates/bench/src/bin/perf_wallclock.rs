//! Wall-clock perf harness CLI — times the end-to-end `figure_benches` shapes
//! (E0/E1/E3 pipelines + GeoBFT baseline + the store-enabled E10 shapes + the
//! broker-tier E11 shapes + the KV state-machine E13 shapes) and emits
//! `BENCH_PR10.json`.
//!
//! ```text
//! perf_wallclock [--quick|--full] [--iters N] [--jobs N] [--out FILE] \
//!                [--baseline FILE.tsv] [--emit-tsv FILE.tsv] \
//!                [--check FILE.json] [--check-threshold PCT]
//! ```
//!
//! * `--quick` (default): 5 s-virtual-time shapes; finishes in seconds.
//! * `--full`: additionally runs the paper-scale E0 sweep (`AVA_FULL=1`
//!   equivalent: 96 nodes, 180 s windows) and records its wall-clock.
//! * `--jobs N`: worker threads for the shape set and the full-E0 sweep's runs
//!   (default: available parallelism). Each shape's iterations stay on one
//!   worker; per-shape thread CPU time is recorded so timings stay comparable
//!   across `--jobs` settings.
//! * `--baseline`: a `name\twall_ms` TSV from a previous run (typically the parent
//!   commit); per-shape speedups are recorded in the JSON.
//! * `--emit-tsv`: write this run's timings in the baseline format.
//! * `--check`: compare this run against the per-shape timings of a committed
//!   `BENCH_PR*.json` and exit non-zero if any shape regressed by more than
//!   `--check-threshold` percent (default 25). The comparison uses thread CPU
//!   time when both sides recorded it (stable on contended CI cores) and
//!   wall-clock otherwise, and a per-shape delta line is printed even when the
//!   gate passes. Only shapes present on both sides are gated; baseline-only
//!   (retired) and run-only (new) shapes are reported informationally, so adding
//!   or removing a shape cannot fail the gate spuriously. CI runs this against
//!   the repo-root baseline so hot-path regressions fail the build.

use ava_bench::perf::{
    check_regressions, delta_lines, parse_baseline, parse_bench_json, peak_rss_kb, render_json,
    render_tsv, run_full_e0, run_quick_shapes, unmatched_shapes, BaselineEntry,
};
use std::collections::BTreeMap;

fn main() {
    let mut full = false;
    let mut iters = 3u32;
    let mut jobs = ava_scenario::default_jobs();
    let mut out = String::from("BENCH_PR10.json");
    let mut baseline_path: Option<String> = None;
    let mut tsv_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut check_threshold = 25.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => full = false,
            "--full" => full = true,
            "--iters" => iters = next_value(&mut args, "--iters").parse().expect("--iters N"),
            "--jobs" => {
                jobs = next_value(&mut args, "--jobs").parse::<usize>().expect("--jobs N").max(1)
            }
            "--out" => out = next_value(&mut args, "--out"),
            "--baseline" => baseline_path = Some(next_value(&mut args, "--baseline")),
            "--emit-tsv" => tsv_path = Some(next_value(&mut args, "--emit-tsv")),
            "--check" => check_path = Some(next_value(&mut args, "--check")),
            "--check-threshold" => {
                check_threshold = next_value(&mut args, "--check-threshold")
                    .parse()
                    .expect("--check-threshold PCT")
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let baseline: BTreeMap<String, BaselineEntry> = match &baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            parse_baseline(&text)
        }
        None => BTreeMap::new(),
    };

    let mode = if full { "full" } else { "quick" };
    eprintln!("perf_wallclock: mode={mode} iters={iters} jobs={jobs}");
    let (mut records, pool_wall_ms) = run_quick_shapes(iters, jobs);
    for r in &records {
        let cpu = r.cpu_ms.map(|c| format!("  cpu {c:>8.1} ms")).unwrap_or_default();
        let speedup = baseline
            .get(&r.name)
            .map(|b| format!("  speedup {:.2}x", b.wall_ms / r.wall_ms))
            .unwrap_or_default();
        eprintln!(
            "  {:<42} {:>10.1} ms{cpu}  {:>12.0} events/s  {:>7} txns{speedup}",
            r.name, r.wall_ms, r.events_per_sec, r.completed_txns
        );
    }
    eprintln!("  pool wall-clock for the quick set: {pool_wall_ms:.1} ms on {jobs} job(s)");
    if full {
        eprintln!("running paper-scale E0 sweep on {jobs} job(s) (this takes a while)...");
        let (record, rows) = run_full_e0(jobs);
        eprintln!("  {:<42} {:>10.1} ms", record.name, record.wall_ms);
        // Echo the sweep's result rows so a 20+-minute run never has to be repeated
        // just to transcribe them into EXPERIMENTS.md (the sweep also prints its
        // own table on stdout).
        for row in &rows {
            eprintln!("  e0 full row: {}", row.join(" | "));
        }
        records.push(record);
    }

    let json = render_json(mode, iters, jobs, Some(pool_wall_ms), &records, &baseline);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("wrote {out} (peak RSS: {:?} kiB)", peak_rss_kb());

    if let Some(path) = tsv_path {
        std::fs::write(&path, render_tsv(&records))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read check baseline {path}: {e}"));
        let committed = parse_bench_json(&text);
        let (missing_from_run, new_in_run) = unmatched_shapes(&records, &committed);
        for name in &missing_from_run {
            eprintln!("note: baseline shape {name} did not run (retired/renamed); not gated");
        }
        for name in &new_in_run {
            eprintln!("note: shape {name} has no baseline yet (new); not gated");
        }
        // Print the per-shape drift unconditionally: a passing gate should still
        // leave the deltas in the CI log for later archaeology.
        for line in delta_lines(&records, &committed) {
            eprintln!("  delta {line}");
        }
        let failures = check_regressions(&records, &committed, check_threshold / 100.0);
        if failures.is_empty() {
            eprintln!(
                "check against {path}: all {} shapes within +{check_threshold:.0}%",
                records.iter().filter(|r| committed.contains_key(&r.name)).count()
            );
        } else {
            eprintln!("check against {path} FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}
