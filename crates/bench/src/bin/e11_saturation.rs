//! E11: broker-tier saturation sweep — offered load vs committed throughput and
//! latency through the broker/batch client tier, with 10⁵+ virtual clients
//! collapsed into each broker's aggregate generator.
//!
//! Usage: `e11_saturation [--jobs N] [--json PATH]` (reduced scale) or
//! `AVA_FULL=1 e11_saturation` / `e11_saturation --full` (paper-style scale).
//! Prints the sweep table, then the machine-readable JSON document (also written
//! to `PATH` when `--json` is given). The JSON reports the saturation knee: the
//! first offered rate whose committed throughput falls > 10% short.
use ava_bench::experiments::{e11_json, e11_saturation, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env_and_args();
    let (points, knee) = e11_saturation(&scale);
    let json = e11_json(&scale, &points, knee);
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.windows(2).find(|w| w[0] == "--json").map(|w| w[1].clone()) {
        std::fs::write(&path, &json).expect("write --json output");
        eprintln!("wrote {path}");
    }
    println!("{json}");
}
