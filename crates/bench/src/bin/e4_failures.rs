//! E4 (Fig. 4f-h): throughput under non-leader, leader and Byzantine-leader failures.
//!
//! Usage: `e4_failures [non-leader|leader|byzantine-leader]` (default: all three).
use ava_bench::experiments::{e4_failures, ExperimentScale, FailureScenario};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::from_env_and_args();
    let scenarios: Vec<FailureScenario> = match arg.as_str() {
        "non-leader" => vec![FailureScenario::NonLeader],
        "leader" => vec![FailureScenario::Leader],
        "byzantine-leader" => vec![FailureScenario::ByzantineLeader],
        _ => vec![
            FailureScenario::NonLeader,
            FailureScenario::Leader,
            FailureScenario::ByzantineLeader,
        ],
    };
    for s in scenarios {
        e4_failures(s, &scale);
    }
}
