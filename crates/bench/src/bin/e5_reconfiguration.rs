//! E5 (Fig. 5): impact of reconfigurations on throughput, and the parallel vs single
//! workflow ablation.
//!
//! Usage: `e5_reconfiguration [joins-leaves|workflow]` (default: both).
use ava_bench::experiments::{e5_joins_and_leaves, e5_workflow_comparison, ExperimentScale};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::from_env();
    if arg != "workflow" {
        e5_joins_and_leaves(&scale);
    }
    if arg != "joins-leaves" {
        e5_workflow_comparison(&scale);
    }
}
