//! E5 (Fig. 5): impact of reconfigurations on throughput, and the parallel vs single
//! workflow ablation.
//!
//! Usage: `e5_reconfiguration [joins-leaves|workflow|trace]` (default: both figure
//! experiments). `trace` prints the per-round reconfiguration/commit trace of the
//! "single workflow" ablation (the E5.2 diagnosis view).
use ava_bench::experiments::{
    e5_joins_and_leaves, e5_workflow_comparison, e5_workflow_trace, ExperimentScale,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::from_env_and_args();
    if arg == "trace" {
        e5_workflow_trace(&scale);
        return;
    }
    if arg != "workflow" {
        e5_joins_and_leaves(&scale);
    }
    if arg != "joins-leaves" {
        e5_workflow_comparison(&scale);
    }
}
