//! Regenerates Table I: best-case message complexity of the protocols.

use ava_bench::complexity_table;
use ava_bench::report::print_table;

fn main() {
    let (z, n) = (3u64, 32u64);
    let rows: Vec<Vec<String>> = complexity_table(z, n)
        .into_iter()
        .map(|r| {
            vec![
                r.protocol.to_string(),
                r.decisions,
                r.local,
                r.global,
                if r.decentralized { "yes".into() } else { "no".into() },
                r.local_count.to_string(),
                r.global_count.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Table I: best-case complexity (z={z} clusters, n={n} nodes per cluster)"),
        &["protocol", "D", "local", "global", "decentralized", "local msgs", "global msgs"],
        &rows,
    );
}
