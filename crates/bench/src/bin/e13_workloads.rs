//! E13: keyed KV state machine — read-ratio × Zipfian-skew workload sweep with
//! the full invariant-checker suite (per-round state-digest agreement included)
//! riding along in every cell.
//!
//! Usage: `e13_workloads [--jobs N] [--json PATH]` (reduced scale) or
//! `AVA_FULL=1 e13_workloads` / `e13_workloads --full` (paper-style scale).
//! Prints the sweep table, then the machine-readable JSON document (also written
//! to `PATH` when `--json` is given). The CI gate greps the JSON for
//! `"total_violations": 0`.
use ava_bench::experiments::{e13_json, e13_workloads, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env_and_args();
    let cells = e13_workloads(&scale);
    let json = e13_json(&scale, &cells);
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.windows(2).find(|w| w[0] == "--json").map(|w| w[1].clone()) {
        std::fs::write(&path, &json).expect("write --json output");
        eprintln!("wrote {path}");
    }
    println!("{json}");
}
