//! E2 (Fig. 4a): per-stage latency breakdown over 1, 2 and 3 regions.
use ava_bench::experiments::{e2_latency_breakdown, ExperimentScale};
fn main() {
    e2_latency_breakdown(&ExperimentScale::from_env_and_args());
}
