//! VOPR-style scenario fuzzer CLI — generates seed-driven random schedules, runs
//! them with the always-on invariant checkers, and on failure confirms
//! reproducibility, shrinks the schedule to a 1-minimal core and prints a
//! compilable `ScenarioBuilder` reproducer.
//!
//! ```text
//! fuzz [--seeds N] [--start-seed S] [--jobs N] [--quick|--full] [--brokers]
//!      [--byzantine] [--seed X] [--canaries] [--no-shrink] [--json FILE]
//! ```
//!
//! * `--seeds N` (default 25): run seeds `S..S+N` (`S` from `--start-seed`,
//!   default 0).
//! * `--jobs N`: worker threads for the campaign (default: available
//!   parallelism). Per-seed progress lines arrive in completion order, but the
//!   summary (and every digest in it) is byte-identical to a serial run.
//! * `--quick` (default): the CI smoke profile — short runs, small topologies.
//!   `--full`: the overnight profile.
//! * `--brokers`: deploy a broker tier on half the cases (seed-derived draw;
//!   the schedule a seed generates is unshifted). The full profile draws broker
//!   tiers on its own; `--brokers` forces the knob on in either profile.
//! * `--byzantine`: corrupt replicas with Byzantine behaviors on half the cases
//!   (seed-derived draw sharing the per-cluster fault budget; the non-corrupt
//!   schedule a seed generates is unshifted). The full profile draws
//!   corruptions on its own; `--byzantine` forces the knob on in either
//!   profile.
//! * `--seed X`: run exactly one seed (prints its schedule digest and snippet —
//!   the reproduction entry point for a seed reported by CI).
//! * `--canaries`: run the canary suite instead of fuzzing — every deliberate
//!   bug injection must be detected by its expected checker.
//! * `--json FILE`: also write the machine-readable summary to `FILE`
//!   (always printed to stdout).
//!
//! Exit code: 0 iff every seed passed (or every canary was detected).

use ava_fuzz::{canary_suite, fuzz_many, run_case, shrink_with, FuzzConfig, ScheduleGenerator};

fn main() {
    let mut seeds = 25u64;
    let mut start_seed = 0u64;
    let mut jobs = ava_scenario::default_jobs();
    let mut full = false;
    let mut one_seed: Option<u64> = None;
    let mut canaries = false;
    let mut brokers = false;
    let mut byzantine = false;
    let mut shrink = true;
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = next_value(&mut args, "--seeds").parse().expect("--seeds N"),
            "--start-seed" => {
                start_seed = next_value(&mut args, "--start-seed").parse().expect("--start-seed S")
            }
            "--jobs" => {
                jobs = next_value(&mut args, "--jobs").parse::<usize>().expect("--jobs N").max(1)
            }
            "--quick" => full = false,
            "--full" => full = true,
            "--seed" => one_seed = Some(next_value(&mut args, "--seed").parse().expect("--seed X")),
            "--canaries" => canaries = true,
            "--brokers" => brokers = true,
            "--byzantine" => byzantine = true,
            "--no-shrink" => shrink = false,
            "--json" => json_path = Some(next_value(&mut args, "--json")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if canaries {
        run_canaries();
        return;
    }

    let mut cfg = if full { FuzzConfig::full() } else { FuzzConfig::quick() };
    if brokers {
        cfg.broker_probability = 0.5;
    }
    if byzantine {
        cfg.byzantine_probability = 0.5;
    }
    let mode = if full { "full" } else { "quick" };
    let (start, count) = match one_seed {
        Some(seed) => (seed, 1),
        None => (start_seed, seeds),
    };
    eprintln!("fuzz: mode={mode} seeds={start}..{} jobs={jobs}", start + count);

    let summary = fuzz_many(cfg.clone(), start, count, jobs, |report| {
        let verdict = if report.passed() { "ok" } else { "FAIL" };
        eprintln!(
            "  seed {:>6} {:<7} {:>2} events {:>6} txns  {}  {}",
            report.seed,
            report.protocol,
            report.events,
            report.completed_txns,
            &report.schedule_digest[..12],
            verdict
        );
        for v in &report.violations {
            eprintln!("    {v}");
        }
    });

    for &seed in &summary.failing_seeds() {
        report_failure(&cfg, seed, shrink);
    }

    let json = summary.to_json(mode);
    print!("{json}");
    if let Some(path) = json_path.take() {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
    if !summary.all_passed() {
        std::process::exit(1);
    }
}

/// On failure: re-run the seed to confirm the violation reproduces byte-for-byte
/// (same output digest, same first violation), then shrink and print the minimal
/// reproducer snippet.
fn report_failure(cfg: &FuzzConfig, seed: u64, shrink: bool) {
    let generator = ScheduleGenerator::new(cfg.clone());
    let case = generator.case(seed);
    let first = run_case(&case);
    let second = run_case(&case);
    let reproducible =
        first.output_digest == second.output_digest && first.violations == second.violations;
    eprintln!(
        "\nseed {seed}: {} violation(s); reproducible: {reproducible}",
        first.violations.len()
    );
    eprintln!("  schedule digest: {}", first.schedule_digest);
    eprintln!("  output digest:   {}", first.output_digest);
    if !shrink {
        return;
    }
    let outcome =
        shrink_with(&case, &mut |candidate| run_case(candidate).violations.into_iter().next());
    if let Some(violation) = &outcome.violation {
        eprintln!(
            "  shrunk: {} -> {} events ({} judge runs); still violating: {violation}",
            case.schedule.len(),
            outcome.case.schedule.len(),
            outcome.attempts
        );
        eprintln!("  minimal reproducer:\n{}", indent(&outcome.case.builder_snippet(), 4));
    }
}

fn run_canaries() {
    let (clean, results) = canary_suite();
    let mut healthy = clean.is_empty();
    if !clean.is_empty() {
        eprintln!("canary fixture is not clean ({} violations):", clean.len());
        for v in &clean {
            eprintln!("  {v}");
        }
    }
    for r in &results {
        let verdict = if r.detected() { "detected" } else { "MISSED" };
        healthy &= r.detected();
        eprintln!(
            "  {:<28} expected {:<22} fired [{}]  {}",
            r.canary.label(),
            r.canary.expected_checker(),
            r.detected_by.join(", "),
            verdict
        );
    }
    let detected = results.iter().filter(|r| r.detected()).count();
    println!(
        "{{\"canaries\": {}, \"detected\": {}, \"fixture_clean\": {}}}",
        results.len(),
        detected,
        clean.is_empty()
    );
    if !healthy {
        std::process::exit(1);
    }
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
