//! E7 (Fig. 7): impact of the reconfiguration request frequency.
use ava_bench::experiments::{e7_reconfig_frequency, ExperimentScale};
fn main() {
    e7_reconfig_frequency(&ExperimentScale::from_env_and_args());
}
