//! Prints Table II: the inter-region round-trip latency matrix used by the simulator.

use ava_bench::report::print_table;
use ava_simnet::LatencyModel;
use ava_types::Region;

fn main() {
    let model = LatencyModel::paper_table2();
    let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
    let rows: Vec<Vec<String>> = regions
        .iter()
        .map(|a| {
            let mut row = vec![a.zone_name().to_string()];
            row.extend(regions.iter().map(|b| {
                if a == b {
                    "0".to_string()
                } else {
                    format!("{:.0}", model.rtt_ms(*a, *b))
                }
            }));
            row
        })
        .collect();
    print_table(
        "Table II: inter-region round-trip latency (ms)",
        &["ms", "US (us-west1)", "EU (europe-west3)", "Asia (asia-south1)"],
        &rows,
    );
}
