//! E1 (Fig. 3 right): throughput and latency vs. number of clusters, three regions.
use ava_bench::experiments::{e1_multi_region, ExperimentScale};
fn main() {
    e1_multi_region(&ExperimentScale::from_env_and_args());
}
