//! E9: scenario shapes beyond the paper — a mid-run inter-cluster partition that
//! heals, and a mid-run latency-model shift — with observer-produced throughput
//! time series. Neither shape was expressible under the pre-scenario harness.
use ava_bench::experiments::{e9_partitions, ExperimentScale};
fn main() {
    e9_partitions(&ExperimentScale::from_env_and_args());
}
