//! E6 (Fig. 6): AVA-HOTSTUFF vs the GeoBFT-style baseline.
use ava_bench::experiments::{e6_vs_geobft, ExperimentScale};
fn main() {
    e6_vs_geobft(&ExperimentScale::from_env_and_args());
}
