//! E8 (Fig. 8): impact of inter-cluster network latency during reconfiguration.
use ava_bench::experiments::{e8_network_latency, ExperimentScale};
fn main() {
    e8_network_latency(&ExperimentScale::from_env_and_args());
}
