//! E3 (Fig. 4b-e): impact of heterogeneous cluster layouts.
use ava_bench::experiments::{e3_heterogeneity, ExperimentScale};
fn main() {
    e3_heterogeneity(&ExperimentScale::from_env_and_args());
}
