//! E0 (Fig. 3 left): throughput and latency vs. number of clusters, single region.
use ava_bench::experiments::{e0_single_region, ExperimentScale};
fn main() {
    e0_single_region(&ExperimentScale::from_env_and_args());
}
