//! The simulator's event queue entries.

use ava_types::{ReplicaId, Time};
use std::cmp::Ordering;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub enum EventKind<M> {
    /// A node starts (its `on_start` hook runs).
    Start,
    /// A message from `from` is delivered.
    Deliver {
        /// Sending node.
        from: ReplicaId,
        /// The message.
        msg: M,
        /// Payload size used for cost accounting.
        size: usize,
    },
    /// A timer set by the node fires.
    Timer {
        /// The timer kind the node passed to `set_timer`.
        kind: u64,
        /// The node's lifecycle epoch when the timer was armed. A restart bumps
        /// the node's epoch, so timers armed before a crash die with it instead
        /// of firing into the restarted actor.
        epoch: u64,
    },
    /// A crashed node restarts (its `on_restart` hook runs with only whatever
    /// state the actor treats as persistent).
    Restart,
}

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event is scheduled.
    pub at: Time,
    /// Tie-breaking sequence number (FIFO among simultaneous events).
    pub seq: u64,
    /// The node the event is addressed to.
    pub node: ReplicaId,
    /// What the event is.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so that BinaryHeap pops the earliest event first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    #[test]
    fn heap_pops_earliest_event_first() {
        let mut heap: BinaryHeap<Event<()>> = BinaryHeap::new();
        for (at, seq) in [(30u64, 0u64), (10, 1), (20, 2), (10, 0)] {
            heap.push(Event { at: Time(at), seq, node: ReplicaId(0), kind: EventKind::Start });
        }
        let order: Vec<(u64, u64)> =
            std::iter::from_fn(|| heap.pop().map(|e| (e.at.0, e.seq))).collect();
        assert_eq!(order, vec![(10, 0), (10, 1), (20, 2), (30, 0)]);
    }
}
