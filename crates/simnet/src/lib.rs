//! # ava-simnet
//!
//! A deterministic discrete-event simulator for geo-distributed replication
//! protocols. It plays the role of the paper's Google Cloud deployment: nodes are
//! protocol state machines ([`Actor`]s), links have region-to-region latencies taken
//! from the paper's Table II, message processing consumes per-node CPU time, and
//! faults (crashes, message drops) can be injected at chosen points in virtual time.
//!
//! Everything is driven from a single event queue seeded by a fixed RNG seed, so runs
//! are exactly reproducible — which is what makes the property-based protocol tests
//! and the figure-regeneration benches meaningful.
//!
//! ## Model
//!
//! * **Nodes** are identified by [`ava_types::ReplicaId`]; clients occupy a reserved
//!   id range (see [`client_node_id`]).
//! * **Latency**: delivery time = sender processing completion + one-way latency
//!   between the nodes' regions (with optional jitter).
//! * **CPU**: each node is a single-threaded server. Handling an event takes
//!   `per_event + per_byte·size + explicitly consumed` time; subsequent events queue
//!   behind it. This is what makes smaller clusters faster at local consensus, which
//!   is the effect the paper's clustering exploits.
//! * **Faults**: crash at a time, probabilistic/timed drop rules on links. Byzantine
//!   *behaviours* (equivocation, withholding inter-cluster messages) are expressed in
//!   the protocol actors themselves, because they are protocol-level misbehaviour.

pub mod actor;
pub mod cost;
pub mod event;
pub mod latency;
pub mod sim;
pub mod stats;

pub use actor::{Actor, CapturedSend, Context, SimMessage};
pub use cost::CostModel;
pub use latency::LatencyModel;
pub use sim::{client_node_id, DropRule, Simulation};
pub use stats::NetStats;
