//! Region-to-region latency model.
//!
//! The defaults reproduce the paper's Table II (round-trip times between
//! `us-west1-b`, `europe-west3-c` and `asia-south1-c`) and the additional zones used
//! in experiment E8 (`us-east5-c`, `asia-northeast1-b`).

use ava_types::{Duration, Region};
use rand::Rng;

/// Latency model: symmetric region-to-region round-trip times plus intra-region and
/// loopback latencies, with optional multiplicative jitter.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Symmetric RTT matrix in milliseconds, indexed by [`Region::index`].
    rtt_ms: [[f64; 5]; 5],
    /// RTT between two distinct nodes in the same region, in milliseconds.
    intra_region_rtt_ms: f64,
    /// Latency of a message a node sends to itself, in microseconds.
    loopback_us: u64,
    /// Multiplicative jitter amplitude (0.05 = ±5%).
    jitter: f64,
}

impl LatencyModel {
    /// The paper's Table II RTTs plus the E8 zones.
    ///
    /// | ms | US-West | EU | Asia-South | US-East | Asia-NE |
    /// |---|---|---|---|---|---|
    /// | US-West | 0 | 148 | 214 | 52 | 91 |
    /// | EU | 148 | 0 | 134 | 95 | 230 |
    /// | Asia-South | 214 | 134 | 0 | 230 | 120 |
    /// | US-East | 52 | 95 | 230 | 0 | 150 |
    /// | Asia-NE | 91 | 230 | 120 | 150 | 0 |
    pub fn paper_table2() -> Self {
        let mut m = LatencyModel {
            rtt_ms: [[0.0; 5]; 5],
            intra_region_rtt_ms: 1.0,
            loopback_us: 20,
            jitter: 0.05,
        };
        let pairs = [
            (Region::UsWest, Region::Europe, 148.0),
            (Region::UsWest, Region::AsiaSouth, 214.0),
            (Region::Europe, Region::AsiaSouth, 134.0),
            (Region::UsWest, Region::UsEast, 52.0),
            (Region::UsWest, Region::AsiaNortheast, 91.0),
            (Region::Europe, Region::UsEast, 95.0),
            (Region::Europe, Region::AsiaNortheast, 230.0),
            (Region::AsiaSouth, Region::UsEast, 230.0),
            (Region::AsiaSouth, Region::AsiaNortheast, 120.0),
            (Region::UsEast, Region::AsiaNortheast, 150.0),
        ];
        for (a, b, rtt) in pairs {
            m.set_rtt(a, b, rtt);
        }
        m
    }

    /// A model in which every pair of regions has the same round-trip time. Useful
    /// for single-region experiments and for E8-style sweeps.
    pub fn uniform(rtt_ms: f64) -> Self {
        let mut m = Self::paper_table2();
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    m.rtt_ms[a.index()][b.index()] = rtt_ms;
                }
            }
        }
        m
    }

    /// Override the RTT between two regions (both directions).
    pub fn set_rtt(&mut self, a: Region, b: Region, rtt_ms: f64) {
        self.rtt_ms[a.index()][b.index()] = rtt_ms;
        self.rtt_ms[b.index()][a.index()] = rtt_ms;
    }

    /// Set the intra-region RTT (between distinct nodes of the same region).
    pub fn with_intra_region_rtt(mut self, rtt_ms: f64) -> Self {
        self.intra_region_rtt_ms = rtt_ms;
        self
    }

    /// Set the jitter amplitude (0 disables jitter; runs stay deterministic either
    /// way because jitter is drawn from the simulation RNG).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Round-trip time between two regions in milliseconds.
    pub fn rtt_ms(&self, a: Region, b: Region) -> f64 {
        if a == b {
            self.intra_region_rtt_ms
        } else {
            self.rtt_ms[a.index()][b.index()]
        }
    }

    /// Sample the one-way latency of a message from `from` to `to`.
    pub fn one_way<R: Rng + ?Sized>(
        &self,
        from: Region,
        to: Region,
        same_node: bool,
        rng: &mut R,
    ) -> Duration {
        if same_node {
            return Duration::from_micros(self.loopback_us);
        }
        let base_ms = self.rtt_ms(from, to) / 2.0;
        let factor =
            if self.jitter > 0.0 { 1.0 + rng.gen_range(-self.jitter..self.jitter) } else { 1.0 };
        Duration::from_millis_f64(base_ms * factor)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[test]
    fn table2_values_match_paper() {
        let m = LatencyModel::paper_table2();
        assert_eq!(m.rtt_ms(Region::UsWest, Region::Europe), 148.0);
        assert_eq!(m.rtt_ms(Region::UsWest, Region::AsiaSouth), 214.0);
        assert_eq!(m.rtt_ms(Region::Europe, Region::AsiaSouth), 134.0);
        // Symmetry.
        assert_eq!(m.rtt_ms(Region::Europe, Region::UsWest), 148.0);
    }

    #[test]
    fn one_way_is_half_rtt_without_jitter() {
        let m = LatencyModel::paper_table2().with_jitter(0.0);
        let mut rng = StepRng::new(0, 1);
        let d = m.one_way(Region::UsWest, Region::Europe, false, &mut rng);
        assert_eq!(d, Duration::from_millis(74));
    }

    #[test]
    fn intra_region_and_loopback_are_fast() {
        let m = LatencyModel::paper_table2().with_jitter(0.0);
        let mut rng = StepRng::new(0, 1);
        let intra = m.one_way(Region::UsWest, Region::UsWest, false, &mut rng);
        let lo = m.one_way(Region::UsWest, Region::UsWest, true, &mut rng);
        assert!(lo < intra);
        assert!(intra < Duration::from_millis(2));
    }

    #[test]
    fn uniform_model_sets_all_pairs() {
        let m = LatencyModel::uniform(52.0);
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert_eq!(m.rtt_ms(a, b), 52.0);
                }
            }
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel::paper_table2().with_jitter(0.1);
        let mut rng = rand::thread_rng();
        for _ in 0..100 {
            let d = m.one_way(Region::UsWest, Region::Europe, false, &mut rng);
            let ms = d.as_millis_f64();
            assert!(ms >= 74.0 * 0.9 - 0.01 && ms <= 74.0 * 1.1 + 0.01, "{ms}");
        }
    }
}
