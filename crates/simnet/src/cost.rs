//! Per-node CPU cost model.
//!
//! The paper's servers are 2-core Google Cloud VMs; local consensus is CPU-bound on
//! message handling and signature verification. Each simulated node is a
//! single-threaded server whose event handling consumes virtual CPU time according to
//! this model, so protocols with more messages per decision (e.g. PBFT-style
//! all-to-all) are slower per node than linear ones (HotStuff) — the asymmetry the
//! paper's A.H/A.B comparison relies on.

use ava_types::Duration;

/// CPU cost parameters for one node.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed cost of handling any event (message dispatch, bookkeeping).
    pub per_event: Duration,
    /// Cost per payload byte (deserialization, hashing, copying), in nanoseconds.
    pub per_byte_ns: u64,
    /// Cost of verifying one signature. Protocol actors call
    /// [`crate::Context::consume`] with multiples of this when checking certificates.
    pub per_sig_verify: Duration,
    /// Cost of producing one signature.
    pub per_sign: Duration,
    /// Cost of executing one transaction against the state machine in Stage 3.
    pub per_tx_execute: Duration,
    /// Latency of one durable write barrier (fsync). Replicas with an `ava-store`
    /// round log charge this once per log append / checkpoint, so persistence has
    /// a measurable price; deployments without a store never pay it.
    pub per_fsync: Duration,
    /// Cost per byte persisted to the store, in nanoseconds (serialization + page
    /// writes), charged on top of `per_fsync`.
    pub persist_byte_ns: u64,
    /// Fixed cost of admitting one broker-certified batch: a single signature
    /// check over the batch digest plus header bookkeeping, charged once per
    /// batch regardless of occupancy. This is the amortization the broker tier
    /// buys — per-batch where the per-client path pays per request.
    pub per_batch_verify: Duration,
    /// Amortized per-operation cost of unpacking a batch, in nanoseconds
    /// (deserializing and routing one operation out of an already-verified
    /// batch; far cheaper than `per_event` dispatch of a standalone request).
    pub per_batch_op_ns: u64,
    /// Cost per committed value byte materialised or served by the state
    /// machine, in nanoseconds (value copies on write, value serving on read).
    /// The legacy counter machine moves zero value bytes, so it never pays
    /// this — which keeps pre-`ava-state` runs cost-identical.
    pub per_value_byte_ns: u64,
}

impl CostModel {
    /// Defaults calibrated to a small cloud VM: ~10 µs per message, 1 ns per byte,
    /// ~40 µs per signature verification, ~20 µs per signing, ~5 µs per executed
    /// transaction, ~100 µs per fsync barrier (NVMe-class flush with group
    /// commit — one barrier covers a whole round record) at 1 ns per persisted
    /// byte.
    pub fn cloud_vm() -> Self {
        CostModel {
            per_event: Duration::from_micros(10),
            per_byte_ns: 1,
            per_sig_verify: Duration::from_micros(40),
            per_sign: Duration::from_micros(20),
            per_tx_execute: Duration::from_micros(5),
            per_fsync: Duration::from_micros(100),
            persist_byte_ns: 1,
            per_batch_verify: Duration::from_micros(40),
            per_batch_op_ns: 500,
            per_value_byte_ns: 1,
        }
    }

    /// A zero-cost model (pure message-passing semantics). Used by protocol unit
    /// tests where virtual CPU time is irrelevant.
    pub fn zero() -> Self {
        CostModel {
            per_event: Duration::ZERO,
            per_byte_ns: 0,
            per_sig_verify: Duration::ZERO,
            per_sign: Duration::ZERO,
            per_tx_execute: Duration::ZERO,
            per_fsync: Duration::ZERO,
            persist_byte_ns: 0,
            per_batch_verify: Duration::ZERO,
            per_batch_op_ns: 0,
            per_value_byte_ns: 0,
        }
    }

    /// Service time of handling an event whose payload is `bytes` long, excluding
    /// explicitly consumed cost.
    pub fn event_cost(&self, bytes: usize) -> Duration {
        self.per_event + Duration::from_micros((bytes as u64 * self.per_byte_ns) / 1_000)
    }

    /// Service time of durably writing `bytes` to the store: one fsync barrier
    /// plus the per-byte persistence cost.
    pub fn persist_cost(&self, bytes: usize) -> Duration {
        self.per_fsync + Duration::from_micros((bytes as u64 * self.persist_byte_ns) / 1_000)
    }

    /// Service time of admitting one broker batch of `ops` operations: one batch
    /// signature verification plus the amortized per-operation unpacking cost.
    pub fn batch_cost(&self, ops: usize) -> Duration {
        self.per_batch_verify + Duration::from_micros((ops as u64 * self.per_batch_op_ns) / 1_000)
    }

    /// Service time of moving `bytes` committed value bytes through the state
    /// machine (zero for zero bytes — the counter machine never pays it).
    pub fn value_cost(&self, bytes: u64) -> Duration {
        Duration::from_micros((bytes * self.per_value_byte_ns) / 1_000)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cloud_vm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_vm_costs_are_nonzero() {
        let c = CostModel::cloud_vm();
        assert!(c.event_cost(1024) > Duration::ZERO);
        assert!(c.per_sig_verify > c.per_tx_execute);
    }

    #[test]
    fn zero_model_costs_nothing() {
        let c = CostModel::zero();
        assert_eq!(c.event_cost(4096), Duration::ZERO);
        assert_eq!(c.persist_cost(4096), Duration::ZERO);
    }

    #[test]
    fn persist_cost_charges_fsync_plus_bytes() {
        let c = CostModel::cloud_vm();
        assert_eq!(c.persist_cost(0), c.per_fsync);
        assert!(c.persist_cost(1_000_000) > c.persist_cost(100));
    }

    #[test]
    fn event_cost_scales_with_size() {
        let c = CostModel::cloud_vm();
        assert!(c.event_cost(100_000) > c.event_cost(100));
    }

    #[test]
    fn value_cost_is_zero_for_zero_bytes() {
        let c = CostModel::cloud_vm();
        assert_eq!(c.value_cost(0), Duration::ZERO);
        assert!(c.value_cost(1_000_000) > Duration::ZERO);
        assert_eq!(CostModel::zero().value_cost(1 << 20), Duration::ZERO);
    }

    #[test]
    fn batch_cost_amortizes_over_operations() {
        let c = CostModel::cloud_vm();
        assert_eq!(c.batch_cost(0), c.per_batch_verify);
        assert!(c.batch_cost(200) > c.batch_cost(1));
        // The whole point of the broker tier: admitting a 100-op batch is far
        // cheaper than dispatching 100 standalone client requests.
        assert!(c.batch_cost(100) < c.per_event.saturating_mul(100));
        assert_eq!(CostModel::zero().batch_cost(1_000), Duration::ZERO);
    }
}
