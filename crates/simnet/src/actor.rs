//! The [`Actor`] trait implemented by protocol state machines and the [`Context`]
//! through which they interact with the simulated world.

use crate::cost::CostModel;
use ava_types::{Duration, Output, ReplicaId, Time};
use rand::rngs::StdRng;

/// Messages exchanged by actors.
///
/// `size_bytes` feeds the latency/CPU cost model; implementations should return a
/// value roughly proportional to what a wire encoding of the message would be (the
/// protocol crates account for payloads and signature sets).
///
/// Messages must be `Send`: a whole [`crate::Simulation`] moves across threads when
/// the parallel run executor fans independent runs out over a worker pool, and the
/// event queue owns in-flight messages. `Arc`-backed payloads satisfy this as long
/// as their interior mutability is thread-safe (`OnceLock`/`Mutex`, not `Cell`).
pub trait SimMessage: Clone + Send {
    /// Approximate wire size of the message in bytes.
    fn size_bytes(&self) -> usize {
        256
    }
}

impl SimMessage for () {}

/// A protocol state machine driven by the simulator.
///
/// Handlers receive a [`Context`] used to send messages, set timers, consume CPU
/// time, emit measurement events and draw randomness. All side effects go through the
/// context, which is what keeps runs deterministic and replayable.
pub trait Actor<M: SimMessage> {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, from: ReplicaId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer previously set with [`Context::set_timer`] fires.
    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, M>) {
        let _ = (kind, ctx);
    }

    /// Called when the node restarts after a crash (see `Simulation::restart_at`).
    ///
    /// A restarting actor models a process that lost its memory: implementations
    /// must discard all volatile state and rebuild from whatever they treat as
    /// persistent (e.g. an `ava-store` round log). Timers armed before the crash
    /// were dropped with the crash, so the hook must re-arm any periodic tick it
    /// needs. The default treats the restart as a fresh boot.
    fn on_restart(&mut self, ctx: &mut Context<'_, M>) {
        self.on_start(ctx);
    }

    /// Called when the node is scheduled to turn Byzantine (see
    /// `Simulation::corrupt_at`). `tag` is an opaque behavior code the scheduling
    /// layer and the actor agree on; the default ignores it — honest actors stay
    /// honest. No [`Context`] is passed: like a scheduled crash, corruption flips
    /// actor-internal state without producing events, costs or RNG draws, so a
    /// schedule whose corruption is a no-op stays byte-identical to a plain run.
    fn on_corrupt(&mut self, tag: u64) {
        let _ = tag;
    }
}

/// One buffered send request: either a point-to-point message or a fan-out sharing
/// a single payload. Keeping both in one ordered list preserves the exact event
/// scheduling order a sequence of plain `send` calls would produce.
pub(crate) enum SendOp<M> {
    /// Send `msg` to one replica.
    One(ReplicaId, M),
    /// Send clones of one shared `msg` to each target, in order. The simulator
    /// computes the payload size once for the whole fan-out.
    Many(Vec<ReplicaId>, M),
}

/// One send request drained out of a handler's buffered effects by
/// [`Context::take_sends`], in a shape a decorating actor can inspect and
/// mutate: the target list and the shared payload. Requeuing an unmodified
/// captured send via [`Context::broadcast`] reproduces the original scheduling
/// byte-for-byte — the simulator sizes the payload once per operation and
/// routes the targets in order in both cases.
pub struct CapturedSend<M> {
    /// The recipients, in the order the wrapped actor listed them.
    pub to: Vec<ReplicaId>,
    /// The message each recipient gets a clone of.
    pub msg: M,
}

/// Buffered side effects of one handler invocation, applied by the simulator after
/// the handler returns.
pub(crate) struct Effects<M> {
    pub sends: Vec<SendOp<M>>,
    pub timers: Vec<(Duration, u64)>,
    pub consumed: Duration,
    pub outputs: Vec<Output>,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            timers: Vec::new(),
            consumed: Duration::ZERO,
            outputs: Vec::new(),
        }
    }
}

/// The world as seen by an actor while handling one event.
pub struct Context<'a, M> {
    pub(crate) node: ReplicaId,
    pub(crate) now: Time,
    pub(crate) costs: CostModel,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) effects: &'a mut Effects<M>,
}

impl<'a, M> Context<'a, M> {
    /// The id of the node whose handler is running.
    pub fn node(&self) -> ReplicaId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The CPU cost model (so actors can charge themselves for signature checks and
    /// execution work via [`Context::consume`]).
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// Send `msg` to `to`. Delivery is scheduled after this handler's processing time
    /// plus the network latency between the two nodes' regions.
    pub fn send(&mut self, to: ReplicaId, msg: M) {
        self.effects.sends.push(SendOp::One(to, msg));
    }

    /// Send `msg` to every node in `targets`, sharing one payload: the message's
    /// wire size is computed once for the whole fan-out and each recipient gets a
    /// clone (a pointer bump for `Arc`-backed payloads). Delivery order and latency
    /// are identical to calling [`Context::send`] once per target.
    pub fn send_many<I: IntoIterator<Item = ReplicaId>>(&mut self, targets: I, msg: M)
    where
        M: Clone,
    {
        self.broadcast(targets.into_iter().collect(), msg);
    }

    /// Like [`Context::send_many`], taking the target list by value.
    pub fn broadcast(&mut self, targets: Vec<ReplicaId>, msg: M) {
        if targets.is_empty() {
            return;
        }
        self.effects.sends.push(SendOp::Many(targets, msg));
    }

    /// Arrange for [`Actor::on_timer`] to be called with `kind` after `delay`.
    pub fn set_timer(&mut self, delay: Duration, kind: u64) {
        self.effects.timers.push((delay, kind));
    }

    /// Charge the node `amount` of CPU time on top of the per-event cost.
    pub fn consume(&mut self, amount: Duration) {
        self.effects.consumed += amount;
    }

    /// Record a measurement event.
    pub fn emit(&mut self, output: Output) {
        self.effects.outputs.push(output);
    }

    /// Deterministic per-simulation random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Drain every send buffered so far into an inspectable list, in order.
    /// Decorating actors (the Byzantine behavior wrappers) use this to intercept
    /// a wrapped handler's outbound traffic, mutate or drop individual sends,
    /// and requeue the rest via [`Context::broadcast`] — which preserves the
    /// original scheduling exactly for unmodified sends.
    pub fn take_sends(&mut self) -> Vec<CapturedSend<M>> {
        std::mem::take(&mut self.effects.sends)
            .into_iter()
            .map(|op| match op {
                SendOp::One(to, msg) => CapturedSend { to: vec![to], msg },
                SendOp::Many(to, msg) => CapturedSend { to, msg },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_effects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut effects = Effects::<()>::default();
        let mut ctx = Context {
            node: ReplicaId(3),
            now: Time::from_millis(5),
            costs: CostModel::zero(),
            rng: &mut rng,
            effects: &mut effects,
        };
        ctx.send(ReplicaId(1), ());
        ctx.send_many([ReplicaId(2), ReplicaId(4)], ());
        ctx.send_many([], ()); // empty fan-outs are dropped
        ctx.set_timer(Duration::from_millis(10), 7);
        ctx.consume(Duration::from_micros(30));
        ctx.emit(Output::Custom { name: "x", value: 1.0, at: ctx.now() });
        assert_eq!(ctx.node(), ReplicaId(3));
        assert_eq!(effects.sends.len(), 2);
        assert!(matches!(&effects.sends[0], SendOp::One(to, ()) if *to == ReplicaId(1)));
        assert!(
            matches!(&effects.sends[1], SendOp::Many(ts, ()) if ts == &[ReplicaId(2), ReplicaId(4)])
        );
        assert_eq!(effects.timers, vec![(Duration::from_millis(10), 7)]);
        assert_eq!(effects.consumed, Duration::from_micros(30));
        assert_eq!(effects.outputs.len(), 1);
    }

    #[test]
    fn take_sends_drains_and_requeue_preserves_targets() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut effects = Effects::<()>::default();
        let mut ctx = Context {
            node: ReplicaId(3),
            now: Time::from_millis(5),
            costs: CostModel::zero(),
            rng: &mut rng,
            effects: &mut effects,
        };
        ctx.send(ReplicaId(1), ());
        ctx.send_many([ReplicaId(2), ReplicaId(4)], ());
        let captured = ctx.take_sends();
        assert_eq!(captured.len(), 2);
        assert_eq!(captured[0].to, vec![ReplicaId(1)]);
        assert_eq!(captured[1].to, vec![ReplicaId(2), ReplicaId(4)]);
        // The buffer is empty after the drain; requeuing restores the fan-outs.
        assert!(ctx.effects.sends.is_empty());
        for send in captured {
            ctx.broadcast(send.to, send.msg);
        }
        assert_eq!(ctx.effects.sends.len(), 2);
        assert!(matches!(&ctx.effects.sends[0], SendOp::Many(ts, ()) if ts == &[ReplicaId(1)]));
    }
}
