//! The discrete-event simulation engine.

use crate::actor::{Actor, Context, Effects, SendOp, SimMessage};
use crate::cost::CostModel;
use crate::event::{Event, EventKind};
use crate::latency::LatencyModel;
use crate::stats::NetStats;
use ava_types::{ClientId, Duration, Output, Region, ReplicaId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};

/// Node id assigned to a client process. Clients live in a reserved id range so that
/// they never collide with replica ids.
pub fn client_node_id(client: ClientId) -> ReplicaId {
    ReplicaId(1_000_000 + client.0)
}

/// A fault-injection rule dropping messages on matching links during a time window.
#[derive(Clone, Debug)]
pub struct DropRule {
    /// Only match messages from this sender (None = any).
    pub from: Option<ReplicaId>,
    /// Only match messages to this receiver (None = any).
    pub to: Option<ReplicaId>,
    /// Rule becomes active at this time.
    pub after: Time,
    /// Rule stops applying at this time (None = forever).
    pub until: Option<Time>,
    /// Probability of dropping a matching message (1.0 = always).
    pub probability: f64,
}

impl DropRule {
    /// Drop every message from `from`, starting at `after`.
    pub fn silence_node(from: ReplicaId, after: Time) -> Self {
        DropRule { from: Some(from), to: None, after, until: None, probability: 1.0 }
    }

    fn matches(&self, from: ReplicaId, to: ReplicaId, at: Time) -> bool {
        if at < self.after {
            return false;
        }
        if let Some(until) = self.until {
            if at >= until {
                return false;
            }
        }
        self.from.map_or(true, |f| f == from) && self.to.map_or(true, |t| t == to)
    }
}

/// An active network partition between two node groups (clusters). While a
/// partition is in place, every message between the two groups is dropped, in both
/// directions; intra-group traffic is unaffected. Unlike [`DropRule`]s, partitions
/// never consume randomness, so installing or healing one cannot perturb the RNG
/// draw order of the rest of the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct GroupPartition {
    a: u32,
    b: u32,
}

impl GroupPartition {
    fn new(a: u32, b: u32) -> Self {
        GroupPartition { a: a.min(b), b: a.max(b) }
    }

    fn severs(&self, from: u32, to: u32) -> bool {
        *self == GroupPartition::new(from, to)
    }
}

struct NodeSlot<M> {
    actor: Box<dyn Actor<M> + Send>,
    region: Region,
    group: u32,
    busy_until: Time,
    crashed: bool,
    /// Lifecycle epoch, bumped on restart: timers armed in an earlier epoch are
    /// stale (the restarted process no longer knows about them) and are dropped.
    epoch: u64,
}

/// The deterministic discrete-event simulator.
///
/// `M` is the single message type exchanged by all actors of the simulation (protocol
/// crates define an enum covering their sub-protocols).
pub struct Simulation<M: SimMessage> {
    nodes: HashMap<ReplicaId, NodeSlot<M>>,
    queue: BinaryHeap<Event<M>>,
    seq: u64,
    now: Time,
    latency: LatencyModel,
    costs: CostModel,
    rng: StdRng,
    outputs: Vec<Output>,
    stats: NetStats,
    drop_rules: Vec<DropRule>,
    crash_schedule: Vec<(Time, ReplicaId)>,
    corrupt_schedule: Vec<(Time, ReplicaId, u64)>,
    partitions: Vec<GroupPartition>,
}

impl<M: SimMessage> Simulation<M> {
    /// Create a simulation with the given RNG seed, latency model and cost model.
    pub fn new(seed: u64, latency: LatencyModel, costs: CostModel) -> Self {
        Simulation {
            nodes: HashMap::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            latency,
            costs,
            rng: StdRng::seed_from_u64(seed),
            outputs: Vec::new(),
            stats: NetStats::default(),
            drop_rules: Vec::new(),
            crash_schedule: Vec::new(),
            corrupt_schedule: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Convenience constructor with the paper's latency table and cloud-VM costs.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(seed, LatencyModel::paper_table2(), CostModel::cloud_vm())
    }

    /// Add a node. `group` tags the node's cluster for local/global message
    /// accounting. The node's `on_start` hook runs at the current virtual time.
    ///
    /// Actors must be `Send` so a prepared simulation can move to a worker thread
    /// of the parallel run executor (`ava_scenario::parallel`). Actors never run
    /// concurrently within one simulation — `Send`, not `Sync`, is the bound.
    pub fn add_node(
        &mut self,
        id: ReplicaId,
        region: Region,
        group: u32,
        actor: Box<dyn Actor<M> + Send>,
    ) {
        assert!(!self.nodes.contains_key(&id), "node {id} already exists");
        self.nodes.insert(
            id,
            NodeSlot { actor, region, group, busy_until: self.now, crashed: false, epoch: 0 },
        );
        self.push_event(self.now, id, EventKind::Start);
    }

    /// Whether a node with this id exists (crashed or not).
    pub fn has_node(&self, id: ReplicaId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, id: ReplicaId) -> bool {
        self.nodes.get(&id).map(|n| n.crashed).unwrap_or(false)
    }

    /// Crash `node` at virtual time `at`: from then on it neither receives messages
    /// nor fires timers.
    pub fn crash_at(&mut self, node: ReplicaId, at: Time) {
        self.crash_schedule.push((at, node));
    }

    /// Crash `node` immediately.
    pub fn crash_now(&mut self, node: ReplicaId) {
        let at = self.now;
        self.crash_at(node, at);
    }

    /// Turn `node` Byzantine at virtual time `at`: its actor's
    /// [`Actor::on_corrupt`] hook runs with `tag` (an opaque behavior code)
    /// just before the first event processed at or after `at`. Corrupting a
    /// node that does not exist is a no-op. Like a scheduled crash, corruption
    /// consumes no randomness and schedules no event of its own, and it applies
    /// to crashed nodes too — a corrupted replica that crashes and restarts
    /// stays corrupted, matching the Byzantine fault model (faults are assigned
    /// to processes, not to uptime intervals).
    pub fn corrupt_at(&mut self, node: ReplicaId, at: Time, tag: u64) {
        self.corrupt_schedule.push((at, node, tag));
    }

    /// Restart `node` at virtual time `at`: if it is crashed at that point, its
    /// crashed flag is cleared and its [`Actor::on_restart`] hook runs — the actor
    /// is expected to come back with only the state it treats as persistent.
    /// Restarting a node that is not crashed at `at` is a no-op, as is restarting
    /// a node that does not exist. Scheduling a restart consumes no randomness.
    pub fn restart_at(&mut self, node: ReplicaId, at: Time) {
        self.push_event(at.max(self.now), node, EventKind::Restart);
    }

    /// Install a message drop rule.
    pub fn add_drop_rule(&mut self, rule: DropRule) {
        self.drop_rules.push(rule);
    }

    /// Partition groups `a` and `b` from each other, starting now: every message
    /// between them (either direction) is dropped until [`Simulation::heal_groups`]
    /// removes the partition. Installing the same partition twice is a no-op.
    pub fn partition_groups(&mut self, a: u32, b: u32) {
        let p = GroupPartition::new(a, b);
        if !self.partitions.contains(&p) {
            self.partitions.push(p);
        }
    }

    /// Heal a partition previously installed with [`Simulation::partition_groups`].
    /// Healing a pair that is not partitioned is a no-op.
    pub fn heal_groups(&mut self, a: u32, b: u32) {
        let p = GroupPartition::new(a, b);
        self.partitions.retain(|q| *q != p);
    }

    /// Whether groups `a` and `b` are currently partitioned from each other.
    pub fn groups_partitioned(&self, a: u32, b: u32) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b))
    }

    /// Replace the latency model, effective for every message routed from now on.
    /// Messages already in flight keep the delivery time they were scheduled with.
    /// Swapping the model consumes no randomness, so a run that shifts latency at
    /// time `t` is bit-identical to the unshifted run up to `t`.
    pub fn set_latency_model(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// The current latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Inject a message from outside the simulation (or on behalf of `from`) that
    /// will be delivered to `to` at time `at` (clamped to the current time).
    pub fn external_send(&mut self, from: ReplicaId, to: ReplicaId, msg: M, at: Time) {
        let at = at.max(self.now);
        let size = msg.size_bytes();
        let (fg, tg) = (self.group_of(from), self.group_of(to));
        self.stats.record_send(fg, tg, size);
        self.push_event(at, to, EventKind::Deliver { from, msg, size });
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Measurement events emitted so far.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Take ownership of the emitted measurement events, leaving the buffer empty.
    pub fn take_outputs(&mut self) -> Vec<Output> {
        std::mem::take(&mut self.outputs)
    }

    /// Network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Run until the queue is empty or virtual time reaches `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(next_at) = self.queue.peek().map(|e| e.at) {
            if next_at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Run for `d` of virtual time from the current time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Process a single event. Returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(event.at);
        self.apply_scheduled_crashes();
        self.apply_scheduled_corruptions();
        self.stats.events_processed += 1;

        let Some(slot) = self.nodes.get_mut(&event.node) else {
            if matches!(event.kind, EventKind::Deliver { .. }) {
                self.stats.dropped_messages += 1;
            }
            return true;
        };
        if slot.crashed {
            // A Restart event is the one thing a crashed node still reacts to: it
            // clears the crash and falls through to run the actor's restart hook.
            // Any service time accumulated before the crash is void, and bumping
            // the epoch invalidates every timer armed before the crash.
            if matches!(event.kind, EventKind::Restart) {
                slot.crashed = false;
                slot.busy_until = event.at;
                slot.epoch += 1;
            } else {
                if matches!(event.kind, EventKind::Deliver { .. }) {
                    self.stats.dropped_messages += 1;
                }
                return true;
            }
        } else if matches!(event.kind, EventKind::Restart) {
            // Restarting a running node is a no-op (e.g. the crash it was paired
            // with never applied).
            return true;
        }

        let start = event.at.max(slot.busy_until);
        let from_region = slot.region;
        let from_group = slot.group;
        let slot_epoch = slot.epoch;
        let mut effects = Effects::default();
        let event_bytes;
        {
            let mut ctx = Context {
                node: event.node,
                now: start,
                costs: self.costs,
                rng: &mut self.rng,
                effects: &mut effects,
            };
            match event.kind {
                EventKind::Start => {
                    event_bytes = 0;
                    slot.actor.on_start(&mut ctx);
                }
                EventKind::Deliver { from, msg, size } => {
                    event_bytes = size;
                    slot.actor.on_message(from, msg, &mut ctx);
                }
                EventKind::Timer { kind, epoch } => {
                    if epoch != slot_epoch {
                        // Armed before a restart: the process that set it is gone.
                        return true;
                    }
                    event_bytes = 0;
                    slot.actor.on_timer(kind, &mut ctx);
                }
                EventKind::Restart => {
                    event_bytes = 0;
                    slot.actor.on_restart(&mut ctx);
                }
            }
        }
        let service = self.costs.event_cost(event_bytes) + effects.consumed;
        let depart = start + service;
        slot.busy_until = depart;

        self.outputs.extend(effects.outputs);
        for (delay, kind) in effects.timers {
            self.push_event(
                start + delay,
                event.node,
                EventKind::Timer { kind, epoch: slot_epoch },
            );
        }
        for op in effects.sends {
            match op {
                SendOp::One(to, msg) => {
                    let size = msg.size_bytes();
                    self.route(event.node, from_region, from_group, to, msg, size, depart);
                }
                SendOp::Many(targets, msg) => {
                    // One shared payload: size the message once for the whole
                    // fan-out; per-recipient work is a clone (an `Arc` bump for the
                    // protocol payloads) plus event scheduling.
                    let size = msg.size_bytes();
                    for to in targets {
                        let msg = msg.clone();
                        self.route(event.node, from_region, from_group, to, msg, size, depart);
                    }
                }
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn route(
        &mut self,
        from: ReplicaId,
        from_region: Region,
        from_group: u32,
        to: ReplicaId,
        msg: M,
        size: usize,
        depart: Time,
    ) {
        let Some(dest) = self.nodes.get(&to) else {
            // Destination not (yet) part of the simulation, e.g. a replica that left.
            self.stats.dropped_messages += 1;
            return;
        };
        let to_region = dest.region;
        let to_group = dest.group;
        self.stats.record_send(from_group, to_group, size);
        // Active partitions sever the two groups deterministically (no RNG roll),
        // before the probabilistic drop rules are consulted.
        if from_group != to_group && self.groups_partitioned(from_group, to_group) {
            self.stats.dropped_messages += 1;
            return;
        }
        // Single pass over the drop rules: collect the strongest matching
        // probability, then roll at most once (preserving the RNG draw order of the
        // previous two-pass `any` + `max` scan).
        let mut drop_p = f64::NEG_INFINITY;
        for rule in &self.drop_rules {
            if rule.matches(from, to, depart) {
                drop_p = drop_p.max(rule.probability);
            }
        }
        if drop_p > f64::NEG_INFINITY && self.roll(drop_p.max(0.0)) {
            self.stats.dropped_messages += 1;
            return;
        }
        let latency = self.latency.one_way(from_region, to_region, from == to, &mut self.rng);
        self.push_event(depart + latency, to, EventKind::Deliver { from, msg, size });
    }

    fn roll(&mut self, probability: f64) -> bool {
        if probability >= 1.0 {
            true
        } else if probability <= 0.0 {
            false
        } else {
            self.rng.gen_bool(probability)
        }
    }

    fn group_of(&self, node: ReplicaId) -> u32 {
        self.nodes.get(&node).map(|n| n.group).unwrap_or(u32::MAX)
    }

    fn apply_scheduled_crashes(&mut self) {
        if self.crash_schedule.is_empty() {
            return;
        }
        let now = self.now;
        let mut remaining = Vec::with_capacity(self.crash_schedule.len());
        for (at, node) in self.crash_schedule.drain(..) {
            if at <= now {
                if let Some(slot) = self.nodes.get_mut(&node) {
                    slot.crashed = true;
                }
            } else {
                remaining.push((at, node));
            }
        }
        self.crash_schedule = remaining;
    }

    fn apply_scheduled_corruptions(&mut self) {
        if self.corrupt_schedule.is_empty() {
            return;
        }
        let now = self.now;
        let mut remaining = Vec::with_capacity(self.corrupt_schedule.len());
        for (at, node, tag) in self.corrupt_schedule.drain(..) {
            if at <= now {
                if let Some(slot) = self.nodes.get_mut(&node) {
                    slot.actor.on_corrupt(tag);
                }
            } else {
                remaining.push((at, node, tag));
            }
        }
        self.corrupt_schedule = remaining;
    }

    fn push_event(&mut self, at: Time, node: ReplicaId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, node, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial protocol: on start, node 0 pings its peer; every node echoes pings
    /// back `hops` times and emits a Custom output when done.
    #[derive(Clone)]
    struct Ping {
        peer: ReplicaId,
        remaining: u32,
        initiator: bool,
    }

    #[derive(Clone)]
    struct PingMsg;

    impl SimMessage for PingMsg {
        fn size_bytes(&self) -> usize {
            100
        }
    }

    impl Actor<PingMsg> for Ping {
        fn on_start(&mut self, ctx: &mut Context<'_, PingMsg>) {
            if self.initiator {
                ctx.send(self.peer, PingMsg);
            }
        }
        fn on_message(&mut self, _from: ReplicaId, _msg: PingMsg, ctx: &mut Context<'_, PingMsg>) {
            if self.remaining == 0 {
                ctx.emit(Output::Custom { name: "done", value: 1.0, at: ctx.now() });
            } else {
                self.remaining -= 1;
                ctx.send(self.peer, PingMsg);
            }
        }
    }

    fn two_node_sim(regions: (Region, Region)) -> Simulation<PingMsg> {
        let mut sim =
            Simulation::new(7, LatencyModel::paper_table2().with_jitter(0.0), CostModel::zero());
        sim.add_node(
            ReplicaId(0),
            regions.0,
            0,
            Box::new(Ping { peer: ReplicaId(1), remaining: 3, initiator: true }),
        );
        sim.add_node(
            ReplicaId(1),
            regions.1,
            1,
            Box::new(Ping { peer: ReplicaId(0), remaining: 3, initiator: false }),
        );
        sim
    }

    #[test]
    fn ping_pong_latency_matches_model() {
        let mut sim = two_node_sim((Region::UsWest, Region::Europe));
        sim.run_until(Time::from_secs(10));
        // The first node to exhaust its ping budget (node 1, on its 4th receipt) has
        // seen the 7th one-way hop; each hop is 148/2 = 74 ms.
        let done_at = sim
            .outputs()
            .iter()
            .find_map(|o| match o {
                Output::Custom { name: "done", at, .. } => Some(*at),
                _ => None,
            })
            .expect("ping-pong should complete");
        assert_eq!(done_at, Time::from_millis(74 * 7));
    }

    #[test]
    fn same_seed_gives_identical_runs() {
        let run = |seed| {
            let mut sim =
                Simulation::new(seed, LatencyModel::paper_table2(), CostModel::cloud_vm());
            sim.add_node(
                ReplicaId(0),
                Region::UsWest,
                0,
                Box::new(Ping { peer: ReplicaId(1), remaining: 10, initiator: true }),
            );
            sim.add_node(
                ReplicaId(1),
                Region::AsiaSouth,
                1,
                Box::new(Ping { peer: ReplicaId(0), remaining: 10, initiator: false }),
            );
            sim.run_until(Time::from_secs(20));
            (sim.stats().total_messages(), sim.outputs().len(), sim.now())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn crashed_node_stops_responding() {
        let mut sim = two_node_sim((Region::UsWest, Region::UsWest));
        sim.crash_at(ReplicaId(1), Time::from_millis(1));
        sim.run_until(Time::from_secs(5));
        assert!(sim.is_crashed(ReplicaId(1)));
        assert!(sim.stats().dropped_messages >= 1);
        assert!(sim.outputs().is_empty());
    }

    #[test]
    fn restarted_node_resumes_processing() {
        // Crash node 1 before the first ping lands, restart it at 2 s, then re-seed
        // the exchange: the ping-pong must complete after the restart.
        let mut sim = two_node_sim((Region::UsWest, Region::UsWest));
        sim.crash_at(ReplicaId(1), Time::from_millis(1));
        sim.restart_at(ReplicaId(1), Time::from_secs(2));
        sim.run_until(Time::from_secs(2));
        assert!(!sim.is_crashed(ReplicaId(1)));
        let now = sim.now();
        sim.external_send(ReplicaId(0), ReplicaId(1), PingMsg, now);
        sim.run_until(Time::from_secs(10));
        assert!(
            sim.outputs().iter().any(|o| matches!(o, Output::Custom { name: "done", .. })),
            "exchange must complete after the restart"
        );
    }

    #[test]
    fn scheduled_corruption_reaches_the_actor_and_survives_restart() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        // An actor that records the behavior tags delivered to its corrupt hook.
        struct Spy {
            tags: Arc<AtomicU64>,
        }
        impl Actor<PingMsg> for Spy {
            fn on_message(&mut self, _: ReplicaId, _: PingMsg, ctx: &mut Context<'_, PingMsg>) {
                ctx.send(ReplicaId(0), PingMsg);
            }
            fn on_corrupt(&mut self, tag: u64) {
                self.tags.fetch_add(tag, Ordering::Relaxed);
            }
        }
        let tags = Arc::new(AtomicU64::new(0));
        let mut sim =
            Simulation::new(7, LatencyModel::paper_table2().with_jitter(0.0), CostModel::zero());
        // Cross-region so each hop is 74 ms: the exchange is still in flight when
        // the corruption time arrives (the hook applies on the next processed
        // event, so the schedule needs live traffic past 50 ms).
        sim.add_node(
            ReplicaId(0),
            Region::UsWest,
            0,
            Box::new(Ping { peer: ReplicaId(1), remaining: 10, initiator: true }),
        );
        sim.add_node(ReplicaId(1), Region::Europe, 1, Box::new(Spy { tags: Arc::clone(&tags) }));
        sim.corrupt_at(ReplicaId(1), Time::from_millis(50), 9);
        sim.run_until(Time::from_millis(40));
        assert_eq!(tags.load(Ordering::Relaxed), 0, "corruption must not apply early");
        sim.run_until(Time::from_secs(1));
        assert_eq!(tags.load(Ordering::Relaxed), 9, "the tag must reach the actor exactly once");
        // A crash does not cancel a pending corruption: the fault is assigned to
        // the process, and the hook still runs on the next processed event.
        sim.corrupt_at(ReplicaId(1), Time::from_secs(2), 100);
        sim.crash_at(ReplicaId(1), Time::from_secs(2));
        sim.restart_at(ReplicaId(1), Time::from_secs(3));
        let now = sim.now();
        sim.external_send(ReplicaId(0), ReplicaId(1), PingMsg, now.max(Time::from_secs(4)));
        sim.run_until(Time::from_secs(5));
        assert_eq!(tags.load(Ordering::Relaxed), 109, "corruption applies across the restart");
    }

    #[test]
    fn timers_armed_before_a_crash_die_with_the_restart() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        // An actor that re-arms a periodic timer and counts firings. The shared
        // counter is an `Arc<AtomicU32>` (not `Rc<Cell>`) so the actor satisfies
        // the `Send` bound `add_node` now enforces.
        struct Ticker {
            fired: Arc<AtomicU32>,
        }
        impl Actor<PingMsg> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, PingMsg>) {
                ctx.set_timer(Duration::from_millis(10), 1);
            }
            fn on_message(&mut self, _: ReplicaId, _: PingMsg, _: &mut Context<'_, PingMsg>) {}
            fn on_timer(&mut self, _kind: u64, ctx: &mut Context<'_, PingMsg>) {
                self.fired.fetch_add(1, Ordering::Relaxed);
                ctx.set_timer(Duration::from_millis(10), 1);
            }
        }
        let fired = Arc::new(AtomicU32::new(0));
        let mut sim: Simulation<PingMsg> =
            Simulation::new(1, LatencyModel::paper_table2().with_jitter(0.0), CostModel::zero());
        sim.add_node(ReplicaId(0), Region::UsWest, 0, Box::new(Ticker { fired: fired.clone() }));
        // Crash mid-interval, restart 5 ms later: the pre-crash timer's deadline
        // falls after the restart but must NOT fire into the restarted actor —
        // only the chain re-armed by on_restart (via the default on_start) runs.
        sim.crash_at(ReplicaId(0), Time::from_millis(15));
        sim.restart_at(ReplicaId(0), Time::from_millis(18));
        sim.run_until(Time::from_millis(100));
        // One firing pre-crash (t=10); post-restart chain fires at 28, 38, ..., 98.
        assert_eq!(
            fired.load(Ordering::Relaxed),
            1 + 8,
            "exactly one timer chain may run after the restart"
        );
    }

    #[test]
    fn simulation_is_send() {
        // Compile-time guarantee for the parallel run executor: a fully built
        // simulation (actors, queued events, RNG, stats) can move to a worker
        // thread. `two_node_sim` exercises the bound with real boxed actors.
        fn assert_send<T: Send>() {}
        assert_send::<Simulation<PingMsg>>();
        assert_send::<Simulation<()>>();
        let sim = two_node_sim((Region::UsWest, Region::Europe));
        std::thread::spawn(move || {
            let mut sim = sim;
            sim.run_until(Time::from_secs(10));
            sim.outputs().len()
        })
        .join()
        .expect("simulation must run to completion on a worker thread");
    }

    #[test]
    fn restart_of_a_running_node_is_a_no_op() {
        let mut sim = two_node_sim((Region::UsWest, Region::UsWest));
        sim.restart_at(ReplicaId(0), Time::from_millis(1));
        sim.run_until(Time::from_secs(5));
        // The default on_restart re-runs on_start, but node 0 was never crashed,
        // so the restart is ignored and the normal exchange completes once.
        assert_eq!(
            sim.outputs()
                .iter()
                .filter(|o| matches!(o, Output::Custom { name: "done", .. }))
                .count(),
            1
        );
    }

    #[test]
    fn drop_rule_silences_link() {
        let mut sim = two_node_sim((Region::UsWest, Region::UsWest));
        sim.add_drop_rule(DropRule::silence_node(ReplicaId(0), Time::ZERO));
        sim.run_until(Time::from_secs(5));
        assert!(sim.outputs().is_empty());
        assert!(sim.stats().dropped_messages >= 1);
    }

    #[test]
    fn stats_distinguish_local_and_global_messages() {
        let mut sim = two_node_sim((Region::UsWest, Region::Europe));
        sim.run_until(Time::from_secs(10));
        // Both nodes are in different groups, so all traffic is global:
        // 1 initial ping + 3 replies from each side = 7 messages.
        assert_eq!(sim.stats().local_messages, 0);
        assert_eq!(sim.stats().global_messages, 7);
    }

    #[test]
    fn cpu_cost_delays_processing() {
        // With a large per-event cost the ping-pong completes later than with zero
        // cost, demonstrating the busy-server model.
        let run = |costs: CostModel| {
            let mut sim = Simulation::new(1, LatencyModel::paper_table2().with_jitter(0.0), costs);
            sim.add_node(
                ReplicaId(0),
                Region::UsWest,
                0,
                Box::new(Ping { peer: ReplicaId(1), remaining: 5, initiator: true }),
            );
            sim.add_node(
                ReplicaId(1),
                Region::UsWest,
                0,
                Box::new(Ping { peer: ReplicaId(0), remaining: 5, initiator: false }),
            );
            sim.run_until(Time::from_secs(10));
            sim.outputs().iter().map(|o| o.at()).max().unwrap_or(Time::ZERO)
        };
        let slow = CostModel { per_event: Duration::from_millis(10), ..CostModel::zero() };
        assert!(run(slow) > run(CostModel::zero()));
    }

    #[test]
    fn external_send_reaches_target() {
        let mut sim = two_node_sim((Region::UsWest, Region::UsWest));
        // Deliver an extra ping to node 1 directly.
        sim.external_send(ReplicaId(99), ReplicaId(1), PingMsg, Time::from_millis(1));
        sim.run_until(Time::from_secs(5));
        // Node 1 got at least the external message plus protocol traffic.
        assert!(sim.stats().total_messages() >= 8);
    }

    #[test]
    fn partition_severs_cross_group_traffic_and_heal_restores_it() {
        // Partition installed at t=0: the initial ping is dropped, nothing completes.
        let mut sim = two_node_sim((Region::UsWest, Region::UsWest));
        sim.partition_groups(0, 1);
        assert!(sim.groups_partitioned(0, 1));
        sim.run_until(Time::from_secs(2));
        assert!(sim.outputs().is_empty());
        assert!(sim.stats().dropped_messages >= 1);

        // Healed partition: traffic flows again (a fresh external ping restarts the
        // exchange, since the original one was lost).
        sim.heal_groups(0, 1);
        assert!(!sim.groups_partitioned(0, 1));
        let now = sim.now();
        sim.external_send(ReplicaId(0), ReplicaId(1), PingMsg, now);
        sim.run_until(Time::from_secs(10));
        assert!(
            sim.outputs().iter().any(|o| matches!(o, Output::Custom { name: "done", .. })),
            "ping-pong should complete after the heal"
        );
    }

    #[test]
    fn partition_is_symmetric_and_leaves_intra_group_traffic_alone() {
        let mut sim =
            Simulation::new(9, LatencyModel::paper_table2().with_jitter(0.0), CostModel::zero());
        // Nodes 0 and 1 share group 0; node 2 is group 1. Partition 0|1 must sever
        // 0<->2 in both directions while 0<->1 keeps working.
        sim.add_node(
            ReplicaId(0),
            Region::UsWest,
            0,
            Box::new(Ping { peer: ReplicaId(1), remaining: 3, initiator: true }),
        );
        sim.add_node(
            ReplicaId(1),
            Region::UsWest,
            0,
            Box::new(Ping { peer: ReplicaId(0), remaining: 3, initiator: false }),
        );
        sim.add_node(
            ReplicaId(2),
            Region::Europe,
            1,
            Box::new(Ping { peer: ReplicaId(0), remaining: 3, initiator: true }),
        );
        sim.partition_groups(1, 0); // order must not matter
        sim.run_until(Time::from_secs(5));
        assert!(sim.groups_partitioned(0, 1));
        // The intra-group pair finished; every cross-group message was dropped.
        assert_eq!(
            sim.outputs()
                .iter()
                .filter(|o| matches!(o, Output::Custom { name: "done", .. }))
                .count(),
            1
        );
        assert!(sim.stats().dropped_messages >= 1);
        assert_eq!(sim.stats().local_messages, 7);
    }

    #[test]
    fn latency_shift_changes_delivery_times_mid_run() {
        // Same topology twice; the second run shifts to a 10x slower uniform model
        // mid-run, so the exchange completes strictly later.
        let run = |shift: bool| {
            let mut sim = Simulation::new(
                5,
                LatencyModel::paper_table2().with_jitter(0.0),
                CostModel::zero(),
            );
            sim.add_node(
                ReplicaId(0),
                Region::UsWest,
                0,
                Box::new(Ping { peer: ReplicaId(1), remaining: 6, initiator: true }),
            );
            sim.add_node(
                ReplicaId(1),
                Region::Europe,
                1,
                Box::new(Ping { peer: ReplicaId(0), remaining: 6, initiator: false }),
            );
            sim.run_until(Time::from_millis(100));
            if shift {
                sim.set_latency_model(LatencyModel::uniform(1480.0).with_jitter(0.0));
            }
            sim.run_until(Time::from_secs(60));
            sim.outputs()
                .iter()
                .find_map(|o| match o {
                    Output::Custom { name: "done", at, .. } => Some(*at),
                    _ => None,
                })
                .expect("exchange completes")
        };
        let (base, shifted) = (run(false), run(true));
        assert!(shifted > base, "shifted {shifted:?} vs base {base:?}");
        // Each side echoes 6 times, so the exchange ends on the 13th one-way hop;
        // unshifted, every hop is 148/2 = 74 ms.
        assert_eq!(base, Time::from_millis(74 * 13));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim: Simulation<PingMsg> =
            Simulation::new(3, LatencyModel::paper_table2(), CostModel::zero());
        sim.run_until(Time::from_secs(7));
        assert_eq!(sim.now(), Time::from_secs(7));
        assert_eq!(sim.pending_events(), 0);
    }
}
