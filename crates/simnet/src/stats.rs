//! Network statistics collected by the simulator.
//!
//! Table I of the paper compares protocols by local vs. global (inter-cluster)
//! message complexity; the simulator counts both by tagging every node with a group
//! (its cluster).

use std::collections::HashMap;

/// Counters of simulated network traffic.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Messages sent between nodes of the same group (intra-cluster).
    pub local_messages: u64,
    /// Messages sent between nodes of different groups (inter-cluster).
    pub global_messages: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Messages dropped by fault-injection rules or crashes.
    pub dropped_messages: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Per message-label counts (labels are provided by actors via message sizes; the
    /// simulator keys this map by the group pair `(from_group, to_group)`).
    pub per_group_pair: HashMap<(u32, u32), u64>,
}

impl NetStats {
    /// Total messages sent (local + global).
    pub fn total_messages(&self) -> u64 {
        self.local_messages + self.global_messages
    }

    /// Record one sent message.
    pub fn record_send(&mut self, from_group: u32, to_group: u32, bytes: usize) {
        if from_group == to_group {
            self.local_messages += 1;
        } else {
            self.global_messages += 1;
        }
        self.bytes_sent += bytes as u64;
        *self.per_group_pair.entry((from_group, to_group)).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_classifies_local_and_global() {
        let mut s = NetStats::default();
        s.record_send(0, 0, 100);
        s.record_send(0, 1, 200);
        s.record_send(1, 0, 300);
        assert_eq!(s.local_messages, 1);
        assert_eq!(s.global_messages, 2);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.bytes_sent, 600);
        assert_eq!(s.per_group_pair[&(0, 1)], 1);
    }
}
