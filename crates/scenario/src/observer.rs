//! Run observers: probes the scenario runner invokes while a run executes.
//!
//! Observers see every [`Output`] in emission order *during* the run (instead of
//! reconstructing series from `take_outputs()` afterwards), plus periodic ticks and
//! the applied schedule events. The built-in observers cover the series the paper's
//! figures need — throughput over time, per-stage latency, and per-round
//! reconfiguration traces (the E5.2 diagnosis tool).

use crate::deployment::DynDeployment;
use crate::scenario::ScenarioEvent;
use ava_types::{ClusterId, Duration, Output, RejectKind, ReplicaId, Round, StageKind, Time};
use std::collections::BTreeMap;

/// A probe tapping a scenario run as it executes.
///
/// All methods have empty defaults, so an observer implements only what it needs.
pub trait RunObserver {
    /// The deployment was built; virtual time is zero.
    fn on_start(&mut self, dep: &dyn DynDeployment) {
        let _ = dep;
    }

    /// The run crossed a tick boundary (see `ScenarioBuilder::tick_every`).
    fn on_tick(&mut self, now: Time, dep: &dyn DynDeployment) {
        let _ = (now, dep);
    }

    /// A measurement event was emitted. Invoked for every output exactly once, in
    /// emission order, batched at tick/event boundaries and at the end of the run.
    fn on_output(&mut self, output: &Output) {
        let _ = output;
    }

    /// A scheduled event is about to be applied.
    fn on_event(&mut self, at: Time, event: &ScenarioEvent) {
        let _ = (at, event);
    }

    /// The run reached its end time.
    fn on_end(&mut self, dep: &dyn DynDeployment) {
        let _ = dep;
    }
}

/// Streams completed transactions into a bucketed throughput time series
/// (the series of the paper's Fig. 4f–h and Fig. 5a).
#[derive(Clone, Debug)]
pub struct ThroughputObserver {
    bucket: Duration,
    counts: BTreeMap<u64, usize>,
}

impl ThroughputObserver {
    /// Bucket completions into windows of `bucket` virtual time.
    pub fn new(bucket: Duration) -> Self {
        assert!(bucket > Duration::ZERO, "bucket must be positive");
        ThroughputObserver { bucket, counts: BTreeMap::new() }
    }

    /// The series so far: `(bucket_end_seconds, txns_per_second)` pairs.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let bucket_secs = self.bucket.as_secs_f64();
        self.counts
            .iter()
            .map(|(idx, c)| (((idx + 1) as f64) * bucket_secs, *c as f64 / bucket_secs))
            .collect()
    }

    /// Total completed transactions observed.
    pub fn completed(&self) -> usize {
        self.counts.values().sum()
    }
}

impl RunObserver for ThroughputObserver {
    fn on_output(&mut self, output: &Output) {
        if let Output::TxCompleted { completed_at, .. } = output {
            let idx = completed_at.as_micros() / self.bucket.as_micros().max(1);
            *self.counts.entry(idx).or_insert(0) += 1;
        }
    }
}

/// Accumulates per-stage latency sums (the E2 breakdown) while the run executes.
#[derive(Clone, Debug, Default)]
pub struct StageBreakdownObserver {
    sums: [f64; 3],
    counts: [usize; 3],
}

impl StageBreakdownObserver {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average per-stage latency in milliseconds, in protocol order
    /// `[intra-cluster, inter-cluster, execution]`.
    pub fn breakdown(&self) -> [f64; 3] {
        let mut out = [0.0; 3];
        for i in 0..3 {
            out[i] = if self.counts[i] == 0 { 0.0 } else { self.sums[i] / self.counts[i] as f64 };
        }
        out
    }
}

impl RunObserver for StageBreakdownObserver {
    fn on_output(&mut self, output: &Output) {
        if let Output::StageCompleted { stage, started_at, completed_at, .. } = output {
            let idx = StageKind::ALL.iter().position(|s| s == stage).expect("known stage");
            self.sums[idx] += completed_at.since(*started_at).as_millis_f64();
            self.counts[idx] += 1;
        }
    }
}

/// Per-round commit/reconfiguration activity of one cluster (aggregated over its
/// replicas), collected by [`ReconfigTraceObserver`].
#[derive(Clone, Debug, Default)]
pub struct RoundTrace {
    /// Replicas that reported executing the round.
    pub executions: usize,
    /// Transactions the round carried (as reported by the first executor).
    pub txns: usize,
    /// Per-stage completion reports `[intra, inter, execution]` across replicas —
    /// shows exactly which stage a stalled round is stuck in.
    pub stage_completions: [usize; 3],
    /// Reconfigurations applied in the round, as `(replica, joined)` pairs
    /// (deduplicated across reporting replicas).
    pub reconfigs: Vec<(ReplicaId, bool)>,
    /// First time any replica executed the round.
    pub first_at: Option<Time>,
    /// Last time any replica executed the round.
    pub last_at: Option<Time>,
}

/// Collects a per-round reconfiguration/commit trace: which rounds executed, when,
/// with how many transactions, which reconfigurations they applied, and every
/// leader change — the mid-run visibility the E5.2 "single workflow completes 0
/// txns" diagnosis needed.
#[derive(Clone, Debug, Default)]
pub struct ReconfigTraceObserver {
    rounds: BTreeMap<(ClusterId, Round), RoundTrace>,
    leader_changes: Vec<(Time, ClusterId, ReplicaId)>,
    /// Leader installs already recorded, as `(cluster, leader, timestamp)` — every
    /// replica of a cluster reports the same install once, and reports from
    /// different clusters interleave.
    seen_changes: std::collections::BTreeSet<(ClusterId, ReplicaId, u64)>,
    scheduled: Vec<(Time, String)>,
}

impl ReconfigTraceObserver {
    /// A fresh trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-round traces, keyed by `(cluster, round)`.
    pub fn rounds(&self) -> &BTreeMap<(ClusterId, Round), RoundTrace> {
        &self.rounds
    }

    /// Leader changes seen so far, as `(at, cluster, new_leader)` — one entry per
    /// distinct `(cluster, leader, timestamp)` install, i.e. the first replica's
    /// report of each change.
    pub fn leader_changes(&self) -> &[(Time, ClusterId, ReplicaId)] {
        &self.leader_changes
    }

    /// Schedule events applied during the run, rendered for the trace.
    pub fn scheduled_events(&self) -> &[(Time, String)] {
        &self.scheduled
    }

    /// Render the trace as printable table rows:
    /// `[cluster, round, s1/s2/s3, executions, txns, reconfigs, first_at, last_at]`.
    pub fn trace_rows(&self) -> Vec<Vec<String>> {
        self.rounds
            .iter()
            .map(|((cluster, round), t)| {
                let recs = if t.reconfigs.is_empty() {
                    "-".to_string()
                } else {
                    t.reconfigs
                        .iter()
                        .map(|(r, joined)| format!("{r}{}", if *joined { "+" } else { "-" }))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let fmt_t =
                    |t: Option<Time>| t.map_or("-".into(), |t| format!("{:.1}", t.as_secs_f64()));
                vec![
                    cluster.0.to_string(),
                    round.0.to_string(),
                    format!(
                        "{}/{}/{}",
                        t.stage_completions[0], t.stage_completions[1], t.stage_completions[2]
                    ),
                    t.executions.to_string(),
                    t.txns.to_string(),
                    recs,
                    fmt_t(t.first_at),
                    fmt_t(t.last_at),
                ]
            })
            .collect()
    }
}

impl RunObserver for ReconfigTraceObserver {
    fn on_output(&mut self, output: &Output) {
        match output {
            Output::StageCompleted { cluster, round, stage, .. } => {
                let t = self.rounds.entry((*cluster, *round)).or_default();
                let idx = StageKind::ALL.iter().position(|s| s == stage).expect("known stage");
                t.stage_completions[idx] += 1;
            }
            Output::RoundExecuted { cluster, round, txns, at, .. } => {
                let t = self.rounds.entry((*cluster, *round)).or_default();
                t.executions += 1;
                if t.executions == 1 {
                    t.txns = *txns;
                }
                t.first_at = Some(t.first_at.map_or(*at, |f| f.min(*at)));
                t.last_at = Some(t.last_at.map_or(*at, |l| l.max(*at)));
            }
            Output::ReconfigApplied { replica, cluster, joined, round, .. } => {
                let t = self.rounds.entry((*cluster, *round)).or_default();
                if !t.reconfigs.contains(&(*replica, *joined)) {
                    t.reconfigs.push((*replica, *joined));
                }
            }
            Output::LeaderChanged { cluster, new_leader, timestamp, at, .. } => {
                if self.seen_changes.insert((*cluster, *new_leader, *timestamp)) {
                    self.leader_changes.push((*at, *cluster, *new_leader));
                }
            }
            _ => {}
        }
    }

    fn on_event(&mut self, at: Time, event: &ScenarioEvent) {
        self.scheduled.push((at, format!("{event:?}")));
    }
}

/// One replica's crash-recovery trajectory, collected by [`RecoveryObserver`].
#[derive(Clone, Debug)]
pub struct RecoveryTrace {
    /// When the replica restarted.
    pub restarted_at: Time,
    /// The round its durable store recovered to locally.
    pub recovered_round: Round,
    /// Rounds replayed from the local round log.
    pub log_rounds_replayed: u64,
    /// When catch-up completed (None = still catching up at run end).
    pub completed_at: Option<Time>,
    /// The round the replica rejoined at.
    pub caught_up_round: Option<Round>,
    /// Rounds obtained from peers (checkpoint gap + transferred log suffix).
    pub rounds_transferred: u64,
    /// Bytes of checkpoint + log-suffix payload adopted from peers.
    pub bytes_transferred: u64,
}

impl RecoveryTrace {
    /// Time from restart to caught-up, if the recovery completed.
    pub fn time_to_caught_up(&self) -> Option<Duration> {
        self.completed_at.map(|done| done.since(self.restarted_at))
    }
}

/// Collects crash-recovery probes: per restarted replica, the time-to-caught-up,
/// the rounds transferred and the bytes transferred (the `e10_recovery` series).
/// A replica that restarts more than once keeps the latest trajectory.
#[derive(Clone, Debug, Default)]
pub struct RecoveryObserver {
    traces: BTreeMap<ReplicaId, RecoveryTrace>,
}

impl RecoveryObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recovery trajectories seen so far, keyed by replica.
    pub fn traces(&self) -> &BTreeMap<ReplicaId, RecoveryTrace> {
        &self.traces
    }

    /// Whether every observed restart completed its catch-up.
    pub fn all_caught_up(&self) -> bool {
        !self.traces.is_empty() && self.traces.values().all(|t| t.completed_at.is_some())
    }

    /// The slowest time-to-caught-up across replicas (None until every observed
    /// restart completed).
    pub fn max_time_to_caught_up(&self) -> Option<Duration> {
        if !self.all_caught_up() {
            return None;
        }
        self.traces.values().filter_map(RecoveryTrace::time_to_caught_up).max()
    }

    /// Total rounds transferred from peers across all recoveries.
    pub fn total_rounds_transferred(&self) -> u64 {
        self.traces.values().map(|t| t.rounds_transferred).sum()
    }

    /// Total bytes transferred from peers across all recoveries.
    pub fn total_bytes_transferred(&self) -> u64 {
        self.traces.values().map(|t| t.bytes_transferred).sum()
    }
}

impl RunObserver for RecoveryObserver {
    fn on_output(&mut self, output: &Output) {
        match output {
            Output::ReplicaRestarted {
                replica, recovered_round, log_rounds_replayed, at, ..
            } => {
                self.traces.insert(
                    *replica,
                    RecoveryTrace {
                        restarted_at: *at,
                        recovered_round: *recovered_round,
                        log_rounds_replayed: *log_rounds_replayed,
                        completed_at: None,
                        caught_up_round: None,
                        rounds_transferred: 0,
                        bytes_transferred: 0,
                    },
                );
            }
            Output::RecoveryCompleted {
                replica,
                round,
                rounds_transferred,
                bytes_transferred,
                at,
                ..
            } => {
                if let Some(trace) = self.traces.get_mut(replica) {
                    if trace.completed_at.is_none() {
                        trace.completed_at = Some(*at);
                        trace.caught_up_round = Some(*round);
                        trace.rounds_transferred = *rounds_transferred;
                        trace.bytes_transferred = *bytes_transferred;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Aggregated broker-tier health of one broker, collected by
/// [`BrokerStatsObserver`].
#[derive(Clone, Debug, Default)]
pub struct BrokerTrace {
    /// Batches the broker flushed.
    pub flushes: u64,
    /// Operations across all flushed batches.
    pub ops: u64,
    /// Largest queue depth observed at a flush.
    pub max_queue: usize,
    /// Largest in-flight count observed at a flush.
    pub max_inflight: usize,
    /// Operations shed by the end of the run (monotonic counter's last value).
    pub shed: u64,
}

impl BrokerTrace {
    /// Mean operations per flushed batch (batch occupancy).
    pub fn mean_occupancy(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.ops as f64 / self.flushes as f64
        }
    }
}

/// Collects broker-tier health while the run executes: per-broker batch
/// occupancy, queue depth, in-flight high-water marks and shed counts, plus
/// the batch-commit total — the series the E11 saturation sweep reports.
#[derive(Clone, Debug, Default)]
pub struct BrokerStatsObserver {
    traces: BTreeMap<ReplicaId, BrokerTrace>,
    batch_ops_committed: u64,
}

impl BrokerStatsObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-broker traces seen so far.
    pub fn traces(&self) -> &BTreeMap<ReplicaId, BrokerTrace> {
        &self.traces
    }

    /// Operations that committed via the batch path across all replicas
    /// (each op counted once, by the replica that admitted its batch).
    pub fn batch_ops_committed(&self) -> u64 {
        self.batch_ops_committed
    }

    /// Total operations shed across brokers.
    pub fn total_shed(&self) -> u64 {
        self.traces.values().map(|t| t.shed).sum()
    }

    /// Mean batch occupancy across all flushes of all brokers.
    pub fn mean_occupancy(&self) -> f64 {
        let (flushes, ops) =
            self.traces.values().fold((0u64, 0u64), |(f, o), t| (f + t.flushes, o + t.ops));
        if flushes == 0 {
            0.0
        } else {
            ops as f64 / flushes as f64
        }
    }
}

impl RunObserver for BrokerStatsObserver {
    fn on_output(&mut self, output: &Output) {
        match output {
            Output::BrokerFlushed { broker, ops, queue, inflight, shed_total, .. } => {
                let t = self.traces.entry(*broker).or_default();
                t.flushes += 1;
                t.ops += *ops as u64;
                t.max_queue = t.max_queue.max(*queue);
                t.max_inflight = t.max_inflight.max(*inflight);
                t.shed = t.shed.max(*shed_total);
            }
            Output::BatchOpCommitted { .. } => {
                self.batch_ops_committed += 1;
            }
            _ => {}
        }
    }
}

/// Collects Byzantine-evidence outputs while the run executes: how many forged or
/// stale artifacts honest replicas rejected (by [`RejectKind`]), how many
/// equivocations they exposed, and which `Corrupt` events the schedule applied —
/// the per-behavior evidence series the `e12_byzantine` sweep reports.
#[derive(Clone, Debug, Default)]
pub struct ByzantineObserver {
    rejections: BTreeMap<RejectKind, u64>,
    equivocations: u64,
    corrupt_events: Vec<(Time, ReplicaId)>,
}

impl ByzantineObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total rejected-artifact evidence events across all kinds.
    pub fn total_rejections(&self) -> u64 {
        self.rejections.values().sum()
    }

    /// Rejected-artifact evidence events of one kind.
    pub fn rejections_of(&self, kind: RejectKind) -> u64 {
        self.rejections.get(&kind).copied().unwrap_or(0)
    }

    /// Equivocation-evidence events (same slot, conflicting package contents).
    pub fn equivocations(&self) -> u64 {
        self.equivocations
    }

    /// The `Corrupt` schedule events applied during the run, in application
    /// order, as `(at, replica)` pairs.
    pub fn corrupt_events(&self) -> &[(Time, ReplicaId)] {
        &self.corrupt_events
    }

    /// Whether any Byzantine evidence (rejection or equivocation) was recorded.
    pub fn any_evidence(&self) -> bool {
        self.equivocations > 0 || self.total_rejections() > 0
    }
}

impl RunObserver for ByzantineObserver {
    fn on_output(&mut self, output: &Output) {
        match output {
            Output::ByzantineRejected { kind, .. } => {
                *self.rejections.entry(*kind).or_insert(0) += 1;
            }
            Output::EquivocationObserved { .. } => {
                self.equivocations += 1;
            }
            _ => {}
        }
    }

    fn on_event(&mut self, at: Time, event: &ScenarioEvent) {
        if let ScenarioEvent::Corrupt { replica, .. } = event {
            self.corrupt_events.push((at, *replica));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{ClientId, TxId};

    fn tx(completed_ms: u64) -> Output {
        Output::TxCompleted {
            tx: TxId { client: ClientId(0), seq: completed_ms },
            client: ClientId(0),
            cluster: ClusterId(0),
            issued_at: Time::ZERO,
            completed_at: Time::from_millis(completed_ms),
            is_write: true,
        }
    }

    #[test]
    fn throughput_observer_matches_posthoc_bucketing() {
        let mut obs = ThroughputObserver::new(Duration::from_secs(1));
        for o in [tx(500), tx(600), tx(1500)] {
            obs.on_output(&o);
        }
        assert_eq!(obs.series(), vec![(1.0, 2.0), (2.0, 1.0)]);
        assert_eq!(obs.completed(), 3);
    }

    #[test]
    fn stage_observer_averages_per_stage() {
        let stage = |kind, start, end| Output::StageCompleted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            round: Round(1),
            stage: kind,
            started_at: Time::from_millis(start),
            completed_at: Time::from_millis(end),
        };
        let mut obs = StageBreakdownObserver::new();
        for o in [
            stage(StageKind::IntraCluster, 0, 100),
            stage(StageKind::IntraCluster, 0, 300),
            stage(StageKind::InterCluster, 100, 150),
        ] {
            obs.on_output(&o);
        }
        let b = obs.breakdown();
        assert!((b[0] - 200.0).abs() < 1e-9);
        assert!((b[1] - 50.0).abs() < 1e-9);
        assert_eq!(b[2], 0.0);
    }

    #[test]
    fn recovery_observer_tracks_restart_to_caught_up() {
        let mut obs = RecoveryObserver::new();
        obs.on_output(&Output::ReplicaRestarted {
            replica: ReplicaId(3),
            cluster: ClusterId(0),
            recovered_round: Round(9),
            log_rounds_replayed: 1,
            at: Time::from_secs(4),
        });
        assert!(!obs.all_caught_up());
        obs.on_output(&Output::RecoveryCompleted {
            replica: ReplicaId(3),
            cluster: ClusterId(0),
            round: Round(14),
            rounds_transferred: 5,
            bytes_transferred: 10_000,
            at: Time::from_secs(6),
        });
        assert!(obs.all_caught_up());
        assert_eq!(obs.max_time_to_caught_up(), Some(Duration::from_secs(2)));
        assert_eq!(obs.total_rounds_transferred(), 5);
        assert_eq!(obs.total_bytes_transferred(), 10_000);
        let trace = &obs.traces()[&ReplicaId(3)];
        assert_eq!(trace.caught_up_round, Some(Round(14)));
        assert_eq!(trace.log_rounds_replayed, 1);
    }

    #[test]
    fn broker_stats_observer_aggregates_flushes_and_commits() {
        let mut obs = BrokerStatsObserver::new();
        let flush = |ops, queue, inflight, shed_total| Output::BrokerFlushed {
            broker: ReplicaId(2_000_000),
            cluster: ClusterId(0),
            ops,
            queue,
            inflight,
            shed_total,
            at: Time::from_millis(5),
        };
        obs.on_output(&flush(100, 40, 2, 0));
        obs.on_output(&flush(60, 10, 1, 7));
        obs.on_output(&Output::BatchOpCommitted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            broker: ReplicaId(2_000_000),
            batch: 0,
            tx: TxId { client: ClientId(10_000_000), seq: 0 },
            at: Time::from_millis(9),
        });
        let t = &obs.traces()[&ReplicaId(2_000_000)];
        assert_eq!(t.flushes, 2);
        assert_eq!(t.max_queue, 40);
        assert_eq!(t.max_inflight, 2);
        assert_eq!(t.shed, 7);
        assert!((t.mean_occupancy() - 80.0).abs() < 1e-9);
        assert!((obs.mean_occupancy() - 80.0).abs() < 1e-9);
        assert_eq!(obs.batch_ops_committed(), 1);
        assert_eq!(obs.total_shed(), 7);
    }

    #[test]
    fn byzantine_observer_tallies_evidence_by_kind() {
        use ava_hamava::ByzantineBehavior;
        let mut obs = ByzantineObserver::new();
        assert!(!obs.any_evidence());
        let reject = |kind| Output::ByzantineRejected {
            replica: ReplicaId(2),
            cluster: ClusterId(0),
            round: Round(4),
            kind,
            at: Time::from_secs(3),
        };
        obs.on_output(&reject(RejectKind::PackageCert));
        obs.on_output(&reject(RejectKind::PackageCert));
        obs.on_output(&reject(RejectKind::BrdSignature));
        obs.on_output(&Output::EquivocationObserved {
            replica: ReplicaId(5),
            cluster: ClusterId(1),
            round: Round(4),
            first: [1; 32],
            second: [2; 32],
            at: Time::from_secs(3),
        });
        obs.on_event(
            Time::from_secs(2),
            &ScenarioEvent::Corrupt {
                replica: ReplicaId(0),
                behavior: ByzantineBehavior::EquivocateLocal,
            },
        );
        assert_eq!(obs.total_rejections(), 3);
        assert_eq!(obs.rejections_of(RejectKind::PackageCert), 2);
        assert_eq!(obs.rejections_of(RejectKind::CatchUpCheckpoint), 0);
        assert_eq!(obs.equivocations(), 1);
        assert_eq!(obs.corrupt_events(), &[(Time::from_secs(2), ReplicaId(0))]);
        assert!(obs.any_evidence());
    }

    #[test]
    fn reconfig_trace_collects_rounds_and_reconfigs() {
        let mut obs = ReconfigTraceObserver::new();
        obs.on_output(&Output::RoundExecuted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            round: Round(3),
            txns: 20,
            at: Time::from_secs(2),
        });
        obs.on_output(&Output::ReconfigApplied {
            replica: ReplicaId(9),
            cluster: ClusterId(0),
            joined: true,
            round: Round(3),
            at: Time::from_secs(2),
            reporter: ReplicaId(0),
        });
        obs.on_event(Time::from_secs(1), &ScenarioEvent::Leave { replica: ReplicaId(2) });
        let rows = obs.trace_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], "3");
        assert_eq!(rows[0][4], "20");
        assert!(rows[0][5].contains("9+"));
        assert_eq!(obs.scheduled_events().len(), 1);
    }
}
