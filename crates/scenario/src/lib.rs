//! # ava-scenario
//!
//! The declarative scenario API of the Hamava reproduction: experiments describe
//! *what* happens — a protocol, a cluster layout, a time-sorted schedule of typed
//! events, probes observing the run — and one runner executes it. This replaces the
//! hand-wired experiment plumbing (per-protocol `match` arms over concrete
//! deployment types, trait-bound-laden free functions for fault and churn
//! injection) that every new workload used to copy-paste.
//!
//! Three pillars:
//!
//! * [`Protocol`] + [`DynDeployment`] — an object-safe deployment erasing the
//!   total-order-broadcast generic. `Protocol::deploy` is the single place a
//!   protocol label becomes a concrete stack, so a label can never silently run
//!   another protocol's deployment.
//! * [`Scenario`] / [`ScenarioBuilder`] — a fluent builder holding the
//!   [`ava_types::SystemConfig`], the
//!   [`ava_hamava::harness::DeploymentOptions`], and a [`Schedule`] of
//!   [`ScenarioEvent`]s: crashes, Byzantine muting, joins/leaves, client joins,
//!   workload switches, inter-cluster partitions/heals and latency-model shifts.
//! * [`RunObserver`] — probes the runner invokes at configurable virtual-time
//!   ticks, on every applied event, and on every [`ava_types::Output`] in emission
//!   order, so time series and traces are collected mid-run.
//!
//! ## Example
//!
//! ```
//! use ava_scenario::{Protocol, Scenario, ThroughputObserver};
//! use ava_types::{ClusterId, Duration, Region, SystemConfig, Time};
//!
//! let config = SystemConfig::homogeneous_regions(&[
//!     (4, Region::UsWest),
//!     (4, Region::Europe),
//! ]);
//! let mut throughput = ThroughputObserver::new(Duration::from_secs(2));
//! let run = Scenario::builder(Protocol::AvaHotStuff, config)
//!     .seed(42)
//!     .run_for(Duration::from_secs(12))
//!     .crash_initial_leader_at(Time::from_secs(6), ClusterId(1))
//!     .build()
//!     .run_observed(&mut [&mut throughput]);
//! assert!(run.outputs.len() > 0);
//! assert!(throughput.completed() > 0);
//! ```
//!
//! Runs are deterministic: a scenario with the same seed, schedule and
//! configuration produces a byte-identical `Output` stream, and a schedule is
//! executed in canonical `(time, event)` order regardless of how it was assembled.

pub mod deployment;
pub mod observer;
pub mod parallel;
#[allow(clippy::module_inception)]
pub mod scenario;

pub use ava_broker::{AttachedTier, BrokerTier};
pub use ava_hamava::ByzantineBehavior;
pub use deployment::{DynDeployment, Protocol};
pub use observer::{
    BrokerStatsObserver, BrokerTrace, ByzantineObserver, ReconfigTraceObserver, RecoveryObserver,
    RecoveryTrace, RoundTrace, RunObserver, StageBreakdownObserver, ThroughputObserver,
};
pub use parallel::{default_jobs, thread_cpu_time, RunPool, RunTiming};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioEvent, ScenarioRun, Schedule};
