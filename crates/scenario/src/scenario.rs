//! Declarative scenarios: a system configuration, a time-sorted schedule of typed
//! events, and observers tapping the run as it executes.

use crate::deployment::{DynDeployment, Protocol};
use crate::observer::RunObserver;
use ava_broker::BrokerTier;
use ava_hamava::harness::DeploymentOptions;
use ava_hamava::ByzantineBehavior;
use ava_simnet::{LatencyModel, NetStats};
use ava_types::{ClientId, ClusterId, Duration, Output, Region, ReplicaId, SystemConfig, Time};
use ava_workload::WorkloadSpec;

/// A typed event injected into a running deployment at a scheduled virtual time.
#[derive(Clone, Debug)]
pub enum ScenarioEvent {
    /// Crash a replica (it stops receiving messages and firing timers).
    Crash {
        /// The replica to crash.
        replica: ReplicaId,
    },
    /// Restart a previously crashed replica: it comes back with only its persisted
    /// store and catches up via checkpoint + log-suffix state transfer. The
    /// schedule must hold an earlier `Crash` of the same replica.
    Restart {
        /// The replica to restart.
        replica: ReplicaId,
    },
    /// Turn a replica Byzantine in the E4.3 sense: correct locally, but it
    /// withholds all inter-cluster messages.
    MuteInterCluster {
        /// The replica to mute.
        replica: ReplicaId,
    },
    /// Make a replica silent in its local ordering role when it is the leader.
    SilenceLocalLeader {
        /// The replica to silence.
        replica: ReplicaId,
    },
    /// A new replica joins a cluster (E5-style churn).
    Join {
        /// The cluster joined.
        cluster: ClusterId,
        /// The region the new replica is placed in.
        region: Region,
    },
    /// An existing replica requests to leave its cluster.
    Leave {
        /// The leaving replica.
        replica: ReplicaId,
    },
    /// A new closed-loop client joins a cluster.
    ClientJoin {
        /// The cluster the client targets.
        cluster: ClusterId,
        /// The client's workload.
        workload: WorkloadSpec,
    },
    /// Every client of a cluster switches to a new workload mid-run.
    WorkloadSwitch {
        /// The cluster whose clients switch.
        cluster: ClusterId,
        /// The workload they switch to.
        workload: WorkloadSpec,
    },
    /// Sever all traffic between two clusters (both directions).
    Partition {
        /// One side of the partition.
        a: ClusterId,
        /// The other side.
        b: ClusterId,
    },
    /// Remove a previously installed partition.
    Heal {
        /// One side of the healed pair.
        a: ClusterId,
        /// The other side.
        b: ClusterId,
    },
    /// Replace the network latency model for all traffic sent from this point on.
    LatencyShift {
        /// The new latency model.
        latency: LatencyModel,
    },
    /// Turn a replica Byzantine with a concrete adversarial behavior: from this
    /// point on it runs the honest protocol internally but mutates its outbound
    /// traffic (equivocation, certificate forgery, share suppression, lying
    /// catch-up — see [`ByzantineBehavior`]). The builder rejects schedules that
    /// corrupt more than `f` distinct replicas in any one cluster.
    Corrupt {
        /// The replica to corrupt.
        replica: ReplicaId,
        /// The adversarial behavior it adopts.
        behavior: ByzantineBehavior,
    },
}

impl ScenarioEvent {
    /// Whether the event changes cluster membership (invalid for protocols without
    /// a reconfiguration path, i.e. the GeoBFT baseline).
    pub fn is_reconfig(&self) -> bool {
        matches!(self, ScenarioEvent::Join { .. } | ScenarioEvent::Leave { .. })
    }

    /// Short kind label (`"crash"`, `"partition"`, …) for reports and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioEvent::Crash { .. } => "crash",
            ScenarioEvent::Restart { .. } => "restart",
            ScenarioEvent::MuteInterCluster { .. } => "mute",
            ScenarioEvent::SilenceLocalLeader { .. } => "silence",
            ScenarioEvent::Join { .. } => "join",
            ScenarioEvent::Leave { .. } => "leave",
            ScenarioEvent::ClientJoin { .. } => "client-join",
            ScenarioEvent::WorkloadSwitch { .. } => "workload-switch",
            ScenarioEvent::Partition { .. } => "partition",
            ScenarioEvent::Heal { .. } => "heal",
            ScenarioEvent::LatencyShift { .. } => "latency-shift",
            ScenarioEvent::Corrupt { .. } => "corrupt",
        }
    }

    /// Canonical within-timestamp ordering key. Two schedules holding the same
    /// `(time, event)` multiset sort identically regardless of insertion order, so
    /// scenario runs are insensitive to how the schedule was assembled (events with
    /// equal keys — e.g. two `LatencyShift`s at the same instant — keep insertion
    /// order; don't schedule those if you care which wins).
    fn sort_key(&self) -> (u8, u64, u64) {
        match self {
            ScenarioEvent::Crash { replica } => (0, replica.0 as u64, 0),
            ScenarioEvent::MuteInterCluster { replica } => (1, replica.0 as u64, 0),
            ScenarioEvent::SilenceLocalLeader { replica } => (2, replica.0 as u64, 0),
            ScenarioEvent::Join { cluster, region } => (3, cluster.0 as u64, region.index() as u64),
            ScenarioEvent::Leave { replica } => (4, replica.0 as u64, 0),
            ScenarioEvent::ClientJoin { cluster, .. } => (5, cluster.0 as u64, 0),
            ScenarioEvent::WorkloadSwitch { cluster, .. } => (6, cluster.0 as u64, 0),
            ScenarioEvent::Partition { a, b } => (7, a.0.min(b.0) as u64, a.0.max(b.0) as u64),
            ScenarioEvent::Heal { a, b } => (8, a.0.min(b.0) as u64, a.0.max(b.0) as u64),
            ScenarioEvent::LatencyShift { .. } => (9, 0, 0),
            // Appended after the original keys so pre-existing schedules keep
            // their canonical order bit-for-bit.
            ScenarioEvent::Restart { replica } => (10, replica.0 as u64, 0),
            ScenarioEvent::Corrupt { replica, behavior } => {
                (11, replica.0 as u64, behavior.to_tag())
            }
        }
    }
}

/// A time-sorted multiset of scheduled events.
///
/// Events are kept in canonical order — `(time, event kind, event ids)` — so any
/// insertion order of the same events produces the same run. The canonical key
/// does **not** include event payloads: two events at the same instant with the
/// same kind and ids but different payloads (e.g. two `WorkloadSwitch`es for one
/// cluster, or two `LatencyShift`s) keep insertion order, so don't schedule
/// those if you care which wins.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    entries: Vec<(Time, ScenarioEvent)>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Add `event` at virtual time `at`.
    pub fn add(&mut self, at: Time, event: ScenarioEvent) {
        self.entries.push((at, event));
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled events in canonical execution order.
    pub fn sorted(&self) -> Vec<(Time, ScenarioEvent)> {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|(at, ev)| (*at, ev.sort_key()));
        entries
    }

    /// The scheduled events in insertion order (use [`Schedule::sorted`] for the
    /// canonical execution order).
    pub fn iter(&self) -> impl Iterator<Item = &(Time, ScenarioEvent)> {
        self.entries.iter()
    }

    /// The latest scheduled time, if any.
    pub fn last_time(&self) -> Option<Time> {
        self.entries.iter().map(|(at, _)| *at).max()
    }
}

/// Fluent constructor for [`Scenario`]s. Obtain one via [`Scenario::builder`].
pub struct ScenarioBuilder {
    protocol: Protocol,
    config: SystemConfig,
    opts: DeploymentOptions,
    schedule: Schedule,
    run: Duration,
    tick: Option<Duration>,
    brokers: Option<BrokerTier>,
}

impl ScenarioBuilder {
    /// Replace the deployment options wholesale.
    pub fn options(mut self, opts: DeploymentOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the RNG seed (runs with the same seed are identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Set the workload every initial client runs.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.opts.workload = workload;
        self
    }

    /// Set the initial latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.opts.latency = latency;
        self
    }

    /// Set the virtual run length (default: 10 s).
    pub fn run_for(mut self, run: Duration) -> Self {
        self.run = run;
        self
    }

    /// Invoke observers' `on_tick` every `tick` of virtual time (default: only at
    /// event boundaries and the end of the run).
    pub fn tick_every(mut self, tick: Duration) -> Self {
        assert!(tick > Duration::ZERO, "tick interval must be positive");
        self.tick = Some(tick);
        self
    }

    /// Deploy a broker/batch client tier on top of the configured system:
    /// per cluster, `tier.brokers_per_cluster` broker actors plus one
    /// aggregate virtual-client generator offering `tier.load` (see
    /// `ava_broker`). With no tier configured the deployment is untouched —
    /// runs are bit-identical to pre-broker builds (the determinism golden
    /// tests pin this).
    pub fn brokers(mut self, tier: BrokerTier) -> Self {
        self.brokers = Some(tier);
        self
    }

    /// Schedule `event` at virtual time `at`.
    pub fn at(mut self, at: Time, event: ScenarioEvent) -> Self {
        self.schedule.add(at, event);
        self
    }

    /// Merge every event of `schedule` into the builder's schedule (the entry
    /// point for programmatically generated schedules, e.g. the `ava-fuzz`
    /// `ScheduleGenerator`).
    pub fn events(mut self, schedule: &Schedule) -> Self {
        for (at, ev) in schedule.iter() {
            self.schedule.add(*at, ev.clone());
        }
        self
    }

    /// Schedule a crash of `replica` at `at`.
    pub fn crash_at(self, at: Time, replica: ReplicaId) -> Self {
        self.at(at, ScenarioEvent::Crash { replica })
    }

    /// Schedule a crash of `cluster`'s initial leader at `at`.
    pub fn crash_initial_leader_at(self, at: Time, cluster: ClusterId) -> Self {
        let leader = self.config.initial_leader(cluster);
        self.crash_at(at, leader)
    }

    /// Schedule a restart of the (crashed) `replica` at `at`. The builder rejects
    /// restarts without an earlier crash of the same replica at build time.
    pub fn restart_at(self, at: Time, replica: ReplicaId) -> Self {
        self.at(at, ScenarioEvent::Restart { replica })
    }

    /// Enable the durable store on every replica (round log + checkpoints every
    /// `store.checkpoint_interval` rounds) — the substrate crash→restart recovery
    /// catches up from.
    pub fn store(mut self, store: ava_store::StoreConfig) -> Self {
        self.opts.store = Some(store);
        self
    }

    /// Select the replicated state machine every replica executes against
    /// (default: the legacy counter machine, whose runs are bit-identical to
    /// pre-KV builds; `StateMachineKind::Kv` stores real versioned values and
    /// emits per-round `Output::StateDigest`).
    pub fn state_machine(mut self, kind: ava_hamava::StateMachineKind) -> Self {
        self.opts.state_machine = kind;
        self
    }

    /// Schedule `replica` to start withholding inter-cluster messages at `at`.
    pub fn mute_inter_cluster_at(self, at: Time, replica: ReplicaId) -> Self {
        self.at(at, ScenarioEvent::MuteInterCluster { replica })
    }

    /// Schedule a new replica to join `cluster` (placed in `region`) at `at`.
    pub fn join_at(self, at: Time, cluster: ClusterId, region: Region) -> Self {
        self.at(at, ScenarioEvent::Join { cluster, region })
    }

    /// Schedule `replica` to request leaving its cluster at `at`.
    pub fn leave_at(self, at: Time, replica: ReplicaId) -> Self {
        self.at(at, ScenarioEvent::Leave { replica })
    }

    /// Schedule a partition between clusters `a` and `b` at `at`.
    pub fn partition_at(self, at: Time, a: ClusterId, b: ClusterId) -> Self {
        self.at(at, ScenarioEvent::Partition { a, b })
    }

    /// Schedule the healing of the `a`/`b` partition at `at`.
    pub fn heal_at(self, at: Time, a: ClusterId, b: ClusterId) -> Self {
        self.at(at, ScenarioEvent::Heal { a, b })
    }

    /// Schedule a latency-model shift at `at`.
    pub fn latency_shift_at(self, at: Time, latency: LatencyModel) -> Self {
        self.at(at, ScenarioEvent::LatencyShift { latency })
    }

    /// Schedule `replica` to turn Byzantine with `behavior` at `at`. The builder
    /// rejects schedules that corrupt more than `f` distinct replicas in any one
    /// cluster — the adversary model every safety claim is stated under.
    pub fn corrupt_at(self, at: Time, replica: ReplicaId, behavior: ByzantineBehavior) -> Self {
        self.at(at, ScenarioEvent::Corrupt { replica, behavior })
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics when the schedule is invalid for the chosen protocol (reconfiguration
    /// events on GeoBFT) or when an event is scheduled past the end of the run.
    pub fn build(self) -> Scenario {
        match self.try_build() {
            Ok(scenario) => scenario,
            Err(reason) => panic!("{reason}"),
        }
    }

    /// Finish building, returning the validation failure instead of panicking —
    /// the entry point for generated schedules (the fuzzer's shrinker probes
    /// candidate schedules without aborting the process).
    pub fn try_build(self) -> Result<Scenario, String> {
        if !self.protocol.reconfigurable() {
            if let Some((at, ev)) = self.schedule.entries.iter().find(|(_, ev)| ev.is_reconfig()) {
                return Err(format!(
                    "{} has no reconfiguration path, but the schedule holds {ev:?} at {at}",
                    self.protocol
                ));
            }
        }
        let end = Time::ZERO + self.run;
        // `at == end` is rejected too: the runner would apply the event and then
        // stop immediately, so none of its effects could ever be processed.
        if let Some((at, ev)) = self.schedule.entries.iter().find(|(at, _)| *at >= end) {
            return Err(format!(
                "event {ev:?} scheduled at {at}, at or after the end of the run ({end})"
            ));
        }
        // A restart without a strictly earlier crash of the same replica would be
        // silently ignored by the simulator; reject it while the schedule is still
        // being assembled.
        for (at, ev) in &self.schedule.entries {
            let ScenarioEvent::Restart { replica } = ev else {
                continue;
            };
            let crashed_before = self.schedule.entries.iter().any(|(crash_at, e)| {
                matches!(e, ScenarioEvent::Crash { replica: r } if r == replica) && crash_at < at
            });
            if !crashed_before {
                return Err(format!(
                    "Restart of {replica} at {at} has no earlier Crash of the same replica"
                ));
            }
        }
        // The adversary model caps corruption at `f` distinct replicas per
        // cluster: with more, the safety checkers are meaningless (BFT makes no
        // guarantees past `f`), so such schedules are authoring errors.
        let membership = self.config.membership();
        let mut corrupted: std::collections::BTreeMap<
            ClusterId,
            std::collections::BTreeSet<ReplicaId>,
        > = std::collections::BTreeMap::new();
        for (at, ev) in &self.schedule.entries {
            let ScenarioEvent::Corrupt { replica, .. } = ev else {
                continue;
            };
            let Some(cluster) = membership.cluster_of(*replica) else {
                return Err(format!(
                    "Corrupt of {replica} at {at} targets a replica outside the initial configuration"
                ));
            };
            let set = corrupted.entry(cluster).or_default();
            set.insert(*replica);
            let f = membership.f(cluster);
            if set.len() > f {
                return Err(format!(
                    "schedule corrupts {} distinct replicas of {cluster}, above its failure \
                     threshold f={f}: safety is only claimed for at most f Byzantine replicas \
                     per cluster",
                    set.len()
                ));
            }
        }
        if let Some(tier) = &self.brokers {
            if tier.load.issue_for >= self.run {
                return Err(format!(
                    "broker tier issues load for {:?}, at or past the end of the run ({:?}): \
                     in-flight operations could never drain",
                    tier.load.issue_for, self.run
                ));
            }
        }
        Ok(Scenario {
            protocol: self.protocol,
            config: self.config,
            opts: self.opts,
            schedule: self.schedule,
            run: self.run,
            tick: self.tick,
            brokers: self.brokers,
        })
    }
}

/// A fully described experiment run: protocol, configuration, deployment options,
/// run length and event schedule.
///
/// ```
/// use ava_scenario::{Protocol, Scenario};
/// use ava_types::{ClusterId, Duration, Region, SystemConfig, Time};
///
/// let config = SystemConfig::heterogeneous(&[
///     vec![Region::UsWest; 4],
///     vec![Region::Europe; 7],
/// ]);
/// let run = Scenario::builder(Protocol::AvaHotStuff, config)
///     .seed(7)
///     .run_for(Duration::from_secs(5))
///     .partition_at(Time::from_secs(2), ClusterId(0), ClusterId(1))
///     .heal_at(Time::from_secs(3), ClusterId(0), ClusterId(1))
///     .build()
///     .run();
/// assert!(!run.outputs.is_empty());
/// ```
pub struct Scenario {
    protocol: Protocol,
    config: SystemConfig,
    opts: DeploymentOptions,
    schedule: Schedule,
    run: Duration,
    tick: Option<Duration>,
    brokers: Option<BrokerTier>,
}

impl Scenario {
    /// Start building a scenario for `protocol` on `config` with default options,
    /// an empty schedule and a 10 s run.
    pub fn builder(protocol: Protocol, config: SystemConfig) -> ScenarioBuilder {
        ScenarioBuilder {
            protocol,
            config,
            opts: DeploymentOptions::default(),
            schedule: Schedule::new(),
            run: Duration::from_secs(10),
            tick: None,
            brokers: None,
        }
    }

    /// The broker tier deployed on top of the system, if any.
    pub fn broker_tier(&self) -> Option<&BrokerTier> {
        self.brokers.as_ref()
    }

    /// The protocol the scenario deploys.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The scheduled events.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The virtual run length.
    pub fn run_length(&self) -> Duration {
        self.run
    }

    /// Execute the scenario with no observers.
    pub fn run(self) -> ScenarioRun {
        self.run_observed(&mut [])
    }

    /// Execute the scenario, invoking `observers` at every tick, on every applied
    /// event and on every [`Output`] (in emission order) as the run progresses.
    pub fn run_observed(self, observers: &mut [&mut dyn RunObserver]) -> ScenarioRun {
        let Scenario { protocol, config, opts, schedule, run, tick, brokers } = self;
        let mut dep = protocol.deploy(config, opts);
        if let Some(tier) = &brokers {
            dep.attach_brokers(tier);
        }
        for obs in observers.iter_mut() {
            obs.on_start(&*dep);
        }

        let end = Time::ZERO + run;
        let events = schedule.sorted();
        // Boundary times: every scheduled event time, plus the observer tick grid.
        // Between consecutive boundaries the simulator runs uninterrupted, so a
        // scenario with no events and no ticks is one plain `run_until(end)` —
        // bit-identical to driving the deployment by hand (the determinism golden
        // tests pin this).
        let mut boundaries: Vec<Time> = events.iter().map(|(at, _)| *at).collect();
        if let Some(tick) = tick {
            let mut t = Time::ZERO + tick;
            while t < end {
                boundaries.push(t);
                t += tick;
            }
        }
        boundaries.sort();
        boundaries.dedup();

        let mut joined = Vec::new();
        let mut client_ids = Vec::new();
        let mut cursor = 0usize;
        let mut next_event = 0usize;
        let tick_of = |t: Time| tick.is_some_and(|tk| t.as_micros() % tk.as_micros() == 0);
        for t in boundaries {
            dep.run_until(t);
            cursor = flush_outputs(&*dep, cursor, observers);
            if tick_of(t) {
                for obs in observers.iter_mut() {
                    obs.on_tick(t, &*dep);
                }
            }
            while let Some((at, event)) = events.get(next_event) {
                if *at != t {
                    break;
                }
                for obs in observers.iter_mut() {
                    obs.on_event(*at, event);
                }
                apply_event(&mut *dep, event, &mut joined, &mut client_ids);
                next_event += 1;
            }
        }
        dep.run_until(end);
        cursor = flush_outputs(&*dep, cursor, observers);
        let _ = cursor;
        for obs in observers.iter_mut() {
            obs.on_end(&*dep);
        }

        let outputs = dep.take_outputs();
        let stats = dep.net_stats().clone();
        ScenarioRun { protocol, outputs, stats, joined, clients: client_ids, deployment: dep }
    }
}

fn flush_outputs(
    dep: &dyn DynDeployment,
    cursor: usize,
    observers: &mut [&mut dyn RunObserver],
) -> usize {
    let outputs = dep.outputs();
    if !observers.is_empty() {
        for output in &outputs[cursor..] {
            for obs in observers.iter_mut() {
                obs.on_output(output);
            }
        }
    }
    outputs.len()
}

fn apply_event(
    dep: &mut dyn DynDeployment,
    event: &ScenarioEvent,
    joined: &mut Vec<ReplicaId>,
    clients: &mut Vec<ClientId>,
) {
    match event {
        ScenarioEvent::Crash { replica } => dep.crash_at(*replica, dep.now()),
        ScenarioEvent::Restart { replica } => dep.restart_at(*replica, dep.now()),
        ScenarioEvent::MuteInterCluster { replica } => dep.mute_inter_cluster(*replica),
        ScenarioEvent::SilenceLocalLeader { replica } => dep.silence_local_leader(*replica),
        ScenarioEvent::Join { cluster, region } => {
            joined.push(dep.add_joining_replica(*cluster, *region));
        }
        ScenarioEvent::Leave { replica } => dep.request_leave(*replica),
        ScenarioEvent::ClientJoin { cluster, workload } => {
            clients.push(dep.add_client(*cluster, workload.clone()));
        }
        ScenarioEvent::WorkloadSwitch { cluster, workload } => {
            dep.switch_workload(*cluster, workload.clone());
        }
        ScenarioEvent::Partition { a, b } => dep.partition(*a, *b),
        ScenarioEvent::Heal { a, b } => dep.heal(*a, *b),
        ScenarioEvent::LatencyShift { latency } => dep.set_latency(latency.clone()),
        ScenarioEvent::Corrupt { replica, behavior } => {
            dep.corrupt_at(*replica, dep.now(), *behavior);
        }
    }
}

/// The result of executing a [`Scenario`].
pub struct ScenarioRun {
    /// The protocol that ran.
    pub protocol: Protocol,
    /// Every measurement event the run emitted, in emission order.
    pub outputs: Vec<Output>,
    /// Network statistics of the whole run.
    pub stats: NetStats,
    /// Ids of the replicas created by `Join` events, in application order.
    pub joined: Vec<ReplicaId>,
    /// Ids of the clients created by `ClientJoin` events, in application order.
    pub clients: Vec<ClientId>,
    /// The deployment after the run (for post-hoc inspection).
    pub deployment: Box<dyn DynDeployment>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::Output;

    fn config() -> SystemConfig {
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        config
    }

    fn quick(protocol: Protocol) -> ScenarioBuilder {
        Scenario::builder(protocol, config())
            .seed(5)
            .workload(WorkloadSpec { key_space: 500, ..WorkloadSpec::default() })
            .run_for(Duration::from_secs(8))
    }

    #[test]
    fn plain_scenario_matches_hand_driven_deployment() {
        // The scenario runner with no events must be bit-identical to driving the
        // deployment directly (this is what keeps the golden fingerprints stable).
        let run = quick(Protocol::AvaHotStuff).build().run();
        let mut dep = Protocol::AvaHotStuff.deploy(
            config(),
            ava_hamava::harness::DeploymentOptions {
                seed: 5,
                workload: WorkloadSpec { key_space: 500, ..WorkloadSpec::default() },
                ..Default::default()
            },
        );
        dep.run_for(Duration::from_secs(8));
        assert_eq!(run.outputs, dep.take_outputs());
        assert_eq!(run.stats.total_messages(), dep.net_stats().total_messages());
    }

    #[test]
    fn schedule_sorts_canonically_and_reports_times() {
        let mut s = Schedule::new();
        s.add(Time::from_secs(4), ScenarioEvent::Leave { replica: ReplicaId(1) });
        s.add(Time::from_secs(2), ScenarioEvent::Crash { replica: ReplicaId(9) });
        s.add(
            Time::from_secs(4),
            ScenarioEvent::Join { cluster: ClusterId(0), region: Region::UsWest },
        );
        let sorted = s.sorted();
        assert_eq!(sorted[0].0, Time::from_secs(2));
        assert!(matches!(sorted[1].1, ScenarioEvent::Join { .. }), "Join sorts before Leave");
        assert_eq!(s.last_time(), Some(Time::from_secs(4)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn crash_event_stops_a_replica_mid_run() {
        // Crash f=1 non-leader replicas in cluster 0 at 3 s; progress continues.
        let run =
            quick(Protocol::AvaBftSmart).crash_at(Time::from_secs(3), ReplicaId(1)).build().run();
        let late = run
            .outputs
            .iter()
            .filter(|o| {
                matches!(o, Output::TxCompleted { completed_at, .. }
                    if completed_at.as_secs_f64() > 4.0)
            })
            .count();
        assert!(late > 0, "progress must continue with one crashed replica");
    }

    #[test]
    fn join_event_reports_the_new_replica_id() {
        let run = quick(Protocol::AvaHotStuff)
            .run_for(Duration::from_secs(20))
            .join_at(Time::from_secs(4), ClusterId(0), Region::UsWest)
            .build()
            .run();
        assert_eq!(run.joined.len(), 1);
        let new_id = run.joined[0];
        assert!(new_id.0 > 7, "joining replicas get fresh ids");
        assert!(
            run.outputs.iter().any(|o| matches!(o, Output::ReconfigApplied { replica, joined: true, .. } if *replica == new_id)),
            "the joining replica must be added to the configuration"
        );
    }

    #[test]
    #[should_panic(expected = "no reconfiguration path")]
    fn geobft_scenarios_reject_churn_at_build_time() {
        let _ = quick(Protocol::GeoBft)
            .join_at(Time::from_secs(2), ClusterId(0), Region::UsWest)
            .build();
    }

    #[test]
    #[should_panic(expected = "after the end of the run")]
    fn events_past_the_run_end_are_rejected() {
        let _ = quick(Protocol::AvaHotStuff).crash_at(Time::from_secs(99), ReplicaId(0)).build();
    }

    #[test]
    fn partition_and_heal_shape_cross_cluster_traffic() {
        // Partition the two clusters for the middle of the run; global traffic must
        // drop while the partition is active, and commits resume after the heal.
        // Short recovery timeouts: packages lost to the partition are only re-sent
        // once the remote-leader-change path fires.
        let mut config = config();
        config.params.remote_leader_timeout = Duration::from_secs(4);
        config.params.brd_timeout = Duration::from_secs(4);
        config.params.local_timeout = Duration::from_secs(4);
        let run = Scenario::builder(Protocol::AvaHotStuff, config)
            .seed(5)
            .workload(WorkloadSpec { key_space: 500, ..WorkloadSpec::default() })
            .run_for(Duration::from_secs(24))
            .partition_at(Time::from_secs(4), ClusterId(0), ClusterId(1))
            .heal_at(Time::from_secs(8), ClusterId(0), ClusterId(1))
            .build()
            .run();
        assert!(run.stats.dropped_messages > 0, "partition must drop cross-cluster traffic");
        let post_heal = run
            .outputs
            .iter()
            .filter(|o| {
                matches!(o, Output::TxCompleted { completed_at, is_write: true, .. }
                    if completed_at.as_secs_f64() > 9.0)
            })
            .count();
        assert!(post_heal > 0, "writes must complete after the heal");
    }

    #[test]
    fn workload_switch_changes_the_read_write_mix() {
        // 100%-read workload switched to write-only at 6 s: all completions before
        // the switch are reads, and writes appear after it. Both clusters switch —
        // a round only executes once *every* cluster finishes its stage 1, so a
        // cluster with no writes would stall write completion system-wide.
        let read_only = WorkloadSpec { read_ratio: 1.0, key_space: 500, ..WorkloadSpec::default() };
        let write_only = read_only.clone().write_only();
        let run = quick(Protocol::AvaHotStuff)
            .workload(read_only)
            .run_for(Duration::from_secs(16))
            .at(
                Time::from_secs(6),
                ScenarioEvent::WorkloadSwitch {
                    cluster: ClusterId(0),
                    workload: write_only.clone(),
                },
            )
            .at(
                Time::from_secs(6),
                ScenarioEvent::WorkloadSwitch { cluster: ClusterId(1), workload: write_only },
            )
            .build()
            .run();
        let writes_before = run
            .outputs
            .iter()
            .filter(|o| {
                matches!(o, Output::TxCompleted { is_write: true, completed_at, .. }
                    if completed_at.as_secs_f64() < 6.0)
            })
            .count();
        let writes_after = run
            .outputs
            .iter()
            .filter(|o| matches!(o, Output::TxCompleted { is_write: true, .. }))
            .count();
        assert_eq!(writes_before, 0, "read-only phase must not complete writes");
        assert!(writes_after > 0, "switched clusters must start writing");
    }

    #[test]
    fn broker_tier_runs_through_the_scenario_api() {
        use crate::observer::BrokerStatsObserver;
        let tier = BrokerTier {
            load: ava_broker::AggregateLoad {
                virtual_clients: 10_000,
                offered_tps: 1_000,
                issue_for: Duration::from_secs(2),
                ..Default::default()
            },
            ..BrokerTier::default()
        };
        let mut stats = BrokerStatsObserver::new();
        let run =
            quick(Protocol::AvaHotStuff).brokers(tier).build().run_observed(&mut [&mut stats]);
        assert!(stats.traces().len() == 2, "one broker per cluster");
        assert!(stats.mean_occupancy() > 1.0, "batches must aggregate multiple ops");
        assert!(stats.batch_ops_committed() > 0, "writes must commit via the batch path");
        let virtual_acks = run
            .outputs
            .iter()
            .filter(|o| {
                matches!(o, Output::TxCompleted { client, .. }
                    if ava_workload::is_virtual_client(*client))
            })
            .count();
        assert!(virtual_acks > 1_000, "only {virtual_acks} virtual-client acks");
    }

    #[test]
    #[should_panic(expected = "could never drain")]
    fn broker_issue_windows_past_the_run_are_rejected() {
        let tier = BrokerTier {
            load: ava_broker::AggregateLoad {
                issue_for: Duration::from_secs(30),
                ..Default::default()
            },
            ..BrokerTier::default()
        };
        let _ = quick(Protocol::AvaHotStuff).brokers(tier).build();
    }

    #[test]
    #[should_panic(expected = "above its failure threshold")]
    fn corrupting_more_than_f_replicas_per_cluster_is_rejected() {
        // 4-replica clusters have f = 1: a second distinct corrupt target in the
        // same cluster exceeds the adversary model, whatever the behaviors are.
        let _ = quick(Protocol::AvaHotStuff)
            .corrupt_at(Time::from_secs(2), ReplicaId(1), ByzantineBehavior::EquivocateLocal)
            .corrupt_at(
                Time::from_secs(3),
                ReplicaId(2),
                ByzantineBehavior::SuppressShares { permille: 500 },
            )
            .build();
    }

    #[test]
    fn corrupting_the_same_replica_twice_stays_within_the_model() {
        // Re-corrupting one replica (e.g. escalating its behavior) is one faulty
        // node, not two; and a second corrupt replica in the *other* cluster is
        // fine — the bound is per cluster.
        let scenario = quick(Protocol::AvaHotStuff)
            .corrupt_at(Time::from_secs(2), ReplicaId(1), ByzantineBehavior::EquivocateLocal)
            .corrupt_at(Time::from_secs(3), ReplicaId(1), ByzantineBehavior::InvalidCert)
            .corrupt_at(Time::from_secs(3), ReplicaId(5), ByzantineBehavior::BrdForgery)
            .build();
        assert_eq!(scenario.schedule().len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside the initial configuration")]
    fn corrupting_an_unknown_replica_is_rejected() {
        let _ = quick(Protocol::AvaHotStuff)
            .corrupt_at(Time::from_secs(2), ReplicaId(99), ByzantineBehavior::InvalidCert)
            .build();
    }

    #[test]
    fn corrupt_event_yields_rejection_evidence_but_no_safety_loss() {
        // A non-leader replica starts forging BRD vote payloads at 2 s: honest
        // peers must reject the forged signatures (evidence appears) while the
        // remaining honest quorum keeps the system live.
        use crate::observer::ByzantineObserver;
        let mut obs = ByzantineObserver::new();
        let run = quick(Protocol::AvaHotStuff)
            .run_for(Duration::from_secs(10))
            .corrupt_at(Time::from_secs(2), ReplicaId(1), ByzantineBehavior::BrdForgery)
            .build()
            .run_observed(&mut [&mut obs]);
        assert_eq!(obs.corrupt_events().len(), 1);
        assert!(
            obs.rejections_of(ava_types::RejectKind::BrdSignature) > 0,
            "honest replicas must reject forged BRD votes"
        );
        assert!(
            run.outputs.iter().any(|o| matches!(o, Output::TxCompleted { completed_at, .. }
                if completed_at.as_secs_f64() > 3.0)),
            "an f-bounded adversary must not halt the system"
        );
    }

    #[test]
    fn client_join_adds_load_mid_run() {
        let run = quick(Protocol::AvaHotStuff)
            .at(
                Time::from_secs(2),
                ScenarioEvent::ClientJoin {
                    cluster: ClusterId(1),
                    workload: WorkloadSpec { key_space: 500, ..WorkloadSpec::default() },
                },
            )
            .build()
            .run();
        assert_eq!(run.clients.len(), 1);
        let new_client = run.clients[0];
        assert!(
            run.outputs
                .iter()
                .any(|o| matches!(o, Output::TxCompleted { client, .. } if *client == new_client)),
            "the joined client must complete transactions"
        );
    }
}
