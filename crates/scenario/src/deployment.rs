//! Protocol-erased deployments.
//!
//! [`DynDeployment`] is the object-safe face of [`ava_hamava::harness::Deployment`]:
//! it erases the total-order-broadcast generic so that one call site can drive
//! AVA-HOTSTUFF, AVA-BFTSMART and the GeoBFT baseline interchangeably. Every
//! deployment is built through [`Protocol::deploy`], which is the single place in
//! the workspace where a protocol label is mapped to a concrete deployment — the
//! per-protocol `match` arms that used to be copy-pasted through the experiment
//! harness are unrepresentable on top of this API.

use ava_broker::{AttachedTier, BrokerTier};
use ava_consensus::{TotalOrderBroadcast, WireSize};
use ava_hamava::harness::{bftsmart_factory, hotstuff_factory, Deployment, DeploymentOptions};
use ava_hamava::{AvaMsg, ByzantineBehavior};
use ava_simnet::{LatencyModel, NetStats, SimMessage};
use ava_types::{ClientId, ClusterId, Duration, Output, Region, ReplicaId, SystemConfig, Time};
use ava_workload::WorkloadSpec;

/// Which replicated system to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// Hamava instantiated with HotStuff (A.H).
    AvaHotStuff,
    /// Hamava instantiated with BFT-SMaRt (A.B).
    AvaBftSmart,
    /// The GeoBFT-style baseline (fixed membership).
    GeoBft,
}

impl Protocol {
    /// Every protocol, in table order.
    pub const ALL: [Protocol; 3] = [Protocol::AvaHotStuff, Protocol::AvaBftSmart, Protocol::GeoBft];

    /// The two Hamava instantiations the paper evaluates head to head (most
    /// experiments sweep exactly these).
    pub const AVA: [Protocol; 2] = [Protocol::AvaHotStuff, Protocol::AvaBftSmart];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::AvaHotStuff => "A.H",
            Protocol::AvaBftSmart => "A.B",
            Protocol::GeoBft => "GeoBFT",
        }
    }

    /// Whether the protocol supports membership reconfiguration. GeoBFT does not —
    /// that is the capability gap experiment E6 highlights — and deployments built
    /// for it reject join/leave events instead of silently misbehaving.
    pub fn reconfigurable(self) -> bool {
        !matches!(self, Protocol::GeoBft)
    }

    /// Build a simulated deployment of this protocol.
    ///
    /// This is the only place where a [`Protocol`] label is turned into a concrete
    /// deployment, so a label can never run another protocol's stack (the silent
    /// `AvaBftSmart | GeoBft` fallthrough the old experiment harness had is
    /// unrepresentable).
    pub fn deploy(self, config: SystemConfig, opts: DeploymentOptions) -> Box<dyn DynDeployment> {
        match self {
            Protocol::AvaHotStuff => Box::new(ProtocolDeployment {
                protocol: self,
                inner: Deployment::build(config, opts, hotstuff_factory()),
            }),
            Protocol::AvaBftSmart => Box::new(ProtocolDeployment {
                protocol: self,
                inner: Deployment::build(config, opts, bftsmart_factory()),
            }),
            Protocol::GeoBft => Box::new(ProtocolDeployment {
                protocol: self,
                inner: Deployment::build(
                    ava_geobft::geobft_config(config),
                    opts,
                    bftsmart_factory(),
                ),
            }),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An object-safe, protocol-erased simulated deployment.
///
/// All mutation entry points an experiment needs — driving virtual time, fault
/// injection, reconfiguration churn, client management, network shaping — are
/// available behind `dyn`, so experiment code never mentions a TOB type or restates
/// trait bounds.
///
/// `Send` is a supertrait so a boxed deployment (and hence a whole
/// [`crate::ScenarioRun`]) can be produced on one of the parallel executor's
/// worker threads and handed back to the caller.
pub trait DynDeployment: Send {
    /// The protocol this deployment runs.
    fn protocol(&self) -> Protocol;

    /// The system configuration the deployment was built from.
    fn config(&self) -> &SystemConfig;

    /// Current virtual time.
    fn now(&self) -> Time;

    /// Run the simulation for `d` of virtual time.
    fn run_for(&mut self, d: Duration);

    /// Run until virtual time `t`.
    fn run_until(&mut self, t: Time);

    /// Crash `replica` at `at` (from then on it neither receives messages nor fires
    /// timers).
    fn crash_at(&mut self, replica: ReplicaId, at: Time);

    /// Restart a crashed `replica` at `at`: it comes back with only its persisted
    /// store (see `DeploymentOptions::store`) and catches up from its peers.
    /// Restarting a replica that is not crashed at `at` is a no-op.
    fn restart_at(&mut self, replica: ReplicaId, at: Time);

    /// Turn `replica` Byzantine in the E4.3 sense: it keeps behaving correctly in
    /// its cluster but withholds all inter-cluster messages.
    fn mute_inter_cluster(&mut self, replica: ReplicaId);

    /// Make `replica` silent in its local ordering role when it is the leader.
    fn silence_local_leader(&mut self, replica: ReplicaId);

    /// Turn `replica` Byzantine with `behavior` at `at`: it keeps running the
    /// honest protocol internally but mutates its outbound traffic (see
    /// [`ByzantineBehavior`]). Corruption persists across crash/restart.
    fn corrupt_at(&mut self, replica: ReplicaId, at: Time, behavior: ByzantineBehavior);

    /// Ask `replica` to request leaving its cluster.
    ///
    /// # Panics
    /// Panics when the protocol is not [`Protocol::reconfigurable`].
    fn request_leave(&mut self, replica: ReplicaId);

    /// Add a new replica that will request to join `cluster`; returns its id.
    ///
    /// # Panics
    /// Panics when the protocol is not [`Protocol::reconfigurable`].
    fn add_joining_replica(&mut self, cluster: ClusterId, region: Region) -> ReplicaId;

    /// Add one closed-loop client to `cluster` running `workload`; returns its id.
    fn add_client(&mut self, cluster: ClusterId, workload: WorkloadSpec) -> ClientId;

    /// Switch the workload of every client of `cluster`, effective now.
    fn switch_workload(&mut self, cluster: ClusterId, workload: WorkloadSpec);

    /// Partition `a` and `b` from each other, starting now.
    fn partition(&mut self, a: ClusterId, b: ClusterId);

    /// Heal a partition previously installed with [`DynDeployment::partition`].
    fn heal(&mut self, a: ClusterId, b: ClusterId);

    /// Replace the latency model for every message sent from now on.
    fn set_latency(&mut self, latency: LatencyModel);

    /// The initial leader of `cluster` (its first configured member).
    fn initial_leader(&self, cluster: ClusterId) -> ReplicaId;

    /// Measurement events collected so far.
    fn outputs(&self) -> &[Output];

    /// Take ownership of the measurement events collected so far.
    fn take_outputs(&mut self) -> Vec<Output>;

    /// Network statistics of the run so far.
    fn net_stats(&self) -> &NetStats;

    /// Wire a broker/batch client tier into the deployment (see
    /// [`ava_broker::attach`]): per cluster, `tier.brokers_per_cluster` broker
    /// actors plus one aggregate virtual-client generator offering
    /// `tier.load`. Returns the node ids the tier added.
    fn attach_brokers(&mut self, tier: &BrokerTier) -> AttachedTier;
}

/// The one generic impl behind [`Protocol::deploy`]: a harness deployment tagged
/// with the protocol label it was built for.
struct ProtocolDeployment<T: TotalOrderBroadcast + 'static> {
    protocol: Protocol,
    inner: Deployment<T>,
}

impl<T> DynDeployment for ProtocolDeployment<T>
where
    T: TotalOrderBroadcast + 'static,
    T::Msg: Clone + WireSize + 'static,
    AvaMsg<T::Msg>: SimMessage,
{
    fn protocol(&self) -> Protocol {
        self.protocol
    }

    fn config(&self) -> &SystemConfig {
        &self.inner.config
    }

    fn now(&self) -> Time {
        self.inner.now()
    }

    fn run_for(&mut self, d: Duration) {
        self.inner.run_for(d);
    }

    fn run_until(&mut self, t: Time) {
        self.inner.run_until(t);
    }

    fn crash_at(&mut self, replica: ReplicaId, at: Time) {
        self.inner.crash_at(replica, at);
    }

    fn restart_at(&mut self, replica: ReplicaId, at: Time) {
        self.inner.restart_at(replica, at);
    }

    fn mute_inter_cluster(&mut self, replica: ReplicaId) {
        self.inner.mute_inter_cluster(replica);
    }

    fn silence_local_leader(&mut self, replica: ReplicaId) {
        self.inner.silence_local_leader(replica);
    }

    fn corrupt_at(&mut self, replica: ReplicaId, at: Time, behavior: ByzantineBehavior) {
        self.inner.corrupt_at(replica, at, behavior);
    }

    fn request_leave(&mut self, replica: ReplicaId) {
        assert!(
            self.protocol.reconfigurable(),
            "{} has no reconfiguration path: request_leave({replica}) is invalid",
            self.protocol
        );
        self.inner.request_leave(replica);
    }

    fn add_joining_replica(&mut self, cluster: ClusterId, region: Region) -> ReplicaId {
        assert!(
            self.protocol.reconfigurable(),
            "{} has no reconfiguration path: add_joining_replica is invalid",
            self.protocol
        );
        self.inner.add_joining_replica(cluster, region)
    }

    fn add_client(&mut self, cluster: ClusterId, workload: WorkloadSpec) -> ClientId {
        self.inner.add_client_with_workload(cluster, workload)
    }

    fn switch_workload(&mut self, cluster: ClusterId, workload: WorkloadSpec) {
        self.inner.switch_workload(cluster, workload);
    }

    fn partition(&mut self, a: ClusterId, b: ClusterId) {
        self.inner.partition(a, b);
    }

    fn heal(&mut self, a: ClusterId, b: ClusterId) {
        self.inner.heal(a, b);
    }

    fn set_latency(&mut self, latency: LatencyModel) {
        self.inner.set_latency(latency);
    }

    fn initial_leader(&self, cluster: ClusterId) -> ReplicaId {
        self.inner.initial_leader(cluster)
    }

    fn outputs(&self) -> &[Output] {
        self.inner.outputs()
    }

    fn take_outputs(&mut self) -> Vec<Output> {
        self.inner.take_outputs()
    }

    fn net_stats(&self) -> &NetStats {
        self.inner.net_stats()
    }

    fn attach_brokers(&mut self, tier: &BrokerTier) -> AttachedTier {
        ava_broker::attach(&mut self.inner, tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SystemConfig {
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        config
    }

    fn tiny_opts() -> DeploymentOptions {
        DeploymentOptions {
            seed: 3,
            client_concurrency: 32,
            workload: WorkloadSpec { key_space: 500, ..WorkloadSpec::default() },
            ..DeploymentOptions::default()
        }
    }

    #[test]
    fn every_protocol_label_maps_to_its_own_deployment() {
        // Regression test for the silent protocol mismatch the old experiment
        // harness had (`Protocol::AvaBftSmart | Protocol::GeoBft` running a
        // BFT-SMaRt deployment for the GeoBFT label): the label a deployment
        // reports must be exactly the label it was deployed for.
        for protocol in Protocol::ALL {
            let dep = protocol.deploy(tiny_config(), tiny_opts());
            assert_eq!(dep.protocol(), protocol);
        }
        let mut labels: Vec<&str> = Protocol::ALL.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Protocol::ALL.len(), "labels must be distinct");
    }

    #[test]
    fn geobft_deployment_gets_the_geobft_config_transform() {
        let mut config = tiny_config();
        config.params.parallel_reconfig_workflow = false;
        let dep = Protocol::GeoBft.deploy(config.clone(), tiny_opts());
        assert!(
            dep.config().params.parallel_reconfig_workflow,
            "GeoBFT must force the direct-processing path"
        );
        // The same config deployed as AVA-BFTSMART is taken verbatim.
        let dep = Protocol::AvaBftSmart.deploy(config, tiny_opts());
        assert!(!dep.config().params.parallel_reconfig_workflow);
    }

    #[test]
    #[should_panic(expected = "no reconfiguration path")]
    fn geobft_rejects_reconfiguration_events() {
        let mut dep = Protocol::GeoBft.deploy(tiny_config(), tiny_opts());
        dep.add_joining_replica(ClusterId(0), Region::UsWest);
    }

    #[test]
    fn dyn_deployment_runs_and_commits_transactions() {
        let mut dep = Protocol::AvaHotStuff.deploy(tiny_config(), tiny_opts());
        dep.run_for(Duration::from_secs(8));
        assert!(dep.outputs().iter().any(|o| matches!(o, Output::TxCompleted { .. })));
        assert!(dep.net_stats().total_messages() > 0);
        assert_eq!(dep.initial_leader(ClusterId(0)), ReplicaId(0));
    }
}
