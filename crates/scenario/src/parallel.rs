//! The parallel run executor: fan independent scenario runs out across a
//! std::thread worker pool.
//!
//! Every run of a sweep (deployments × seeds × configs) is an isolated
//! [`crate::Scenario`]: it owns its simulator, RNG, key registry and actors, and
//! shares nothing mutable with any other run. That makes sweeps embarrassingly
//! parallel — the only requirements are that a prepared scenario can *move* to a
//! worker thread (`Send`, enforced at compile time across the whole actor stack)
//! and that results come back in the order the scenarios were submitted, so a
//! parallel sweep is byte-identical to the serial loop it replaces.
//!
//! [`RunPool::map`] is the primitive: a work-stealing ordered parallel map. Workers
//! pull the next unclaimed index from a shared atomic cursor (long runs never
//! block short ones behind a static partition) and write each result into the slot
//! of its input index, so the output order never depends on scheduling. DESIGN.md
//! §8 has the full determinism argument and the path from this pool to
//! cluster-sharded PDES.
//!
//! Timing under concurrency: per-run wall-clock stops meaning "compute time" the
//! moment runs share cores, so [`RunPool::map_timed`] reports both per-run
//! wall-clock and per-run *thread CPU time* ([`thread_cpu_time`]), and the pool
//! wall-clock is measured around the whole map. Speedup is pool wall-clock vs. the
//! sum of per-run CPU times.

use crate::scenario::{Scenario, ScenarioRun};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default worker count: the machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// CPU time consumed by the calling thread, if the platform exposes it.
///
/// Linux: parsed from `/proc/thread-self/stat` (utime + stime, USER_HZ ticks —
/// typically 10 ms granularity, plenty for runs that take hundreds of
/// milliseconds; the workspace forbids `unsafe`, which rules out
/// `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`). Elsewhere: `None`, and callers fall
/// back to wall-clock.
pub fn thread_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // Fields 14 (utime) and 15 (stime), 1-indexed, counted after the `(comm)`
    // field — which may itself contain spaces, so split after the last ')'.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every Linux configuration Rust supports.
    Some(Duration::from_millis((utime + stime) * 10))
}

/// Per-run timing captured by [`RunPool::map_timed`].
#[derive(Clone, Copy, Debug)]
pub struct RunTiming {
    /// Wall-clock duration of the run on its worker thread. Under concurrency
    /// this includes time the thread was descheduled while other runs held the
    /// cores — compare CPU times across job counts, not wall-clocks.
    pub wall: Duration,
    /// Thread CPU time consumed by the run (`None` where the platform does not
    /// expose per-thread CPU clocks; see [`thread_cpu_time`]).
    pub cpu: Option<Duration>,
}

impl RunTiming {
    /// The stable cost metric: CPU time where available, wall-clock otherwise.
    pub fn cost(&self) -> Duration {
        self.cpu.unwrap_or(self.wall)
    }
}

/// A work-stealing pool executing independent runs on `jobs` threads, returning
/// results in canonical input order.
///
/// The pool is stateless between calls: threads are scoped to each `map`, so a
/// `RunPool` is cheap to construct wherever a sweep needs one.
#[derive(Clone, Copy, Debug)]
pub struct RunPool {
    jobs: usize,
}

impl RunPool {
    /// A pool with `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        RunPool { jobs: jobs.max(1) }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn with_available_parallelism() -> Self {
        Self::new(default_jobs())
    }

    /// The number of worker threads `map` will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Ordered work-stealing parallel map: apply `work` to every item on up to
    /// [`RunPool::jobs`] threads and return the results **in input order**.
    ///
    /// `work` receives `(index, item)`; items are claimed through a shared atomic
    /// cursor in input order, but items may *complete* in any order — each result
    /// is written to the slot of its input index, so the returned `Vec` never
    /// depends on thread scheduling. With `jobs == 1` (or a single item) the map
    /// runs inline on the caller's thread: the serial path is the parallel path.
    ///
    /// A panicking `work` call aborts the map and propagates the panic to the
    /// caller once all workers have stopped.
    pub fn map<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| work(i, item)).collect();
        }
        // One slot per item: workers take the input from its slot and write the
        // result into the matching output slot. The mutexes are uncontended (a
        // slot is touched by exactly one claim), they only exist to make the
        // slot vectors shareable across the scope.
        let inputs: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = inputs[i]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("every index is claimed exactly once");
                    let result = work(i, item);
                    *outputs[i].lock().expect("output slot poisoned") = Some(result);
                });
            }
        });
        outputs
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("output slot poisoned")
                    .expect("every slot is filled before the scope ends")
            })
            .collect()
    }

    /// Like [`RunPool::map`], additionally timing every run (wall + thread CPU)
    /// and the pool as a whole. Returns the per-item `(result, timing)` pairs in
    /// input order plus the pool wall-clock.
    pub fn map_timed<T, R, F>(&self, items: Vec<T>, work: F) -> (Vec<(R, RunTiming)>, Duration)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let pool_start = Instant::now();
        let results = self.map(items, |i, item| {
            let cpu_before = thread_cpu_time();
            let wall_start = Instant::now();
            let result = work(i, item);
            let wall = wall_start.elapsed();
            let cpu = match (cpu_before, thread_cpu_time()) {
                (Some(before), Some(after)) => Some(after.saturating_sub(before)),
                _ => None,
            };
            (result, RunTiming { wall, cpu })
        });
        (results, pool_start.elapsed())
    }

    /// Execute prepared scenarios on the pool; results in input order, so
    /// `pool.run_scenarios(v)` is output-for-output identical to
    /// `v.into_iter().map(Scenario::run).collect()`.
    pub fn run_scenarios(&self, scenarios: Vec<Scenario>) -> Vec<ScenarioRun> {
        self.map(scenarios, |_, scenario| scenario.run())
    }
}

impl Default for RunPool {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{DynDeployment, Protocol};
    use ava_hamava::harness::Deployment;
    use ava_hamava::{AvaMsg, Client, Replica};
    use ava_simnet::Simulation;
    use ava_types::{Duration as SimDuration, Region, SystemConfig};
    use ava_workload::WorkloadSpec;

    fn assert_send<T: Send>() {}

    /// Compile-time Send audit of every actor stack the executor moves across
    /// threads: the simulators, the protocol deployments (generic and erased),
    /// the per-node actors, and the prepared/finished scenario types.
    #[test]
    fn every_actor_stack_is_send() {
        // Simulators, parameterized by each protocol's full message enum.
        assert_send::<Simulation<AvaMsg<ava_hotstuff::HotStuffMsg>>>();
        assert_send::<Simulation<AvaMsg<ava_bftsmart::BftSmartMsg>>>();
        // Protocol actors.
        assert_send::<Replica<ava_hotstuff::HotStuff>>();
        assert_send::<Replica<ava_bftsmart::BftSmart>>();
        assert_send::<Client<AvaMsg<ava_hotstuff::HotStuffMsg>>>();
        assert_send::<Client<AvaMsg<ava_bftsmart::BftSmartMsg>>>();
        // Deployments, generic and protocol-erased (GeoBFT runs the BFT-SMaRt
        // stack behind the same erased deployment).
        assert_send::<Deployment<ava_hotstuff::HotStuff>>();
        assert_send::<Deployment<ava_bftsmart::BftSmart>>();
        assert_send::<Box<dyn DynDeployment>>();
        // The executor's working currency.
        assert_send::<Scenario>();
        assert_send::<ScenarioRun>();
    }

    #[test]
    fn map_returns_results_in_input_order() {
        let pool = RunPool::new(8);
        // Uneven work so completion order differs from claim order.
        let results = pool.map((0..64u64).collect(), |i, x| {
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            x * x
        });
        let expected: Vec<u64> = (0..64).map(|x| x * x).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn map_handles_degenerate_shapes() {
        let pool = RunPool::new(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![9], |i, x: u32| x + i as u32), vec![9]);
        // More workers than items.
        assert_eq!(RunPool::new(16).map(vec![1, 2, 3], |_, x| x * 10), vec![10, 20, 30]);
        // Zero requested jobs clamps to one.
        assert_eq!(RunPool::new(0).jobs(), 1);
    }

    #[test]
    fn map_timed_reports_plausible_timings() {
        let pool = RunPool::new(2);
        let (results, pool_wall) = pool.map_timed(vec![10u64, 20], |_, ms| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        assert_eq!(results.iter().map(|(r, _)| *r).collect::<Vec<_>>(), vec![10, 20]);
        for (ms, (_, timing)) in [10u64, 20].iter().zip(&results) {
            assert!(timing.wall >= Duration::from_millis(*ms));
            // Sleeping burns no CPU: where the platform reports CPU time it must
            // be (much) smaller than the wall-clock of a sleep.
            if let Some(cpu) = timing.cpu {
                assert!(cpu <= timing.wall);
            }
        }
        assert!(pool_wall >= Duration::from_millis(20));
    }

    fn tiny_scenarios() -> Vec<Scenario> {
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        Protocol::AVA
            .into_iter()
            .map(|protocol| {
                Scenario::builder(protocol, config.clone())
                    .seed(11)
                    .workload(WorkloadSpec { key_space: 500, ..WorkloadSpec::default() })
                    .run_for(SimDuration::from_secs(2))
                    .build()
            })
            .collect()
    }

    #[test]
    fn parallel_scenario_runs_match_serial_byte_for_byte() {
        let serial: Vec<ScenarioRun> = tiny_scenarios().into_iter().map(Scenario::run).collect();
        let parallel = RunPool::new(8).run_scenarios(tiny_scenarios());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.protocol, p.protocol);
            assert_eq!(format!("{:?}", s.outputs), format!("{:?}", p.outputs));
            assert_eq!(s.stats.total_messages(), p.stats.total_messages());
            assert_eq!(s.stats.bytes_sent, p.stats.bytes_sent);
            assert_eq!(s.stats.events_processed, p.stats.events_processed);
        }
    }
}
