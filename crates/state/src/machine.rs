//! The [`StateMachine`] trait and its two implementations: the legacy
//! [`CounterMachine`] and the real keyed [`KvMachine`].

use crate::snapshot::StateSnapshot;
use ava_crypto::Sha256;
use ava_types::{Round, Transaction, TxKind};
use std::collections::BTreeMap;

/// Which replicated state machine a deployment executes against.
///
/// `Counter` is the default: every configuration that predates `ava-state`
/// behaves byte-identically under it (the determinism goldens pin this).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StateMachineKind {
    /// Legacy placeholder: key → write counter, no value bytes.
    #[default]
    Counter,
    /// Real keyed KV store: key → versioned value bytes.
    Kv,
}

impl StateMachineKind {
    /// Short label used in reports and bench shape names.
    pub fn label(self) -> &'static str {
        match self {
            StateMachineKind::Counter => "counter",
            StateMachineKind::Kv => "kv",
        }
    }
}

/// What applying one transaction did to the state, for cost accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ApplyOutcome {
    /// Value bytes materialised by the write (0 for reads and for the counter
    /// machine — the execution layer charges `CostModel::per_value_byte_ns`
    /// only when this is nonzero, which keeps legacy runs cost-identical).
    pub value_bytes: u64,
    /// Number of keys written (>1 for `TxKind::MultiWrite`).
    pub keys_written: u32,
}

/// A deterministic replicated state machine: Stage 3 applies the globally
/// ordered transaction stream through this interface, and the read path serves
/// committed values from it cluster-locally (E2 semantics).
///
/// Implementations must be deterministic functions of the applied `(round, tx)`
/// sequence — every correct replica applies the same stream and must land on
/// the same [`StateMachine::digest`]. The digest must also be
/// history-independent (a function of the current state only), so a replica
/// that restores from a peer snapshot agrees with peers that executed the full
/// history.
pub trait StateMachine: Send {
    /// Which machine this is.
    fn kind(&self) -> StateMachineKind;

    /// Apply one committed transaction for `round`. Read-only kinds
    /// (`Read`/`Scan`) are no-ops — they never enter the ordered stream, but a
    /// machine must tolerate them defensively.
    fn apply(&mut self, round: Round, tx: &Transaction) -> ApplyOutcome;

    /// Length in bytes of the committed value under `key` (0 if absent, and
    /// always 0 for the counter machine — read replies carry no value bytes).
    fn read_len(&self, key: u64) -> u32;

    /// Total value bytes a `Scan { start_key, count }` would return: the
    /// values of the first `count` present keys at or after `start_key`.
    fn scan_bytes(&self, start_key: u64, count: u32) -> u64;

    /// Number of keys present.
    fn entries(&self) -> u64;

    /// Total committed value bytes across all keys (0 for the counter machine).
    fn value_bytes(&self) -> u64;

    /// History-independent digest of the current state (XOR set-hash of
    /// per-entry SHA-256 hashes).
    fn digest(&self) -> [u8; 32];

    /// A serialisable point-in-time image of the state.
    fn snapshot(&self) -> StateSnapshot;
}

/// Build a fresh, empty machine of `kind`.
pub fn machine_for(kind: StateMachineKind) -> Box<dyn StateMachine> {
    match kind {
        StateMachineKind::Counter => Box::new(CounterMachine::default()),
        StateMachineKind::Kv => Box::new(KvMachine::default()),
    }
}

fn xor_acc(acc: &mut [u8; 32], h: &[u8; 32]) {
    for (a, b) in acc.iter_mut().zip(h) {
        *a ^= *b;
    }
}

/// The legacy placeholder machine: `key → write counter`. Kept bit-compatible
/// with the pre-`ava-state` execution layer — same state map, same snapshot
/// byte stream, zero value bytes. Its digest is computed on demand, not
/// incrementally: counter deployments never emit `StateDigest` outputs, so a
/// per-write hash would tax the hot execute loop for a value nobody reads
/// (the KV machine, whose digest *is* read every round, pays the incremental
/// set-hash instead).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CounterMachine {
    state: BTreeMap<u64, u64>,
}

impl CounterMachine {
    /// Restore from a counter snapshot map.
    pub fn from_state(state: BTreeMap<u64, u64>) -> Self {
        CounterMachine { state }
    }

    /// The underlying counter map.
    pub fn state(&self) -> &BTreeMap<u64, u64> {
        &self.state
    }

    fn entry_hash(key: u64, count: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"ava-counter-entry");
        h.update(&key.to_le_bytes());
        h.update(&count.to_le_bytes());
        h.finalize()
    }

    fn bump(&mut self, key: u64) {
        *self.state.entry(key).or_insert(0) += 1;
    }
}

impl StateMachine for CounterMachine {
    fn kind(&self) -> StateMachineKind {
        StateMachineKind::Counter
    }

    fn apply(&mut self, _round: Round, tx: &Transaction) -> ApplyOutcome {
        match &tx.kind {
            TxKind::Write { key, .. } => {
                self.bump(*key);
                ApplyOutcome { value_bytes: 0, keys_written: 1 }
            }
            TxKind::MultiWrite { keys, .. } => {
                for key in keys {
                    self.bump(*key);
                }
                ApplyOutcome { value_bytes: 0, keys_written: keys.len() as u32 }
            }
            TxKind::Read { .. } | TxKind::Scan { .. } => ApplyOutcome::default(),
        }
    }

    fn read_len(&self, _key: u64) -> u32 {
        0
    }

    fn scan_bytes(&self, _start_key: u64, _count: u32) -> u64 {
        0
    }

    fn entries(&self) -> u64 {
        self.state.len() as u64
    }

    fn value_bytes(&self) -> u64 {
        0
    }

    fn digest(&self) -> [u8; 32] {
        let mut acc = [0u8; 32];
        for (k, v) in &self.state {
            xor_acc(&mut acc, &Self::entry_hash(*k, *v));
        }
        acc
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::Counter(self.state.clone())
    }
}

/// One committed KV entry: a versioned value and the round of its last writer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KvEntry {
    /// Monotone per-key write counter (1 on first write).
    pub version: u64,
    /// The round whose execution last wrote the key.
    pub last_writer_round: u64,
    /// The committed value bytes (deterministically materialised — see
    /// [`KvMachine::fill_value`]).
    pub value: Vec<u8>,
}

impl KvEntry {
    /// Wire size of the entry: key (8) + version (8) + round (8) + length
    /// prefix (4) + value bytes.
    pub fn wire_bytes(&self) -> usize {
        28 + self.value.len()
    }
}

/// The real keyed KV machine: `key → {version, value bytes, last-writer
/// round}`, with multi-key writes and range reads.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KvMachine {
    entries: BTreeMap<u64, KvEntry>,
    acc: [u8; 32],
    value_bytes: u64,
}

impl KvMachine {
    /// Restore from a KV snapshot map, recomputing the set-hash accumulator
    /// and byte total (O(state), paid once at adoption time).
    pub fn from_state(entries: BTreeMap<u64, KvEntry>) -> Self {
        let mut acc = [0u8; 32];
        let mut value_bytes = 0u64;
        for (k, e) in &entries {
            xor_acc(&mut acc, &Self::entry_hash(*k, e));
            value_bytes += e.value.len() as u64;
        }
        KvMachine { entries, acc, value_bytes }
    }

    /// The underlying entry map.
    pub fn entries_map(&self) -> &BTreeMap<u64, KvEntry> {
        &self.entries
    }

    /// The committed entry under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&KvEntry> {
        self.entries.get(&key)
    }

    /// Deterministic value content for `(key, version)`: the simulator carries
    /// real bytes (so snapshot/transfer sizes and digests are meaningful)
    /// without shipping client payloads through the ordering path.
    pub fn fill_value(key: u64, version: u64, size: u32) -> Vec<u8> {
        let seed = key.wrapping_mul(31).wrapping_add(version) as u8;
        (0..size as usize).map(|i| seed.wrapping_add(i as u8)).collect()
    }

    fn entry_hash(key: u64, e: &KvEntry) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"ava-kv-entry");
        h.update(&key.to_le_bytes());
        h.update(&e.version.to_le_bytes());
        h.update(&e.last_writer_round.to_le_bytes());
        h.update(&(e.value.len() as u32).to_le_bytes());
        h.update(&e.value);
        h.finalize()
    }

    fn write_one(&mut self, round: Round, key: u64, value_size: u32) -> u64 {
        let version = self.entries.get(&key).map_or(1, |e| e.version + 1);
        let value = Self::fill_value(key, version, value_size);
        let written = value.len() as u64;
        let entry = KvEntry { version, last_writer_round: round.0, value };
        let new_hash = Self::entry_hash(key, &entry);
        if let Some(old) = self.entries.insert(key, entry) {
            self.value_bytes -= old.value.len() as u64;
            xor_acc(&mut self.acc, &Self::entry_hash(key, &old));
        }
        self.value_bytes += written;
        xor_acc(&mut self.acc, &new_hash);
        written
    }
}

impl StateMachine for KvMachine {
    fn kind(&self) -> StateMachineKind {
        StateMachineKind::Kv
    }

    fn apply(&mut self, round: Round, tx: &Transaction) -> ApplyOutcome {
        match &tx.kind {
            TxKind::Write { key, value_size } => {
                let value_bytes = self.write_one(round, *key, *value_size);
                ApplyOutcome { value_bytes, keys_written: 1 }
            }
            TxKind::MultiWrite { keys, value_size } => {
                let mut value_bytes = 0;
                for key in keys {
                    value_bytes += self.write_one(round, *key, *value_size);
                }
                ApplyOutcome { value_bytes, keys_written: keys.len() as u32 }
            }
            TxKind::Read { .. } | TxKind::Scan { .. } => ApplyOutcome::default(),
        }
    }

    fn read_len(&self, key: u64) -> u32 {
        self.entries.get(&key).map_or(0, |e| e.value.len() as u32)
    }

    fn scan_bytes(&self, start_key: u64, count: u32) -> u64 {
        self.entries
            .range(start_key..)
            .take(count as usize)
            .map(|(_, e)| e.value.len() as u64)
            .sum()
    }

    fn entries(&self) -> u64 {
        self.entries.len() as u64
    }

    fn value_bytes(&self) -> u64 {
        self.value_bytes
    }

    fn digest(&self) -> [u8; 32] {
        self.acc
    }

    fn snapshot(&self) -> StateSnapshot {
        StateSnapshot::Kv(self.entries.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{ClientId, TxId};

    fn write(seq: u64, key: u64, size: u32) -> Transaction {
        Transaction::write(ClientId(1), seq, key, size)
    }

    #[test]
    fn counter_machine_matches_legacy_semantics() {
        let mut m = CounterMachine::default();
        m.apply(Round(1), &write(0, 7, 1024));
        m.apply(Round(2), &write(1, 7, 1024));
        m.apply(Round(2), &write(2, 9, 1024));
        assert_eq!(m.state().get(&7), Some(&2));
        assert_eq!(m.state().get(&9), Some(&1));
        assert_eq!(m.value_bytes(), 0, "counter writes carry no value bytes");
        assert_eq!(m.read_len(7), 0, "counter reads return no value bytes");
        // Reads are defensive no-ops.
        let before = m.digest();
        m.apply(Round(3), &Transaction::read(ClientId(1), 3, 7));
        assert_eq!(m.digest(), before);
    }

    #[test]
    fn kv_machine_versions_values_and_tracks_bytes() {
        let mut m = KvMachine::default();
        let out = m.apply(Round(4), &write(0, 7, 256));
        assert_eq!(out.value_bytes, 256);
        let e = m.get(7).expect("written");
        assert_eq!((e.version, e.last_writer_round, e.value.len()), (1, 4, 256));

        // Overwrite bumps the version, replaces the bytes, moves the round.
        let out = m.apply(Round(9), &write(1, 7, 64));
        assert_eq!(out.value_bytes, 64);
        let e = m.get(7).expect("rewritten");
        assert_eq!((e.version, e.last_writer_round, e.value.len()), (2, 9, 64));
        assert_eq!(m.value_bytes(), 64, "old value bytes must be released");
        assert_eq!(m.read_len(7), 64);
        assert_eq!(m.entries(), 1);
    }

    #[test]
    fn kv_multiwrite_and_scan() {
        let mut m = KvMachine::default();
        let tx = Transaction {
            id: TxId { client: ClientId(1), seq: 0 },
            kind: TxKind::MultiWrite { keys: vec![3, 5, 9], value_size: 100 },
            payload_size: 300,
        };
        let out = m.apply(Round(2), &tx);
        assert_eq!((out.keys_written, out.value_bytes), (3, 300));
        assert_eq!(m.scan_bytes(4, 2), 200, "scan takes the first present keys >= start");
        assert_eq!(m.scan_bytes(0, 10), 300);
        assert_eq!(m.scan_bytes(10, 4), 0);
    }

    #[test]
    fn digest_is_history_independent() {
        // Same final state via different histories → same digest.
        let mut a = KvMachine::default();
        a.apply(Round(1), &write(0, 1, 100));
        a.apply(Round(2), &write(1, 2, 100));
        a.apply(Round(3), &write(2, 1, 100)); // key 1 reaches version 2 in round 3

        let mut b = KvMachine::default();
        b.apply(Round(2), &write(5, 2, 100));
        b.apply(Round(1), &write(6, 1, 100));
        b.apply(Round(3), &write(7, 1, 100));
        assert_eq!(a.digest(), b.digest());

        // Restoring from the snapshot recomputes the identical digest.
        let restored = match a.snapshot() {
            StateSnapshot::Kv(entries) => KvMachine::from_state(entries),
            s => panic!("kv machine must produce a kv snapshot, got {s:?}"),
        };
        assert_eq!(restored.digest(), a.digest());
        assert_eq!(restored.value_bytes(), a.value_bytes());

        // And a diverging value is visible.
        let mut c = KvMachine::default();
        c.apply(Round(1), &write(0, 1, 100));
        c.apply(Round(2), &write(1, 2, 101));
        c.apply(Round(3), &write(2, 1, 100));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn fill_value_is_deterministic() {
        assert_eq!(KvMachine::fill_value(7, 2, 64), KvMachine::fill_value(7, 2, 64));
        assert_ne!(KvMachine::fill_value(7, 2, 64), KvMachine::fill_value(7, 3, 64));
    }
}
