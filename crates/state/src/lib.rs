//! # ava-state
//!
//! The replicated state machines Hamava's Stage 3 executes against, behind one
//! [`StateMachine`] trait:
//!
//! * [`CounterMachine`] — the legacy placeholder (key → write counter). It is
//!   kept bit-for-bit compatible with the pre-`ava-state` execution layer:
//!   selecting it reproduces every historical determinism golden byte-identically
//!   (same snapshot digest byte stream, same wire sizes, no value-byte costs).
//! * [`KvMachine`] — a real YCSB-style keyed KV store. Every key holds a
//!   versioned value (`key → {version, value bytes, last-writer round}`), writes
//!   materialise deterministic value bytes, and multi-key writes
//!   (`TxKind::MultiWrite`) and range reads (`TxKind::Scan`) are supported.
//!
//! Both machines expose a **history-independent digest**: an XOR set-hash over
//! per-entry SHA-256 hashes, updated incrementally on every write. Because the
//! digest is a function of the *state* (not of the apply history), a replica
//! that adopts a peer snapshot during catch-up recomputes the same digest its
//! peers carry — which is what lets the fuzzer's execution-agreement checker
//! compare full state digests across replicas after recovery.
//!
//! [`StateSnapshot`] is the serialisable point-in-time image both machines
//! produce and restore from; `ava-store` folds it into digest-certified
//! checkpoints, and [`chunk_snapshot`] / [`SnapshotAssembler`] model the chunked
//! transfer of large snapshots (reassembly is order-insensitive and
//! digest-verified; see the property tests).

pub mod machine;
pub mod snapshot;

pub use machine::{
    machine_for, ApplyOutcome, CounterMachine, KvEntry, KvMachine, StateMachine, StateMachineKind,
};
pub use snapshot::{
    chunk_snapshot, machine_from_snapshot, SnapshotAssembler, SnapshotChunk, StateSnapshot,
};
