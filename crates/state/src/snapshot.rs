//! Serialisable point-in-time state images, and the chunked transfer model for
//! large snapshots.
//!
//! A [`StateSnapshot`] is what a checkpoint folds (see `ava-store`) and what a
//! recovering replica restores a machine from. The **counter** variant's hash
//! and wire-size contributions are bit-identical to the pre-`ava-state`
//! checkpoint format, which is what keeps the historical determinism goldens
//! byte-stable. The **kv** variant carries real value bytes, so checkpoint
//! sizes, catch-up transfer accounting and digests are all meaningful.
//!
//! [`chunk_snapshot`] splits a serialised snapshot into digest-certified
//! chunks and [`SnapshotAssembler`] reassembles them in any arrival order —
//! the property tests pin round-trip fidelity and order-insensitivity.

use crate::machine::{CounterMachine, KvEntry, KvMachine, StateMachine, StateMachineKind};
use ava_crypto::{sha256, Sha256};
use std::collections::BTreeMap;

/// A point-in-time image of a state machine's replicated state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StateSnapshot {
    /// Legacy counter state: key → write counter.
    Counter(BTreeMap<u64, u64>),
    /// Keyed KV state: key → versioned value entry.
    Kv(BTreeMap<u64, KvEntry>),
}

impl StateSnapshot {
    /// An empty snapshot of `kind` (the round-0 catch-up anchor).
    pub fn empty(kind: StateMachineKind) -> Self {
        match kind {
            StateMachineKind::Counter => StateSnapshot::Counter(BTreeMap::new()),
            StateMachineKind::Kv => StateSnapshot::Kv(BTreeMap::new()),
        }
    }

    /// Which machine kind produced (and can restore from) this snapshot.
    pub fn kind(&self) -> StateMachineKind {
        match self {
            StateSnapshot::Counter(_) => StateMachineKind::Counter,
            StateSnapshot::Kv(_) => StateMachineKind::Kv,
        }
    }

    /// Number of keys in the snapshot.
    pub fn entries(&self) -> usize {
        match self {
            StateSnapshot::Counter(state) => state.len(),
            StateSnapshot::Kv(state) => state.len(),
        }
    }

    /// Approximate wire size of the snapshot body in bytes. The counter
    /// variant is exactly the legacy `state.len() * 16` so historical transfer
    /// accounting (and the goldens that pin it) is unchanged.
    pub fn wire_bytes(&self) -> usize {
        match self {
            StateSnapshot::Counter(state) => state.len() * 16,
            StateSnapshot::Kv(state) => state.values().map(KvEntry::wire_bytes).sum(),
        }
    }

    /// Feed the snapshot's canonical byte stream into a running hash. The
    /// counter stream (length + key/counter pairs, all LE) is byte-identical
    /// to the legacy checkpoint digest input; the kv stream is domain-tagged.
    pub fn hash_into(&self, h: &mut Sha256) {
        match self {
            StateSnapshot::Counter(state) => {
                h.update(&(state.len() as u64).to_le_bytes());
                for (k, v) in state {
                    h.update(&k.to_le_bytes());
                    h.update(&v.to_le_bytes());
                }
            }
            StateSnapshot::Kv(state) => {
                h.update(b"kv-state-v1");
                h.update(&(state.len() as u64).to_le_bytes());
                for (k, e) in state {
                    h.update(&k.to_le_bytes());
                    h.update(&e.version.to_le_bytes());
                    h.update(&e.last_writer_round.to_le_bytes());
                    h.update(&(e.value.len() as u32).to_le_bytes());
                    h.update(&e.value);
                }
            }
        }
    }

    /// Serialise to the canonical chunkable byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.wire_bytes());
        match self {
            StateSnapshot::Counter(state) => {
                out.push(0);
                out.extend_from_slice(&(state.len() as u64).to_le_bytes());
                for (k, v) in state {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            StateSnapshot::Kv(state) => {
                out.push(1);
                out.extend_from_slice(&(state.len() as u64).to_le_bytes());
                for (k, e) in state {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&e.version.to_le_bytes());
                    out.extend_from_slice(&e.last_writer_round.to_le_bytes());
                    out.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
                    out.extend_from_slice(&e.value);
                }
            }
        }
        out
    }

    /// Parse the canonical byte form back. `None` on any truncation or tag
    /// mismatch (a corrupted transfer must not half-restore).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut cur = Cursor { bytes, pos: 0 };
        let tag = cur.take(1)?[0];
        let len = u64::from_le_bytes(cur.take(8)?.try_into().ok()?) as usize;
        match tag {
            0 => {
                let mut state = BTreeMap::new();
                for _ in 0..len {
                    let k = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
                    let v = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
                    state.insert(k, v);
                }
                cur.done().then_some(StateSnapshot::Counter(state))
            }
            1 => {
                let mut state = BTreeMap::new();
                for _ in 0..len {
                    let k = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
                    let version = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
                    let last_writer_round = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
                    let vlen = u32::from_le_bytes(cur.take(4)?.try_into().ok()?) as usize;
                    let value = cur.take(vlen)?.to_vec();
                    state.insert(k, KvEntry { version, last_writer_round, value });
                }
                cur.done().then_some(StateSnapshot::Kv(state))
            }
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Build a machine pre-loaded with `snapshot`'s state (digest and byte totals
/// recomputed, so it agrees with peers that executed the full history).
pub fn machine_from_snapshot(snapshot: &StateSnapshot) -> Box<dyn StateMachine> {
    match snapshot {
        StateSnapshot::Counter(state) => Box::new(CounterMachine::from_state(state.clone())),
        StateSnapshot::Kv(state) => Box::new(KvMachine::from_state(state.clone())),
    }
}

/// One digest-certified piece of a chunked snapshot transfer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotChunk {
    /// Position of this chunk in the serialised stream.
    pub index: u32,
    /// Total number of chunks in the transfer.
    pub total: u32,
    /// SHA-256 of the *whole* serialised snapshot — every chunk commits to the
    /// same transfer, so a mixed-transfer or tampered reassembly is detected.
    pub snapshot_digest: [u8; 32],
    /// This chunk's byte range.
    pub bytes: Vec<u8>,
}

/// Split `snapshot` into `≤ max_chunk_bytes` pieces (at least one, even when
/// empty), each carrying the whole-snapshot digest.
pub fn chunk_snapshot(snapshot: &StateSnapshot, max_chunk_bytes: usize) -> Vec<SnapshotChunk> {
    let max = max_chunk_bytes.max(1);
    let bytes = snapshot.to_bytes();
    let snapshot_digest = sha256(&bytes);
    let total = bytes.len().div_ceil(max).max(1) as u32;
    (0..total as usize)
        .map(|i| SnapshotChunk {
            index: i as u32,
            total,
            snapshot_digest,
            bytes: bytes[i * max..((i + 1) * max).min(bytes.len())].to_vec(),
        })
        .collect()
}

/// Reassembles a chunked snapshot transfer, in any arrival order.
#[derive(Clone, Debug, Default)]
pub struct SnapshotAssembler {
    expected: Option<(u32, [u8; 32])>,
    chunks: BTreeMap<u32, Vec<u8>>,
    rejected: usize,
}

impl SnapshotAssembler {
    /// A fresh assembler; it learns the transfer shape from the first chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accept one chunk. Returns `false` (and counts the rejection) for chunks
    /// of a different transfer, out-of-range indices, or an index offered
    /// twice with different bytes; duplicates are idempotent.
    pub fn offer(&mut self, chunk: SnapshotChunk) -> bool {
        let (total, digest) = *self.expected.get_or_insert((chunk.total, chunk.snapshot_digest));
        let in_range = chunk.index < total;
        if chunk.total != total || chunk.snapshot_digest != digest || !in_range {
            self.rejected += 1;
            return false;
        }
        match self.chunks.get(&chunk.index) {
            Some(existing) if *existing != chunk.bytes => {
                self.rejected += 1;
                false
            }
            _ => {
                self.chunks.insert(chunk.index, chunk.bytes);
                true
            }
        }
    }

    /// Whether every chunk of the transfer has been received.
    pub fn is_complete(&self) -> bool {
        self.expected.is_some_and(|(total, _)| self.chunks.len() == total as usize)
    }

    /// Number of chunks rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Reassemble once complete: concatenate in index order, verify the
    /// whole-snapshot digest, and parse. `None` until complete or on any
    /// integrity failure.
    pub fn assemble(&self) -> Option<StateSnapshot> {
        if !self.is_complete() {
            return None;
        }
        let (_, digest) = self.expected?;
        let bytes: Vec<u8> = self.chunks.values().flatten().copied().collect();
        if sha256(&bytes) != digest {
            return None;
        }
        StateSnapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{machine_for, StateMachine};
    use ava_types::{ClientId, Round, Transaction, TxId, TxKind};
    use proptest::{proptest, ProptestConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deterministic random op sequence: the "log" the property tests replay.
    fn random_ops(seed: u64, n: usize) -> Vec<(Round, Transaction)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let round = Round(1 + (i as u64) / 5);
                let key = rng.gen_range(0..64u64);
                let kind = match rng.gen_range(0..3u32) {
                    0 => TxKind::Write { key, value_size: rng.gen_range(1..200u32) },
                    1 => TxKind::MultiWrite {
                        keys: vec![key, (key + 7) % 64, (key + 13) % 64],
                        value_size: rng.gen_range(1..100u32),
                    },
                    _ => TxKind::Read { key },
                };
                let tx = Transaction {
                    id: TxId { client: ClientId(1), seq: i as u64 },
                    kind,
                    payload_size: 64,
                };
                (round, tx)
            })
            .collect()
    }

    fn replay(kind: StateMachineKind, ops: &[(Round, Transaction)]) -> Box<dyn StateMachine> {
        let mut m = machine_for(kind);
        for (round, tx) in ops {
            m.apply(*round, tx);
        }
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn snapshot_restore_equals_replay_from_log(seed in 0u64..1_000_000, n in 1usize..120) {
            for kind in [StateMachineKind::Counter, StateMachineKind::Kv] {
                let ops = random_ops(seed, n);
                let live = replay(kind, &ops);
                // Restore from the snapshot...
                let restored = machine_from_snapshot(&live.snapshot());
                // ...and independently replay the log on a fresh machine.
                let replayed = replay(kind, &ops);
                assert_eq!(restored.digest(), live.digest(), "{kind:?}: restore must match live");
                assert_eq!(replayed.digest(), live.digest(), "{kind:?}: replay must match live");
                assert_eq!(restored.entries(), live.entries());
                assert_eq!(restored.value_bytes(), live.value_bytes());
                assert_eq!(restored.snapshot(), live.snapshot());
            }
        }

        #[test]
        fn chunked_reassembly_is_order_insensitive(
            seed in 0u64..1_000_000,
            chunk_bytes in 16usize..400,
        ) {
            let ops = random_ops(seed, 80);
            let snapshot = replay(StateMachineKind::Kv, &ops).snapshot();
            let mut chunks = chunk_snapshot(&snapshot, chunk_bytes);
            // Deterministic shuffle of the arrival order.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a3);
            for i in (1..chunks.len()).rev() {
                chunks.swap(i, rng.gen_range(0..(i + 1)));
            }
            let mut asm = SnapshotAssembler::new();
            for chunk in chunks {
                assert!(asm.offer(chunk), "honest chunks must be accepted");
            }
            assert!(asm.is_complete());
            assert_eq!(asm.assemble().expect("assembles"), snapshot);
        }
    }

    #[test]
    fn serialisation_round_trips_both_kinds() {
        for kind in [StateMachineKind::Counter, StateMachineKind::Kv] {
            let snapshot = replay(kind, &random_ops(7, 40)).snapshot();
            let parsed = StateSnapshot::from_bytes(&snapshot.to_bytes()).expect("parses");
            assert_eq!(parsed, snapshot);
            assert_eq!(parsed.kind(), kind);
        }
        // Empty snapshots round-trip too.
        for kind in [StateMachineKind::Counter, StateMachineKind::Kv] {
            let empty = StateSnapshot::empty(kind);
            assert_eq!(StateSnapshot::from_bytes(&empty.to_bytes()), Some(empty));
        }
    }

    #[test]
    fn truncated_or_tampered_bytes_do_not_parse() {
        let snapshot = replay(StateMachineKind::Kv, &random_ops(9, 30)).snapshot();
        let bytes = snapshot.to_bytes();
        assert_eq!(StateSnapshot::from_bytes(&bytes[..bytes.len() - 1]), None, "truncation");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(StateSnapshot::from_bytes(&trailing), None, "trailing garbage");
        let mut bad_tag = bytes;
        bad_tag[0] = 9;
        assert_eq!(StateSnapshot::from_bytes(&bad_tag), None, "unknown tag");
    }

    #[test]
    fn assembler_rejects_cross_transfer_and_conflicting_chunks() {
        let a = replay(StateMachineKind::Kv, &random_ops(1, 50)).snapshot();
        let b = replay(StateMachineKind::Kv, &random_ops(2, 50)).snapshot();
        let chunks_a = chunk_snapshot(&a, 64);
        let chunks_b = chunk_snapshot(&b, 64);
        assert!(chunks_a.len() > 1, "test needs a multi-chunk transfer");

        let mut asm = SnapshotAssembler::new();
        assert!(asm.offer(chunks_a[0].clone()));
        // A chunk of a different transfer is rejected...
        assert!(!asm.offer(chunks_b[1].clone()));
        // ...a duplicate of an accepted chunk is idempotent...
        assert!(asm.offer(chunks_a[0].clone()));
        // ...and a same-index chunk with different bytes is rejected.
        let mut forged = chunks_a[0].clone();
        forged.bytes[0] ^= 1;
        assert!(!asm.offer(forged));
        assert_eq!(asm.rejected(), 2);

        for chunk in &chunks_a[1..] {
            assert!(asm.offer(chunk.clone()));
        }
        assert_eq!(asm.assemble().expect("assembles"), a);
    }

    #[test]
    fn counter_snapshot_wire_bytes_match_legacy_accounting() {
        // The legacy checkpoint charged exactly 16 bytes per state entry; the
        // counter snapshot must keep that, or transfer-size goldens move.
        let ops = random_ops(3, 60);
        let snapshot = replay(StateMachineKind::Counter, &ops).snapshot();
        assert_eq!(snapshot.wire_bytes(), snapshot.entries() * 16);
    }
}
