//! The append-only round log.
//!
//! One entry per executed round, appended write-ahead (before the round's effects
//! are applied) and truncated when a checkpoint covers it. The log is generic over
//! the entry payload so this crate stays free of protocol types; `ava-hamava`
//! instantiates it with its `RoundRecord` (the `Arc`-shared certified round
//! packages of all clusters for one round).

use ava_types::Round;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A payload the round log can store: anything with a round number and an
/// accountable wire size (persist costs and state-transfer byte counts are derived
/// from it).
pub trait StoredEntry: Clone {
    /// The round the entry belongs to.
    fn round(&self) -> Round;
    /// Approximate serialized size of the entry in bytes.
    fn wire_size(&self) -> usize;
}

/// Shared entries qualify wherever their payload does (protocol crates log
/// `Arc`-shared records so appending and transferring cost pointer bumps).
impl<P: StoredEntry> StoredEntry for Arc<P> {
    fn round(&self) -> Round {
        self.as_ref().round()
    }

    fn wire_size(&self) -> usize {
        self.as_ref().wire_size()
    }
}

/// An append-only, checkpoint-truncatable log of per-round entries.
#[derive(Clone, Debug)]
pub struct RoundLog<P> {
    entries: BTreeMap<u64, P>,
    /// Rounds at or below this are covered by a checkpoint and no longer accepted.
    truncated_through: u64,
}

impl<P: StoredEntry> RoundLog<P> {
    /// An empty log.
    pub fn new() -> Self {
        RoundLog { entries: BTreeMap::new(), truncated_through: 0 }
    }

    /// Append the entry for its round. Returns the number of bytes persisted, or
    /// `None` when the append is rejected: the round is already present (an append
    /// is immutable) or already covered by a checkpoint (stale).
    pub fn append(&mut self, entry: P) -> Option<usize> {
        let round = entry.round().0;
        if round <= self.truncated_through || self.entries.contains_key(&round) {
            return None;
        }
        let bytes = entry.wire_size();
        self.entries.insert(round, entry);
        Some(bytes)
    }

    /// Drop every entry with round ≤ `through` (a checkpoint now covers them).
    /// Returns how many entries were removed.
    pub fn truncate_through(&mut self, through: Round) -> usize {
        self.truncated_through = self.truncated_through.max(through.0);
        let keep = self.entries.split_off(&(through.0 + 1));
        let removed = self.entries.len();
        self.entries = keep;
        removed
    }

    /// The entries with round > `after`, in ascending round order (the catch-up
    /// "log suffix").
    pub fn suffix(&self, after: Round) -> Vec<P> {
        self.entries.range(after.0 + 1..).map(|(_, e)| e.clone()).collect()
    }

    /// The entry for `round`, if present.
    pub fn get(&self, round: Round) -> Option<&P> {
        self.entries.get(&round.0)
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The lowest and highest rounds currently held.
    pub fn bounds(&self) -> Option<(Round, Round)> {
        let first = self.entries.keys().next()?;
        let last = self.entries.keys().next_back()?;
        Some((Round(*first), Round(*last)))
    }

    /// The highest round covered by a truncating checkpoint (0 = none).
    pub fn truncated_through(&self) -> Round {
        Round(self.truncated_through)
    }
}

impl<P: StoredEntry> Default for RoundLog<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Entry(u64, usize);

    impl StoredEntry for Entry {
        fn round(&self) -> Round {
            Round(self.0)
        }
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn append_is_immutable_per_round() {
        let mut log = RoundLog::new();
        assert_eq!(log.append(Entry(1, 100)), Some(100));
        assert_eq!(log.append(Entry(1, 999)), None, "a round appends once");
        assert_eq!(log.get(Round(1)), Some(&Entry(1, 100)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn truncation_at_checkpoint_boundary_drops_covered_rounds_only() {
        let mut log = RoundLog::new();
        for r in 1..=10 {
            log.append(Entry(r, 10));
        }
        assert_eq!(log.truncate_through(Round(8)), 8);
        assert_eq!(log.bounds(), Some((Round(9), Round(10))));
        // Entries at or below the checkpoint are stale and no longer accepted.
        assert_eq!(log.append(Entry(8, 10)), None);
        assert_eq!(log.append(Entry(3, 10)), None);
        assert_eq!(log.append(Entry(11, 10)), Some(10));
        assert_eq!(log.truncated_through(), Round(8));
    }

    #[test]
    fn suffix_returns_rounds_after_the_cut_in_order() {
        let mut log = RoundLog::new();
        for r in [5u64, 3, 9, 7] {
            log.append(Entry(r, 1));
        }
        let suffix = log.suffix(Round(5));
        assert_eq!(suffix, vec![Entry(7, 1), Entry(9, 1)]);
        assert!(log.suffix(Round(9)).is_empty());
        assert_eq!(log.suffix(Round(0)).len(), 4);
    }

    #[test]
    fn truncating_an_empty_range_is_a_no_op() {
        let mut log: RoundLog<Entry> = RoundLog::new();
        assert_eq!(log.truncate_through(Round(5)), 0);
        assert!(log.is_empty());
        assert_eq!(log.bounds(), None);
    }
}
