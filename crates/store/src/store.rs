//! The per-replica store: round log + latest checkpoint + persistence accounting.

use crate::checkpoint::Checkpoint;
use crate::log::{RoundLog, StoredEntry};
use ava_crypto::Digest;
use ava_types::Round;
use std::sync::Arc;

/// Configuration of a replica's durable store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreConfig {
    /// Take a checkpoint (and truncate the log) every this many rounds. The cadence
    /// is round-number based (`round % interval == 0`), so every replica of a
    /// cluster checkpoints at the same boundaries and checkpoint digests match
    /// across peers.
    pub checkpoint_interval: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { checkpoint_interval: 8 }
    }
}

impl StoreConfig {
    /// A config checkpointing every `interval` rounds.
    pub fn every(interval: u64) -> Self {
        StoreConfig { checkpoint_interval: interval.max(1) }
    }
}

/// Persistence counters (what the `RecoveryObserver` and `e10_recovery` report).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StoreStats {
    /// Log entries appended.
    pub appends: u64,
    /// Checkpoints installed.
    pub checkpoints: u64,
    /// Log entries dropped by checkpoint truncation.
    pub truncated_entries: u64,
    /// Total bytes persisted (log appends + checkpoint snapshots).
    pub bytes_persisted: u64,
    /// Appends rejected as duplicate or stale.
    pub rejected_appends: u64,
}

/// A replica's durable store: the only replica state that survives a crash →
/// restart cycle. Everything volatile is wiped by the restart hook; recovery
/// starts from [`ReplicaStore::recover`] and fills the gap via catch-up.
#[derive(Clone, Debug)]
pub struct ReplicaStore<P> {
    cfg: StoreConfig,
    log: RoundLog<P>,
    checkpoint: Option<Arc<Checkpoint>>,
    /// `(round, digest)` of every checkpoint ever installed, in installation
    /// order — the checkpoint *chain*. The snapshots themselves are dropped when
    /// superseded; the digests are kept so post-hoc integrity checks (the fuzzer's
    /// checkpoint-chain checker, forensic debugging) can audit the full history
    /// cheaply.
    chain: Vec<(Round, Digest)>,
    stats: StoreStats,
}

impl<P: StoredEntry> ReplicaStore<P> {
    /// An empty store with the given config.
    pub fn new(cfg: StoreConfig) -> Self {
        ReplicaStore {
            cfg,
            log: RoundLog::new(),
            checkpoint: None,
            chain: Vec::new(),
            stats: StoreStats::default(),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Append the record of an executed round (write-ahead: call before applying
    /// its effects). Returns the bytes persisted so the caller can charge the
    /// simulated fsync cost; rejected (duplicate/stale) appends persist nothing.
    pub fn append_round(&mut self, entry: P) -> usize {
        match self.log.append(entry) {
            Some(bytes) => {
                self.stats.appends += 1;
                self.stats.bytes_persisted += bytes as u64;
                bytes
            }
            None => {
                self.stats.rejected_appends += 1;
                0
            }
        }
    }

    /// Whether the checkpoint cadence says round `round` should end with a
    /// checkpoint. A zero interval (possible via a struct-literal `StoreConfig`)
    /// is treated as 1 — checkpoint every round — rather than dividing by zero.
    pub fn should_checkpoint(&self, round: Round) -> bool {
        round.0 > 0 && round.0 % self.cfg.checkpoint_interval.max(1) == 0
    }

    /// Install a checkpoint and truncate the log through its round. Returns the
    /// bytes persisted for the snapshot. A checkpoint older than the current one is
    /// rejected (returns 0).
    pub fn install_checkpoint(&mut self, checkpoint: Arc<Checkpoint>) -> usize {
        if self.checkpoint.as_ref().is_some_and(|cur| cur.round >= checkpoint.round) {
            return 0;
        }
        let bytes = checkpoint.wire_size();
        self.stats.checkpoints += 1;
        self.stats.bytes_persisted += bytes as u64;
        self.stats.truncated_entries += self.log.truncate_through(checkpoint.round) as u64;
        self.chain.push((checkpoint.round, checkpoint.digest));
        self.checkpoint = Some(checkpoint);
        bytes
    }

    /// The most recent checkpoint, if any.
    pub fn latest_checkpoint(&self) -> Option<Arc<Checkpoint>> {
        self.checkpoint.clone()
    }

    /// The `(round, digest)` chain of every checkpoint installed so far, in
    /// installation order. Rounds are strictly increasing (older installs are
    /// rejected), so any non-monotonic chain is itself an integrity violation.
    pub fn checkpoint_chain(&self) -> &[(Round, Digest)] {
        &self.chain
    }

    /// The log entries with round > `after`, ascending (the catch-up suffix).
    pub fn suffix(&self, after: Round) -> Vec<P> {
        self.log.suffix(after)
    }

    /// What a restarting replica recovers from disk: the latest checkpoint plus
    /// every log entry after it.
    pub fn recover(&self) -> (Option<Arc<Checkpoint>>, Vec<P>) {
        let after = self.checkpoint.as_ref().map(|c| c.round).unwrap_or(Round(0));
        (self.checkpoint.clone(), self.log.suffix(after))
    }

    /// Number of log entries currently held.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Persistence counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::Membership;
    use std::collections::BTreeMap;

    #[derive(Clone, Debug, PartialEq)]
    struct Entry(u64);

    impl StoredEntry for Entry {
        fn round(&self) -> Round {
            Round(self.0)
        }
        fn wire_size(&self) -> usize {
            50
        }
    }

    fn checkpoint(round: u64) -> Arc<Checkpoint> {
        Arc::new(Checkpoint::new(
            Round(round),
            ava_state::StateSnapshot::Counter(BTreeMap::new()),
            Membership::new(),
            0,
            0,
        ))
    }

    #[test]
    fn cadence_fires_on_interval_boundaries_only() {
        let store: ReplicaStore<Entry> = ReplicaStore::new(StoreConfig::every(4));
        assert!(!store.should_checkpoint(Round(0)));
        assert!(!store.should_checkpoint(Round(3)));
        assert!(store.should_checkpoint(Round(4)));
        assert!(store.should_checkpoint(Round(8)));
        assert!(!store.should_checkpoint(Round(9)));
    }

    #[test]
    fn checkpoint_truncates_log_and_recover_returns_the_suffix() {
        let mut store = ReplicaStore::new(StoreConfig::every(4));
        for r in 1..=6 {
            assert_eq!(store.append_round(Entry(r)), 50);
        }
        assert!(store.install_checkpoint(checkpoint(4)) > 0);
        assert_eq!(store.log_len(), 2);
        let (cp, suffix) = store.recover();
        assert_eq!(cp.expect("checkpoint").round, Round(4));
        assert_eq!(suffix, vec![Entry(5), Entry(6)]);
        let stats = store.stats();
        assert_eq!(stats.appends, 6);
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.truncated_entries, 4);
        assert_eq!(stats.bytes_persisted, 6 * 50 + checkpoint(4).wire_size() as u64);
    }

    #[test]
    fn stale_appends_and_old_checkpoints_are_rejected() {
        let mut store = ReplicaStore::new(StoreConfig::every(4));
        store.append_round(Entry(5));
        store.install_checkpoint(checkpoint(4));
        // A round covered by the checkpoint is stale; a duplicate append likewise.
        assert_eq!(store.append_round(Entry(3)), 0);
        assert_eq!(store.append_round(Entry(5)), 0);
        assert_eq!(store.stats().rejected_appends, 2);
        // Installing an older checkpoint must not roll the store back.
        assert_eq!(store.install_checkpoint(checkpoint(2)), 0);
        assert_eq!(store.latest_checkpoint().expect("kept").round, Round(4));
    }

    #[test]
    fn checkpoint_chain_records_installs_in_order_and_skips_rejects() {
        let mut store: ReplicaStore<Entry> = ReplicaStore::new(StoreConfig::every(4));
        assert!(store.checkpoint_chain().is_empty());
        store.install_checkpoint(checkpoint(4));
        store.install_checkpoint(checkpoint(8));
        // A stale install is rejected and must not pollute the chain.
        assert_eq!(store.install_checkpoint(checkpoint(4)), 0);
        let chain = store.checkpoint_chain();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].0, Round(4));
        assert_eq!(chain[1].0, Round(8));
        assert_eq!(chain[0].1, checkpoint(4).digest, "chain keeps the canonical digest");
        assert!(chain.windows(2).all(|w| w[0].0 < w[1].0), "chain rounds strictly increase");
    }

    #[test]
    fn recover_without_checkpoint_returns_the_whole_log() {
        let mut store = ReplicaStore::new(StoreConfig::default());
        store.append_round(Entry(1));
        store.append_round(Entry(2));
        let (cp, suffix) = store.recover();
        assert!(cp.is_none());
        assert_eq!(suffix.len(), 2);
    }
}
