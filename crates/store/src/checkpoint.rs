//! Checkpoints: digest-certified snapshots of executed state at a round boundary.
//!
//! Every replica of a cluster executes the same rounds in the same order, so the
//! state after round `r` is identical at every correct replica and a checkpoint's
//! digest is a cluster-wide commitment. A restarted replica does not trust any
//! single peer's checkpoint: the [`CheckpointCollector`] requires `f + 1` distinct
//! senders to report the *same* `(round, digest)` before a checkpoint is adopted —
//! with at most `f` Byzantine replicas, at least one of the matching senders is
//! correct (BFT-SMaRt's collaborative state transfer uses the same argument).

use ava_crypto::{Digest, Sha256};
use ava_state::{chunk_snapshot, SnapshotChunk, StateSnapshot};
use ava_types::{Membership, ReplicaId, Round};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A snapshot of the replicated state after executing round [`Checkpoint::round`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Checkpoint {
    /// The last executed round the snapshot covers.
    pub round: Round,
    /// The replicated state image after `round` (counter map or keyed KV
    /// entries — see `ava-state`). The counter variant's digest byte stream
    /// and wire size are bit-identical to the pre-`ava-state` format.
    pub state: StateSnapshot,
    /// The membership map after applying every reconfiguration up to `round`.
    pub membership: Membership,
    /// The cluster's leader timestamp as of `round` (so a replica recovering
    /// from its *own* store rejoins with a consistent leader view). Not part of
    /// the digest: leader changes land at different instants at different
    /// replicas, so committing the timestamp would split otherwise-identical
    /// same-round snapshots below the `f + 1` agreement threshold. Peer-driven
    /// catch-up takes its leader context from the reply, not the snapshot.
    pub leader_ts: u64,
    /// The first local-log height NOT yet packed into an executed round as of
    /// `round`. Every correct replica packs its cluster's block stream into
    /// rounds at the same height boundaries, so this is round-deterministic and
    /// committed in the digest. A replica adopting the snapshot resumes packing
    /// its local block stream exactly here — without the anchor, a recovered
    /// replica would re-pack (or drop) blocks its peers already assigned to
    /// earlier rounds and silently diverge.
    pub next_height: u64,
    /// Canonical digest over the round-deterministic content (round, state,
    /// membership, next_height), computed at construction time.
    pub digest: Digest,
}

impl Checkpoint {
    /// Build a checkpoint, computing its canonical digest.
    pub fn new(
        round: Round,
        state: StateSnapshot,
        membership: Membership,
        leader_ts: u64,
        next_height: u64,
    ) -> Self {
        let digest = Self::digest_of(round, &state, &membership, next_height);
        Checkpoint { round, state, membership, leader_ts, next_height, digest }
    }

    /// The canonical digest of a checkpoint's round-deterministic content.
    /// `BTreeMap` iteration (inside the snapshot's byte stream) and the
    /// membership map's sorted per-cluster member lists make the byte stream
    /// deterministic across replicas.
    pub fn digest_of(
        round: Round,
        state: &StateSnapshot,
        membership: &Membership,
        next_height: u64,
    ) -> Digest {
        let mut h = Sha256::new();
        h.update(&round.0.to_le_bytes());
        h.update(&next_height.to_le_bytes());
        state.hash_into(&mut h);
        for (cluster, info) in membership.iter() {
            h.update(&cluster.0.to_le_bytes());
            h.update(&info.id.0.to_le_bytes());
            h.update(&[info.region.index() as u8]);
        }
        Digest(h.finalize())
    }

    /// Whether the stored digest matches the content (detects a corrupted or
    /// tampered snapshot).
    pub fn verify(&self) -> bool {
        self.digest == Self::digest_of(self.round, &self.state, &self.membership, self.next_height)
    }

    /// Approximate wire size of the snapshot in bytes (state body + membership
    /// entries + header), used for transfer-size accounting.
    pub fn wire_size(&self) -> usize {
        64 + self.state.wire_bytes() + self.membership.total_replicas() * 12
    }

    /// Split the state image into `≤ max_chunk_bytes` digest-certified pieces
    /// for chunked transfer (reassembly is order-insensitive — see
    /// `ava_state::SnapshotAssembler`).
    pub fn chunks(&self, max_chunk_bytes: usize) -> Vec<SnapshotChunk> {
        chunk_snapshot(&self.state, max_chunk_bytes)
    }
}

/// Collects peer-reported checkpoints during catch-up until `threshold` distinct
/// senders agree on the same `(round, digest)`.
///
/// Offers carrying a corrupted snapshot (stored digest ≠ content digest) are
/// rejected outright and counted, so a Byzantine peer cannot poison the vote with a
/// snapshot that would fail verification after adoption.
#[derive(Clone, Debug, Default)]
pub struct CheckpointCollector {
    threshold: usize,
    votes: BTreeMap<(Round, Digest), BTreeSet<ReplicaId>>,
    snapshots: BTreeMap<(Round, Digest), Arc<Checkpoint>>,
    rejected: usize,
}

impl CheckpointCollector {
    /// A collector requiring `threshold` matching reports (use `f + 1` for the
    /// cluster being rejoined).
    pub fn new(threshold: usize) -> Self {
        CheckpointCollector { threshold: threshold.max(1), ..Self::default() }
    }

    /// Record `sender`'s checkpoint. Returns `false` (and counts the rejection) when
    /// the snapshot fails integrity verification; duplicate reports by the same
    /// sender for the same `(round, digest)` are idempotent.
    pub fn offer(&mut self, sender: ReplicaId, checkpoint: Arc<Checkpoint>) -> bool {
        if !checkpoint.verify() {
            self.rejected += 1;
            return false;
        }
        let key = (checkpoint.round, checkpoint.digest);
        self.votes.entry(key).or_default().insert(sender);
        self.snapshots.entry(key).or_insert(checkpoint);
        true
    }

    /// The highest-round checkpoint that `threshold` distinct senders agree on, if
    /// any.
    pub fn agreed(&self) -> Option<Arc<Checkpoint>> {
        self.votes
            .iter()
            .rev()
            .find(|(_, senders)| senders.len() >= self.threshold)
            .and_then(|(key, _)| self.snapshots.get(key).cloned())
    }

    /// Number of corrupted offers rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Whether two *same-round* candidates with different digests have been
    /// offered. Correct replicas compute round-deterministic snapshots, so two
    /// digests for one round is sound evidence that some sender lied (a
    /// self-consistent fabrication passes `verify()` but cannot match the
    /// honest digest). Candidates at *different* rounds are not evidence —
    /// peers legitimately straddle a checkpoint cadence boundary.
    pub fn conflicting(&self) -> bool {
        let mut rounds: Vec<Round> = self.votes.keys().map(|(round, _)| *round).collect();
        rounds.sort();
        rounds.windows(2).any(|w| w[0] == w[1])
    }

    /// Number of distinct `(round, digest)` candidates seen.
    pub fn candidates(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{ClusterId, Region, ReplicaInfo};

    fn membership(n: u32) -> Membership {
        let mut m = Membership::new();
        for i in 0..n {
            m.add(ClusterId(0), ReplicaInfo { id: ReplicaId(i), region: Region::UsWest });
        }
        m
    }

    fn counter_state(writes: u64) -> StateSnapshot {
        StateSnapshot::Counter((0..writes).map(|k| (k, k + 1)).collect())
    }

    fn checkpoint(round: u64, writes: u64) -> Checkpoint {
        Checkpoint::new(Round(round), counter_state(writes), membership(4), 2, round * 3)
    }

    fn corrupt(cp: &mut Checkpoint) {
        let StateSnapshot::Counter(state) = &mut cp.state else {
            panic!("test checkpoints carry counter state");
        };
        state.insert(99, 7); // mutate the snapshot after digest computation
    }

    #[test]
    fn digest_commits_to_round_deterministic_content() {
        let base = checkpoint(8, 3);
        assert_ne!(base.digest, checkpoint(9, 3).digest, "round must be committed");
        assert_ne!(base.digest, checkpoint(8, 4).digest, "state must be committed");
        let grown = Checkpoint::new(Round(8), base.state.clone(), membership(5), 2, 24);
        assert_ne!(base.digest, grown.digest, "membership must be committed");
        let moved = Checkpoint::new(Round(8), base.state.clone(), membership(4), 2, 25);
        assert_ne!(base.digest, moved.digest, "next_height must be committed");
        assert_eq!(base.digest, checkpoint(8, 3).digest, "equal content, equal digest");
        // Leader timestamps land at different instants at different replicas, so
        // they must NOT split same-round digests (the f+1 agreement depends on it).
        let other_ts = Checkpoint::new(Round(8), base.state.clone(), membership(4), 3, 24);
        assert_eq!(base.digest, other_ts.digest, "leader_ts must not be committed");
    }

    #[test]
    fn counter_digest_matches_the_legacy_byte_stream() {
        // The pre-`ava-state` digest hashed round, next_height, state.len(),
        // each (key, counter) pair, then the membership — all LE. A counter
        // snapshot must reproduce that stream exactly, or every historical
        // checkpoint digest (and the determinism goldens built on them) moves.
        let cp = checkpoint(8, 3);
        let mut h = Sha256::new();
        h.update(&8u64.to_le_bytes());
        h.update(&24u64.to_le_bytes());
        let StateSnapshot::Counter(state) = &cp.state else { unreachable!() };
        h.update(&(state.len() as u64).to_le_bytes());
        for (k, v) in state {
            h.update(&k.to_le_bytes());
            h.update(&v.to_le_bytes());
        }
        for (cluster, info) in cp.membership.iter() {
            h.update(&cluster.0.to_le_bytes());
            h.update(&info.id.0.to_le_bytes());
            h.update(&[info.region.index() as u8]);
        }
        assert_eq!(cp.digest, Digest(h.finalize()));
        assert_eq!(cp.wire_size(), 64 + 3 * 16 + 4 * 12, "legacy wire accounting");
    }

    #[test]
    fn kv_checkpoints_carry_value_bytes_and_chunk_cleanly() {
        use ava_state::{machine_for, SnapshotAssembler, StateMachineKind};
        use ava_types::{ClientId, Transaction};
        let mut m = machine_for(StateMachineKind::Kv);
        for seq in 0..40u64 {
            m.apply(Round(2), &Transaction::write(ClientId(1), seq, seq % 16, 128));
        }
        let cp = Checkpoint::new(Round(8), m.snapshot(), membership(4), 2, 24);
        assert!(cp.verify());
        assert!(
            cp.wire_size() > 16 * 128,
            "kv snapshots must account real value bytes, got {}",
            cp.wire_size()
        );
        // Chunked transfer round-trips through the order-insensitive assembler.
        let mut chunks = cp.chunks(512);
        assert!(chunks.len() > 1);
        chunks.reverse();
        let mut asm = SnapshotAssembler::new();
        for chunk in chunks {
            assert!(asm.offer(chunk));
        }
        assert_eq!(asm.assemble().expect("assembles"), cp.state);
        // Same logical content under the two machines must NOT collide.
        let counter = checkpoint(8, 16);
        assert_ne!(cp.digest, counter.digest);
    }

    #[test]
    fn tampered_checkpoint_fails_verification() {
        let mut cp = checkpoint(8, 3);
        assert!(cp.verify());
        corrupt(&mut cp);
        assert!(!cp.verify());
    }

    #[test]
    fn collector_requires_threshold_matching_reports() {
        let mut c = CheckpointCollector::new(2);
        assert!(c.offer(ReplicaId(1), Arc::new(checkpoint(8, 3))));
        assert!(c.agreed().is_none(), "one report is not agreement");
        // A duplicate report by the same sender must not count twice.
        assert!(c.offer(ReplicaId(1), Arc::new(checkpoint(8, 3))));
        assert!(c.agreed().is_none());
        assert!(c.offer(ReplicaId(2), Arc::new(checkpoint(8, 3))));
        assert_eq!(c.agreed().expect("agreed").round, Round(8));
    }

    #[test]
    fn collector_rejects_corrupted_offers() {
        let mut c = CheckpointCollector::new(1);
        let mut bad = checkpoint(8, 3);
        corrupt(&mut bad); // forged state under the old digest
        assert!(!c.offer(ReplicaId(1), Arc::new(bad)));
        assert_eq!(c.rejected(), 1);
        assert!(c.agreed().is_none());
    }

    #[test]
    fn collector_prefers_the_highest_agreed_round() {
        let mut c = CheckpointCollector::new(2);
        for sender in [1, 2, 3] {
            assert!(c.offer(ReplicaId(sender), Arc::new(checkpoint(8, 3))));
        }
        // A newer checkpoint reaches the threshold later; it must win.
        assert!(c.offer(ReplicaId(4), Arc::new(checkpoint(16, 5))));
        assert_eq!(c.agreed().expect("agreed").round, Round(8), "r16 has one vote");
        assert!(c.offer(ReplicaId(5), Arc::new(checkpoint(16, 5))));
        assert_eq!(c.agreed().expect("agreed").round, Round(16));
        assert_eq!(c.candidates(), 2);
    }

    #[test]
    fn conflicting_flags_same_round_digest_splits_only() {
        let mut c = CheckpointCollector::new(2);
        assert!(c.offer(ReplicaId(1), Arc::new(checkpoint(8, 3))));
        // Different rounds: a cadence-boundary straddle, not a lie.
        assert!(c.offer(ReplicaId(2), Arc::new(checkpoint(16, 5))));
        assert!(!c.conflicting());
        // Same round, different state ⇒ different digest ⇒ someone fabricated one.
        assert!(c.offer(ReplicaId(3), Arc::new(checkpoint(8, 4))));
        assert!(c.conflicting());
    }

    #[test]
    fn mismatched_digests_do_not_pool_votes() {
        // Two senders at different rounds (e.g. one straddling a checkpoint
        // boundary) must not be counted as agreeing.
        let mut c = CheckpointCollector::new(2);
        assert!(c.offer(ReplicaId(1), Arc::new(checkpoint(8, 3))));
        assert!(c.offer(ReplicaId(2), Arc::new(checkpoint(16, 3))));
        assert!(c.agreed().is_none());
    }
}
