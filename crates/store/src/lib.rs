//! # ava-store
//!
//! Simulation-grade durable storage for Hamava replicas: a per-replica append-only
//! **round log** of certified round records, periodic **checkpoints** (a
//! digest-certified snapshot of executed state + membership at a round boundary that
//! lets the log be truncated), and the [`CheckpointCollector`] a restarted replica
//! uses to agree on a peer-supplied checkpoint during catch-up.
//!
//! "Durable" here means: the store is the one piece of replica state that survives a
//! [`crash → restart`](https://en.wikipedia.org/wiki/Crash_recovery) cycle in the
//! simulator — everything else (consensus votes, in-flight rounds, client
//! bookkeeping) is wiped by `Actor::on_restart` and must be re-earned via the
//! catch-up protocol in `ava-hamava`. Persistence has a measurable price: every
//! append and checkpoint charges the simulated fsync latency of the
//! `ava-simnet` cost model, so durability shows up in latency breakdowns the same
//! way signature verification does.
//!
//! The crate is deliberately protocol-agnostic: the log is generic over a
//! [`StoredEntry`] payload (in `ava-hamava` that payload is the `RoundRecord` of
//! `Arc`-shared round packages), and checkpoints carry the concrete replicated state
//! of this reproduction (the key-value map, the membership map, the leader
//! timestamp). See `DESIGN.md` §6 for the layout and the catch-up message flow.

pub mod checkpoint;
pub mod log;
pub mod store;

pub use checkpoint::{Checkpoint, CheckpointCollector};
pub use log::{RoundLog, StoredEntry};
pub use store::{ReplicaStore, StoreConfig, StoreStats};
