//! Zipfian key sampler (the distribution YCSB uses for skewed access patterns).
//!
//! Implements the standard rejection-free inverse-CDF approximation from Gray et al.
//! ("Quickly generating billion-record synthetic databases"), the same construction
//! YCSB's `ZipfianGenerator` uses.

use rand::Rng;

/// A Zipfian distribution over `0..n` with skew parameter `theta`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Create a sampler over `0..n` with skew `theta` (YCSB default 0.99; the paper's
    /// runs use the YCSB Zipfian default).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; key spaces in the experiments are at most ~1e6.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of keys.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Sample a key in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        let key = (self.n as f64 * spread) as u64;
        key.min(self.n - 1)
    }

    /// The zeta constant for 2 items (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(1000, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed_toward_small_keys() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hot = 0usize;
        let samples = 50_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 100 {
                hot += 1;
            }
        }
        // With theta=0.99, far more than 1% of accesses hit the hottest 1% of keys.
        assert!(hot as f64 / samples as f64 > 0.2, "hot fraction {}", hot as f64 / samples as f64);
    }

    #[test]
    fn low_theta_is_close_to_uniform() {
        let z = Zipfian::new(1000, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hot = 0usize;
        let samples = 50_000;
        for _ in 0..samples {
            if z.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        let frac = hot as f64 / samples as f64;
        assert!(frac < 0.1, "near-uniform sampler put {frac} of mass on 1% of keys");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipfian::new(500, 0.9);
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn rejects_empty_key_space() {
        let _ = Zipfian::new(0, 0.9);
    }
}
