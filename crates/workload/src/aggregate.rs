//! Aggregate virtual-client workload: one generator standing in for 10⁴–10⁶
//! open-loop clients.
//!
//! Simulating every client as its own actor caps honest workload scale: replica
//! cost *and* simulator event volume grow per client. The aggregate model
//! collapses the superposition of per-client open-loop arrival processes into a
//! single deterministic event stream: arrivals are exponentially spaced at the
//! total offered rate (the superposition of independent Poisson processes is a
//! Poisson process at the summed rate), and each arrival is attributed to a
//! virtual client drawn from a Zipfian activity distribution — a few hot clients
//! issue most of the traffic, a long tail issues the rest, which is also what a
//! Zipf key-popularity assumption implies for per-user request rates.
//!
//! Determinism: the stream owns its RNG (seeded explicitly) instead of drawing
//! from the simulation's shared RNG, so the generated `(time, transaction)`
//! sequence is a pure function of `(load, base_client, seed)` — identical no
//! matter how the deployment is shaped or which actors interleave around it.
//! The broker-path-vs-direct-path equivalence test relies on exactly this.

use crate::spec::WorkloadSpec;
use crate::zipf::Zipfian;
use ava_types::{ClientId, Duration, Time, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// First [`ClientId`] of the virtual-client id space. Real (actor-backed)
/// clients are numbered from 0 and map onto simulated nodes; virtual clients
/// exist only as transaction-id tags and never collide with them.
pub const VIRTUAL_CLIENT_BASE: u32 = 10_000_000;

/// Id-space stride between two aggregate generators: each gets this many
/// virtual client ids to itself.
pub const VIRTUAL_CLIENT_STRIDE: u32 = 4_000_000;

/// The base virtual [`ClientId`] of aggregate generator number `index`.
pub fn virtual_client_base(index: u32) -> u32 {
    VIRTUAL_CLIENT_BASE + index * VIRTUAL_CLIENT_STRIDE
}

/// Whether `client` belongs to the virtual-client id space (issued by an
/// aggregate generator rather than a client actor).
pub fn is_virtual_client(client: ClientId) -> bool {
    client.0 >= VIRTUAL_CLIENT_BASE
}

/// Offered load of one aggregate generator: how many virtual clients it stands
/// in for, how fast they collectively issue, and what they issue.
#[derive(Clone, Debug)]
pub struct AggregateLoad {
    /// Number of virtual clients collapsed into the generator (10⁴–10⁶).
    pub virtual_clients: u64,
    /// Total open-loop arrival rate across all virtual clients, in
    /// transactions per second.
    pub offered_tps: u64,
    /// Issuance window: arrivals are generated for `[0, issue_for)` of virtual
    /// time only. Keeping this strictly shorter than the run lets in-flight
    /// operations drain, so completed-transaction sets are comparable across
    /// submission paths.
    pub issue_for: Duration,
    /// Zipfian skew of per-client activity (which virtual client an arrival is
    /// attributed to). `0.0` is near-uniform.
    pub client_theta: f64,
    /// What the virtual clients issue (read ratio, key space, payload).
    pub workload: WorkloadSpec,
}

impl Default for AggregateLoad {
    fn default() -> Self {
        AggregateLoad {
            virtual_clients: 100_000,
            offered_tps: 2_000,
            issue_for: Duration::from_secs(8),
            client_theta: 0.9,
            workload: WorkloadSpec::default(),
        }
    }
}

/// The collapsed arrival stream of one aggregate generator: a deterministic,
/// time-ordered sequence of `(arrival time, transaction)` pairs.
#[derive(Clone, Debug)]
pub struct AggregateStream {
    load: AggregateLoad,
    base_client: u32,
    rng: StdRng,
    clients: Zipfian,
    keys: Zipfian,
    /// Per-virtual-client next sequence number (transaction ids must be
    /// globally unique, and a hot client issues many transactions).
    seqs: HashMap<u32, u64>,
    next_at: Time,
    issued: u64,
    exhausted: bool,
}

impl AggregateStream {
    /// Build the stream. `base_client` is the first virtual client id of this
    /// generator's range (see [`virtual_client_base`]); `seed` fully determines
    /// the arrival sequence together with `load` and `base_client`.
    pub fn new(load: AggregateLoad, base_client: u32, seed: u64) -> Self {
        assert!(load.virtual_clients > 0, "aggregate load needs at least one virtual client");
        assert!(load.offered_tps > 0, "aggregate load needs a positive offered rate");
        assert!(
            load.virtual_clients <= VIRTUAL_CLIENT_STRIDE as u64,
            "virtual clients exceed the generator's id range"
        );
        let clients = Zipfian::new(load.virtual_clients, load.client_theta);
        let keys = load.workload.sampler();
        let mut stream = AggregateStream {
            load,
            base_client,
            rng: StdRng::seed_from_u64(seed),
            clients,
            keys,
            seqs: HashMap::new(),
            next_at: Time::ZERO,
            issued: 0,
            exhausted: false,
        };
        stream.advance_arrival();
        stream
    }

    /// The load spec driving the stream.
    pub fn load(&self) -> &AggregateLoad {
        &self.load
    }

    /// Transactions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether the issuance window is over and the stream is dry.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Draw the next exponential inter-arrival gap and advance the arrival
    /// clock; marks the stream exhausted once it crosses the issuance window.
    fn advance_arrival(&mut self) {
        let mean_us = 1_000_000.0 / self.load.offered_tps as f64;
        let u: f64 = self.rng.gen();
        // Inverse-CDF exponential sampling; 1 - u is in (0, 1].
        let gap = (-(1.0 - u).ln() * mean_us).max(0.0) as u64;
        self.next_at = self.next_at + Duration::from_micros(gap);
        if self.next_at.as_micros() >= self.load.issue_for.as_micros() {
            self.exhausted = true;
        }
    }

    /// All arrivals with time `< now`, in arrival order. Called once per actor
    /// tick: one handler invocation absorbs every virtual-client arrival of the
    /// tick, which is the collapse that makes 10⁵+ clients per actor cheap.
    pub fn drain_until(&mut self, now: Time) -> Vec<(Time, Transaction)> {
        let mut out = Vec::new();
        while !self.exhausted && self.next_at < now {
            let at = self.next_at;
            let rank = self.clients.sample(&mut self.rng) as u32;
            let client = ClientId(self.base_client + rank);
            let seq = self.seqs.entry(rank).or_insert(0);
            let tx = self.load.workload.next_transaction(client, *seq, &self.keys, &mut self.rng);
            *seq += 1;
            self.issued += 1;
            out.push((at, tx));
            self.advance_arrival();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_load() -> AggregateLoad {
        AggregateLoad {
            virtual_clients: 10_000,
            offered_tps: 5_000,
            issue_for: Duration::from_secs(2),
            ..AggregateLoad::default()
        }
    }

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let drain = |seed| {
            let mut s = AggregateStream::new(small_load(), virtual_client_base(0), seed);
            s.drain_until(Time::from_secs(1))
        };
        assert_eq!(drain(7), drain(7));
        assert_ne!(drain(7), drain(8));
    }

    #[test]
    fn arrival_rate_is_roughly_the_offered_rate() {
        let mut s = AggregateStream::new(small_load(), virtual_client_base(0), 3);
        let arrivals = s.drain_until(Time::from_secs(2));
        // 5 000 tps over a 2 s window: expect ~10 000 arrivals (±10%).
        let n = arrivals.len() as f64;
        assert!((8_000.0..12_000.0).contains(&n), "got {n} arrivals");
        // Time-ordered.
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn issuance_stops_at_the_window_and_ids_stay_in_range() {
        let mut s = AggregateStream::new(small_load(), virtual_client_base(2), 5);
        let arrivals = s.drain_until(Time::from_secs(60));
        assert!(s.exhausted());
        assert!(arrivals.iter().all(|(at, _)| *at < Time::from_secs(2)));
        let base = virtual_client_base(2);
        for (_, tx) in &arrivals {
            assert!(is_virtual_client(tx.id.client));
            assert!(tx.id.client.0 >= base && tx.id.client.0 < base + 10_000);
        }
        // Nothing more after exhaustion.
        assert!(s.drain_until(Time::from_secs(120)).is_empty());
    }

    #[test]
    fn transaction_ids_are_unique_across_the_stream() {
        let mut s = AggregateStream::new(small_load(), virtual_client_base(0), 11);
        let arrivals = s.drain_until(Time::from_secs(2));
        let mut ids: Vec<_> = arrivals.iter().map(|(_, tx)| tx.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate transaction ids in the stream");
    }

    #[test]
    fn client_activity_is_zipf_skewed() {
        let mut load = small_load();
        load.client_theta = 0.99;
        let mut s = AggregateStream::new(load, virtual_client_base(0), 13);
        let arrivals = s.drain_until(Time::from_secs(2));
        let hot =
            arrivals.iter().filter(|(_, tx)| tx.id.client.0 - VIRTUAL_CLIENT_BASE < 100).count();
        // The hottest 1% of virtual clients issue far more than 1% of traffic.
        assert!(
            hot as f64 / arrivals.len() as f64 > 0.2,
            "hot fraction {}",
            hot as f64 / arrivals.len() as f64
        );
    }

    #[test]
    fn drains_are_incremental() {
        let mut whole = AggregateStream::new(small_load(), virtual_client_base(0), 21);
        let all = whole.drain_until(Time::from_secs(2));
        let mut chunked = AggregateStream::new(small_load(), virtual_client_base(0), 21);
        let mut collected = Vec::new();
        for ms in (0..2_100).step_by(7) {
            collected.extend(chunked.drain_until(Time::from_millis(ms)));
        }
        assert_eq!(all, collected, "chunked drains must reproduce the whole stream");
    }
}
