//! Workload specification: read/write mix, key space, skew, payload size.

use crate::zipf::Zipfian;
use ava_types::{ClientId, Transaction};
use rand::Rng;

/// A YCSB-like workload specification.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Fraction of read transactions (the paper uses 0.85).
    pub read_ratio: f64,
    /// Number of distinct keys.
    pub key_space: u64,
    /// Zipfian skew parameter.
    pub zipf_theta: f64,
    /// Payload size of write operations in bytes (the paper uses 1 KB).
    pub payload_size: u32,
}

/// The paper's default workload: YCSB, 85% reads, Zipfian keys, 1 KB operations.
pub const YCSB_DEFAULT: WorkloadSpec =
    WorkloadSpec { read_ratio: 0.85, key_space: 100_000, zipf_theta: 0.9, payload_size: 1024 };

impl Default for WorkloadSpec {
    fn default() -> Self {
        YCSB_DEFAULT
    }
}

impl WorkloadSpec {
    /// A write-only variant (used by the reconfiguration experiments E5.2).
    pub fn write_only(mut self) -> Self {
        self.read_ratio = 0.0;
        self
    }

    /// Build the Zipfian sampler for this spec.
    pub fn sampler(&self) -> Zipfian {
        Zipfian::new(self.key_space, self.zipf_theta)
    }

    /// Generate the next transaction for `client` with sequence number `seq`.
    pub fn next_transaction<R: Rng + ?Sized>(
        &self,
        client: ClientId,
        seq: u64,
        sampler: &Zipfian,
        rng: &mut R,
    ) -> Transaction {
        let key = sampler.sample(rng);
        if rng.gen::<f64>() < self.read_ratio {
            Transaction::read(client, seq, key)
        } else {
            Transaction::write(client, seq, key, self.payload_size)
        }
    }
}

/// A generator bound to one client, producing a deterministic transaction stream.
#[derive(Clone, Debug)]
pub struct ClientWorkload {
    spec: WorkloadSpec,
    sampler: Zipfian,
    client: ClientId,
    next_seq: u64,
}

impl ClientWorkload {
    /// Create a generator for `client`.
    pub fn new(spec: WorkloadSpec, client: ClientId) -> Self {
        let sampler = spec.sampler();
        ClientWorkload { spec, sampler, client, next_seq: 0 }
    }

    /// The next transaction in the stream.
    pub fn next_tx<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Transaction {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.spec.next_transaction(self.client, seq, &self.sampler, rng)
    }

    /// Number of transactions generated so far.
    pub fn issued(&self) -> u64 {
        self.next_seq
    }

    /// The spec currently driving the generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Replace the spec mid-stream (the scenario API's `WorkloadSwitch` event).
    /// The sequence counter keeps running, so transaction ids issued after the
    /// switch never collide with those issued before it.
    pub fn switch_spec(&mut self, spec: WorkloadSpec) {
        self.sampler = spec.sampler();
        self.spec = spec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_parameters() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.read_ratio, 0.85);
        assert_eq!(spec.payload_size, 1024);
    }

    #[test]
    fn read_write_mix_is_roughly_respected() {
        let spec = WorkloadSpec::default();
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(11);
        let total = 10_000;
        let reads = (0..total)
            .filter(|&i| !spec.next_transaction(ClientId(0), i, &sampler, &mut rng).kind.is_write())
            .count();
        let ratio = reads as f64 / total as f64;
        assert!((ratio - 0.85).abs() < 0.03, "observed read ratio {ratio}");
    }

    #[test]
    fn write_only_spec_only_writes() {
        let spec = WorkloadSpec::default().write_only();
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..500 {
            assert!(spec.next_transaction(ClientId(1), i, &sampler, &mut rng).kind.is_write());
        }
    }

    #[test]
    fn switch_spec_keeps_the_sequence_counter_running() {
        let mut wl = ClientWorkload::new(WorkloadSpec::default(), ClientId(2));
        let mut rng = StdRng::seed_from_u64(4);
        let a = wl.next_tx(&mut rng);
        wl.switch_spec(WorkloadSpec::default().write_only());
        let b = wl.next_tx(&mut rng);
        assert!(b.id.seq > a.id.seq, "sequence must continue across the switch");
        assert_eq!(wl.spec().read_ratio, 0.0);
        for _ in 0..200 {
            assert!(wl.next_tx(&mut rng).kind.is_write());
        }
    }

    #[test]
    fn client_workload_issues_unique_sequence_numbers() {
        let mut wl = ClientWorkload::new(WorkloadSpec::default(), ClientId(3));
        let mut rng = StdRng::seed_from_u64(9);
        let a = wl.next_tx(&mut rng);
        let b = wl.next_tx(&mut rng);
        assert_eq!(a.id.client, ClientId(3));
        assert_ne!(a.id.seq, b.id.seq);
        assert_eq!(wl.issued(), 2);
    }
}
