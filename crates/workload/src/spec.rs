//! Workload specification: read/write mix, key space, skew, payload size.

use crate::zipf::Zipfian;
use ava_types::{ClientId, Transaction};
use rand::Rng;

/// A YCSB-like workload specification.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Fraction of read transactions (the paper uses 0.85).
    pub read_ratio: f64,
    /// Number of distinct keys.
    pub key_space: u64,
    /// Zipfian skew parameter.
    pub zipf_theta: f64,
    /// Payload size of write operations in bytes (the paper uses 1 KB).
    pub payload_size: u32,
    /// Fraction of *writes* issued as multi-key transactions
    /// ([`ava_types::TxKind::MultiWrite`] over [`WorkloadSpec::multi_key_span`]
    /// keys). At 0.0 the generator draws no extra randomness, so legacy
    /// single-key streams are bit-identical to pre-KV builds.
    pub multi_key_fraction: f64,
    /// Keys per multi-key write (first is Zipfian, the rest fresh draws).
    pub multi_key_span: u32,
    /// Fraction of *reads* issued as range scans
    /// ([`ava_types::TxKind::Scan`] over [`WorkloadSpec::scan_count`] keys).
    /// At 0.0 the generator draws no extra randomness.
    pub scan_fraction: f64,
    /// Maximum keys returned per scan.
    pub scan_count: u32,
}

/// The paper's default workload: YCSB, 85% reads, Zipfian keys, 1 KB operations.
pub const YCSB_DEFAULT: WorkloadSpec = WorkloadSpec {
    read_ratio: 0.85,
    key_space: 100_000,
    zipf_theta: 0.9,
    payload_size: 1024,
    multi_key_fraction: 0.0,
    multi_key_span: 4,
    scan_fraction: 0.0,
    scan_count: 16,
};

impl Default for WorkloadSpec {
    fn default() -> Self {
        YCSB_DEFAULT
    }
}

impl WorkloadSpec {
    /// YCSB-A: update-heavy, 50% reads / 50% writes, Zipfian skew.
    pub fn ycsb_a() -> Self {
        WorkloadSpec { read_ratio: 0.5, ..WorkloadSpec::default() }
    }

    /// YCSB-B: read-mostly, 95% reads / 5% writes, Zipfian skew.
    pub fn ycsb_b() -> Self {
        WorkloadSpec { read_ratio: 0.95, ..WorkloadSpec::default() }
    }

    /// YCSB-C: read-only, 100% reads, Zipfian skew.
    pub fn ycsb_c() -> Self {
        WorkloadSpec { read_ratio: 1.0, ..WorkloadSpec::default() }
    }

    /// A write-only variant (used by the reconfiguration experiments E5.2).
    pub fn write_only(mut self) -> Self {
        self.read_ratio = 0.0;
        self
    }

    /// Override the Zipfian skew parameter (E13 sweeps).
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Override the read ratio (E13 sweeps).
    pub fn with_read_ratio(mut self, ratio: f64) -> Self {
        self.read_ratio = ratio;
        self
    }

    /// Override the value/payload size in bytes.
    pub fn with_payload(mut self, bytes: u32) -> Self {
        self.payload_size = bytes;
        self
    }

    /// Issue `fraction` of writes as multi-key transactions over `span` keys.
    pub fn with_multi_key(mut self, fraction: f64, span: u32) -> Self {
        self.multi_key_fraction = fraction;
        self.multi_key_span = span.max(1);
        self
    }

    /// Issue `fraction` of reads as range scans over up to `count` keys.
    pub fn with_scans(mut self, fraction: f64, count: u32) -> Self {
        self.scan_fraction = fraction;
        self.scan_count = count.max(1);
        self
    }

    /// Build the Zipfian sampler for this spec.
    pub fn sampler(&self) -> Zipfian {
        Zipfian::new(self.key_space, self.zipf_theta)
    }

    /// Generate the next transaction for `client` with sequence number `seq`.
    ///
    /// RNG discipline: the legacy draw sequence (one key sample + one mix draw)
    /// is preserved exactly; the multi-key and scan branches only draw further
    /// randomness when their fraction is strictly positive, so every workload
    /// with both fractions at 0.0 reproduces the pre-KV stream bit-for-bit.
    pub fn next_transaction<R: Rng + ?Sized>(
        &self,
        client: ClientId,
        seq: u64,
        sampler: &Zipfian,
        rng: &mut R,
    ) -> Transaction {
        let key = sampler.sample(rng);
        if rng.gen::<f64>() < self.read_ratio {
            if self.scan_fraction > 0.0 && rng.gen::<f64>() < self.scan_fraction {
                Transaction::scan(client, seq, key, self.scan_count)
            } else {
                Transaction::read(client, seq, key)
            }
        } else if self.multi_key_fraction > 0.0 && rng.gen::<f64>() < self.multi_key_fraction {
            // Span cannot exceed the key space or the distinct-key loop below
            // would never terminate.
            let span = (self.multi_key_span as u64).min(self.key_space).max(1) as usize;
            let mut keys = Vec::with_capacity(span);
            keys.push(key);
            while keys.len() < span {
                let next = sampler.sample(rng);
                if !keys.contains(&next) {
                    keys.push(next);
                }
            }
            Transaction::multi_write(client, seq, keys, self.payload_size)
        } else {
            Transaction::write(client, seq, key, self.payload_size)
        }
    }
}

/// A generator bound to one client, producing a deterministic transaction stream.
#[derive(Clone, Debug)]
pub struct ClientWorkload {
    spec: WorkloadSpec,
    sampler: Zipfian,
    client: ClientId,
    next_seq: u64,
}

impl ClientWorkload {
    /// Create a generator for `client`.
    pub fn new(spec: WorkloadSpec, client: ClientId) -> Self {
        let sampler = spec.sampler();
        ClientWorkload { spec, sampler, client, next_seq: 0 }
    }

    /// The next transaction in the stream.
    pub fn next_tx<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Transaction {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.spec.next_transaction(self.client, seq, &self.sampler, rng)
    }

    /// Number of transactions generated so far.
    pub fn issued(&self) -> u64 {
        self.next_seq
    }

    /// The spec currently driving the generator.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Replace the spec mid-stream (the scenario API's `WorkloadSwitch` event).
    /// The sequence counter keeps running, so transaction ids issued after the
    /// switch never collide with those issued before it.
    pub fn switch_spec(&mut self, spec: WorkloadSpec) {
        self.sampler = spec.sampler();
        self.spec = spec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_parameters() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.read_ratio, 0.85);
        assert_eq!(spec.payload_size, 1024);
    }

    #[test]
    fn read_write_mix_is_roughly_respected() {
        let spec = WorkloadSpec::default();
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(11);
        let total = 10_000;
        let reads = (0..total)
            .filter(|&i| !spec.next_transaction(ClientId(0), i, &sampler, &mut rng).kind.is_write())
            .count();
        let ratio = reads as f64 / total as f64;
        assert!((ratio - 0.85).abs() < 0.03, "observed read ratio {ratio}");
    }

    #[test]
    fn write_only_spec_only_writes() {
        let spec = WorkloadSpec::default().write_only();
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..500 {
            assert!(spec.next_transaction(ClientId(1), i, &sampler, &mut rng).kind.is_write());
        }
    }

    #[test]
    fn switch_spec_keeps_the_sequence_counter_running() {
        let mut wl = ClientWorkload::new(WorkloadSpec::default(), ClientId(2));
        let mut rng = StdRng::seed_from_u64(4);
        let a = wl.next_tx(&mut rng);
        wl.switch_spec(WorkloadSpec::default().write_only());
        let b = wl.next_tx(&mut rng);
        assert!(b.id.seq > a.id.seq, "sequence must continue across the switch");
        assert_eq!(wl.spec().read_ratio, 0.0);
        for _ in 0..200 {
            assert!(wl.next_tx(&mut rng).kind.is_write());
        }
    }

    #[test]
    fn ycsb_presets_match_standard_mixes() {
        assert_eq!(WorkloadSpec::ycsb_a().read_ratio, 0.5);
        assert_eq!(WorkloadSpec::ycsb_b().read_ratio, 0.95);
        assert_eq!(WorkloadSpec::ycsb_c().read_ratio, 1.0);
        for spec in [WorkloadSpec::ycsb_a(), WorkloadSpec::ycsb_b(), WorkloadSpec::ycsb_c()] {
            assert_eq!(spec.zipf_theta, 0.9);
            assert_eq!(spec.payload_size, 1024);
        }
    }

    #[test]
    fn zero_fractions_reproduce_the_legacy_stream() {
        // The fraction-gated branches must not consume RNG draws at 0.0, or
        // every pre-KV golden fingerprint would shift.
        let legacy = WorkloadSpec::default();
        let gated = WorkloadSpec::default().with_multi_key(0.0, 4).with_scans(0.0, 16);
        let sampler = legacy.sampler();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for seq in 0..2_000 {
            let a = legacy.next_transaction(ClientId(0), seq, &sampler, &mut rng_a);
            let b = gated.next_transaction(ClientId(0), seq, &sampler, &mut rng_b);
            assert_eq!(a, b, "streams diverged at seq {seq}");
        }
    }

    #[test]
    fn multi_key_and_scan_fractions_are_respected() {
        use ava_types::TxKind;
        let spec = WorkloadSpec { read_ratio: 0.5, key_space: 1_000, ..WorkloadSpec::default() }
            .with_multi_key(0.5, 4)
            .with_scans(0.5, 8);
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(3);
        let (mut multi, mut scans, mut total) = (0usize, 0usize, 0usize);
        for seq in 0..4_000 {
            total += 1;
            match spec.next_transaction(ClientId(0), seq, &sampler, &mut rng).kind {
                TxKind::MultiWrite { keys, .. } => {
                    multi += 1;
                    assert_eq!(keys.len(), 4);
                    let mut sorted = keys.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), keys.len(), "multi-write keys must be distinct");
                }
                TxKind::Scan { count, .. } => {
                    scans += 1;
                    assert_eq!(count, 8);
                }
                TxKind::Read { .. } | TxKind::Write { .. } => {}
            }
        }
        // 50% writes × 50% multi → ~25%; same for scans.
        assert!((multi as f64 / total as f64 - 0.25).abs() < 0.03, "multi {multi}/{total}");
        assert!((scans as f64 / total as f64 - 0.25).abs() < 0.03, "scans {scans}/{total}");
    }

    #[test]
    fn multi_key_span_is_capped_by_the_key_space() {
        let spec = WorkloadSpec { read_ratio: 0.0, key_space: 2, ..WorkloadSpec::default() }
            .with_multi_key(1.0, 8);
        let sampler = spec.sampler();
        let mut rng = StdRng::seed_from_u64(6);
        for seq in 0..100 {
            let tx = spec.next_transaction(ClientId(0), seq, &sampler, &mut rng);
            if let ava_types::TxKind::MultiWrite { keys, .. } = tx.kind {
                assert!(keys.len() <= 2, "span must not exceed the key space");
            } else {
                panic!("expected only multi-writes");
            }
        }
    }

    #[test]
    fn client_workload_issues_unique_sequence_numbers() {
        let mut wl = ClientWorkload::new(WorkloadSpec::default(), ClientId(3));
        let mut rng = StdRng::seed_from_u64(9);
        let a = wl.next_tx(&mut rng);
        let b = wl.next_tx(&mut rng);
        assert_eq!(a.id.client, ClientId(3));
        assert_ne!(a.id.seq, b.id.seq);
        assert_eq!(wl.issued(), 2);
    }
}
