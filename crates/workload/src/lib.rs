//! # ava-workload
//!
//! YCSB-like workload generation for the Hamava reproduction: the paper's evaluation
//! uses the YCSB benchmark with an 85% read / 15% write mix, Zipfian key selection,
//! 1 KB operations and batches of 100 transactions per round.

pub mod spec;
pub mod zipf;

pub use spec::{ClientWorkload, WorkloadSpec, YCSB_DEFAULT};
pub use zipf::Zipfian;
