//! # ava-workload
//!
//! YCSB-like workload generation for the Hamava reproduction: the paper's evaluation
//! uses the YCSB benchmark with an 85% read / 15% write mix, Zipfian key selection,
//! 1 KB operations and batches of 100 transactions per round.

pub mod aggregate;
pub mod spec;
pub mod zipf;

pub use aggregate::{
    is_virtual_client, virtual_client_base, AggregateLoad, AggregateStream, VIRTUAL_CLIENT_BASE,
    VIRTUAL_CLIENT_STRIDE,
};
pub use spec::{ClientWorkload, WorkloadSpec, YCSB_DEFAULT};
pub use zipf::Zipfian;
