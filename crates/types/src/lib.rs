//! # ava-types
//!
//! Core identifiers, operations, membership and configuration types shared by every
//! crate of the Hamava reproduction.
//!
//! The types in this crate are deliberately free of protocol logic: they describe
//! *what* flows through the system (replica/cluster identifiers, transactions,
//! reconfiguration requests, cluster membership, virtual time) so that the protocol
//! crates (`ava-hamava`, `ava-hotstuff`, `ava-bftsmart`, `ava-geobft`) and the
//! simulation/benchmark crates can agree on a common vocabulary.

pub mod config;
pub mod encode;
pub mod error;
pub mod ids;
pub mod membership;
pub mod metrics;
pub mod operation;
pub mod time;

pub use config::{ClusterSpec, ProtocolParams, SystemConfig};
pub use encode::{Encode, EncodeSink};
pub use error::AvaError;
pub use ids::{ClientId, ClusterId, Region, ReplicaId, Round, Timestamp, TxId};
pub use membership::{Membership, ReplicaInfo};
pub use metrics::{Output, RejectKind, StageKind};
pub use operation::{Operation, OperationBatch, Reconfig, Transaction, TxKind};
pub use time::{Duration, Time};
