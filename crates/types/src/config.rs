//! System configuration: cluster layout, protocol parameters and timeouts.

use crate::ids::{ClusterId, Region, ReplicaId};
use crate::membership::{Membership, ReplicaInfo};
use crate::time::Duration;

/// Specification of one cluster in the initial configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClusterSpec {
    /// Cluster identifier.
    pub id: ClusterId,
    /// Initial replicas and their regions.
    pub replicas: Vec<(ReplicaId, Region)>,
}

/// Protocol-level parameters (the knobs the paper's evaluation section mentions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProtocolParams {
    /// Transactions per round per cluster (the paper batches 100 transactions).
    pub batch_size: usize,
    /// Fraction (in percent) of the batch after which `send-recs` is called so that
    /// reconfiguration dissemination overlaps the tail of local ordering (the paper's
    /// α, Alg. 7 line 20). Expressed in percent to keep the type `Copy + Eq`.
    pub alpha_percent: u8,
    /// Timeout after which a replica complains about a remote cluster's leader
    /// (Alg. 2, the paper's Δ; E4 uses 20 s).
    pub remote_leader_timeout: Duration,
    /// Timeout of the BRD leader watchdog (Alg. 5 line 12).
    pub brd_timeout: Duration,
    /// Timeout of the local total-order-broadcast leader watchdog.
    pub local_timeout: Duration,
    /// Grace period ε after a leader change during which further remote complaints do
    /// not trigger another change (Alg. 2 line 25).
    pub leader_change_grace: Duration,
    /// Operation payload size in bytes (the paper uses 1 KB operations).
    pub op_size: u32,
    /// If false, reconfigurations are ordered through the transaction total-order
    /// broadcast instead of the parallel collection/BRD workflow. This is the
    /// "single workflow" ablation of experiment E5.2.
    pub parallel_reconfig_workflow: bool,
}

impl Default for ProtocolParams {
    fn default() -> Self {
        ProtocolParams {
            batch_size: 100,
            alpha_percent: 75,
            remote_leader_timeout: Duration::from_secs(20),
            brd_timeout: Duration::from_secs(5),
            local_timeout: Duration::from_secs(20),
            leader_change_grace: Duration::from_millis(500),
            op_size: 1024,
            parallel_reconfig_workflow: true,
        }
    }
}

impl ProtocolParams {
    /// Number of ordered transactions after which `send-recs` fires.
    pub fn alpha_threshold(&self) -> usize {
        (self.batch_size * self.alpha_percent as usize) / 100
    }
}

/// Complete initial configuration of a replicated system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemConfig {
    /// The clusters and their initial members.
    pub clusters: Vec<ClusterSpec>,
    /// Protocol parameters.
    pub params: ProtocolParams,
}

impl SystemConfig {
    /// Build a configuration with `sizes.len()` clusters, where cluster `i` has
    /// `sizes[i].0` replicas in region `sizes[i].1`. Replica ids are assigned
    /// sequentially starting at 0.
    pub fn homogeneous_regions(sizes: &[(usize, Region)]) -> Self {
        let mut next = 0u32;
        let clusters = sizes
            .iter()
            .enumerate()
            .map(|(ci, &(n, region))| {
                let replicas = (0..n)
                    .map(|_| {
                        let id = ReplicaId(next);
                        next += 1;
                        (id, region)
                    })
                    .collect();
                ClusterSpec { id: ClusterId(ci as u32), replicas }
            })
            .collect();
        SystemConfig { clusters, params: ProtocolParams::default() }
    }

    /// Build a configuration where cluster `i` is given explicitly as a list of
    /// regions (one entry per replica). Used for the heterogeneous setups of E3.
    pub fn heterogeneous(clusters: &[Vec<Region>]) -> Self {
        let mut next = 0u32;
        let clusters = clusters
            .iter()
            .enumerate()
            .map(|(ci, regions)| {
                let replicas = regions
                    .iter()
                    .map(|&region| {
                        let id = ReplicaId(next);
                        next += 1;
                        (id, region)
                    })
                    .collect();
                ClusterSpec { id: ClusterId(ci as u32), replicas }
            })
            .collect();
        SystemConfig { clusters, params: ProtocolParams::default() }
    }

    /// Split `total` replicas evenly into `clusters` clusters, all in `region`.
    /// Used by E0 (96 nodes, varying cluster counts, single region).
    pub fn even_split_single_region(total: usize, clusters: usize, region: Region) -> Self {
        assert!(clusters > 0 && total >= clusters);
        let base = total / clusters;
        let extra = total % clusters;
        let sizes: Vec<(usize, Region)> =
            (0..clusters).map(|i| (base + usize::from(i < extra), region)).collect();
        SystemConfig::homogeneous_regions(&sizes)
    }

    /// Split `total` replicas evenly into `clusters` clusters, assigning whole
    /// clusters round-robin to `regions`. Used by E1 (96 nodes over 3 regions).
    pub fn even_split_multi_region(total: usize, clusters: usize, regions: &[Region]) -> Self {
        assert!(clusters > 0 && total >= clusters && !regions.is_empty());
        let base = total / clusters;
        let extra = total % clusters;
        let sizes: Vec<(usize, Region)> = (0..clusters)
            .map(|i| (base + usize::from(i < extra), regions[i % regions.len()]))
            .collect();
        SystemConfig::homogeneous_regions(&sizes)
    }

    /// The initial membership map.
    pub fn membership(&self) -> Membership {
        let mut m = Membership::new();
        for spec in &self.clusters {
            for &(id, region) in &spec.replicas {
                m.add(spec.id, ReplicaInfo { id, region });
            }
        }
        m
    }

    /// Total number of replicas.
    pub fn total_replicas(&self) -> usize {
        self.clusters.iter().map(|c| c.replicas.len()).sum()
    }

    /// The largest replica id used by the initial configuration (new ids for joining
    /// replicas should start above this).
    pub fn max_replica_id(&self) -> u32 {
        self.clusters.iter().flat_map(|c| c.replicas.iter().map(|(id, _)| id.0)).max().unwrap_or(0)
    }

    /// The spec of `cluster`, if it is part of the initial configuration.
    pub fn cluster(&self, cluster: ClusterId) -> Option<&ClusterSpec> {
        self.clusters.iter().find(|c| c.id == cluster)
    }

    /// The initial leader of `cluster` (by convention its first configured member).
    ///
    /// # Panics
    /// Panics if `cluster` is unknown or empty.
    pub fn initial_leader(&self, cluster: ClusterId) -> ReplicaId {
        self.cluster(cluster)
            .and_then(|c| c.replicas.first().map(|(id, _)| *id))
            .unwrap_or_else(|| panic!("unknown or empty cluster {cluster:?}"))
    }

    /// The region of the first configured replica of `cluster` (the "home" region
    /// used when placing new clients or joining replicas).
    ///
    /// # Panics
    /// Panics if `cluster` is unknown or empty.
    pub fn home_region(&self, cluster: ClusterId) -> Region {
        self.cluster(cluster)
            .and_then(|c| c.replicas.first().map(|(_, region)| *region))
            .unwrap_or_else(|| panic!("unknown or empty cluster {cluster:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = ProtocolParams::default();
        assert_eq!(p.batch_size, 100);
        assert_eq!(p.op_size, 1024);
        assert_eq!(p.remote_leader_timeout, Duration::from_secs(20));
        assert!(p.parallel_reconfig_workflow);
        assert_eq!(p.alpha_threshold(), 75);
    }

    #[test]
    fn even_split_single_region_distributes_remainder() {
        let cfg = SystemConfig::even_split_single_region(96, 10, Region::UsWest);
        let sizes: Vec<usize> = cfg.clusters.iter().map(|c| c.replicas.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 96);
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
        assert_eq!(cfg.total_replicas(), 96);
    }

    #[test]
    fn even_split_multi_region_round_robins_clusters() {
        let regions = [Region::UsWest, Region::Europe, Region::AsiaSouth];
        let cfg = SystemConfig::even_split_multi_region(96, 4, &regions);
        assert_eq!(cfg.clusters[0].replicas[0].1, Region::UsWest);
        assert_eq!(cfg.clusters[1].replicas[0].1, Region::Europe);
        assert_eq!(cfg.clusters[2].replicas[0].1, Region::AsiaSouth);
        assert_eq!(cfg.clusters[3].replicas[0].1, Region::UsWest);
    }

    #[test]
    fn heterogeneous_setup_2_from_e3() {
        // Setup 2, scale 1: C1 = 9 Asia nodes, C2 = 5 EU nodes.
        let cfg =
            SystemConfig::heterogeneous(&[vec![Region::AsiaSouth; 9], vec![Region::Europe; 5]]);
        let m = cfg.membership();
        assert_eq!(m.size(ClusterId(0)), 9);
        assert_eq!(m.size(ClusterId(1)), 5);
        assert_eq!(m.f(ClusterId(0)), 2);
        assert_eq!(m.f(ClusterId(1)), 1);
    }

    #[test]
    fn initial_leader_and_home_region_follow_the_first_member() {
        let cfg = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (3, Region::Europe)]);
        assert_eq!(cfg.initial_leader(ClusterId(0)), ReplicaId(0));
        assert_eq!(cfg.initial_leader(ClusterId(1)), ReplicaId(4));
        assert_eq!(cfg.home_region(ClusterId(1)), Region::Europe);
        assert!(cfg.cluster(ClusterId(2)).is_none());
    }

    #[test]
    fn membership_ids_are_unique() {
        let cfg = SystemConfig::even_split_single_region(24, 3, Region::Europe);
        let m = cfg.membership();
        let mut ids: Vec<_> = m.iter().map(|(_, r)| r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 24);
        assert_eq!(cfg.max_replica_id(), 23);
    }
}
