//! Virtual time used by the discrete-event simulator and the protocol timers.
//!
//! All protocol state machines reason about time exclusively through these types, so
//! they can run under the simulator (virtual clock) or, in principle, against a real
//! clock without modification.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(pub u64);

/// A span of virtual time, measured in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Duration(pub u64);

impl Time {
    /// Time zero (start of the run).
    pub const ZERO: Time = Time(0);

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// The value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds (rounded down to microseconds).
    pub fn from_millis_f64(ms: f64) -> Duration {
        Duration((ms * 1_000.0).max(0.0) as u64)
    }

    /// The value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The value in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply the duration by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, other: Time) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, Time(15_000));
        assert_eq!(t - Time::from_millis(10), Duration::from_millis(5));
        assert_eq!(Time::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Time(5).since(Time(10)), Duration::ZERO);
        assert_eq!(Time(5) - Time(10), Duration::ZERO);
    }

    #[test]
    fn fractional_millis() {
        assert_eq!(Duration::from_millis_f64(1.5), Duration(1500));
        assert_eq!(Duration::from_millis_f64(-3.0), Duration::ZERO);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Duration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(Time::from_secs(3).to_string(), "3.000s");
    }
}
