//! Cluster membership: which replicas belong to which cluster, where they are, and
//! the per-cluster failure thresholds derived from cluster sizes.
//!
//! Heterogeneity is the central point of the paper: every quorum computation goes
//! through [`Membership`] so that it always reflects the *current* size of each
//! cluster (`f_j = ⌊(|C_j|−1)/3⌋`), never a stale or global constant.

use crate::ids::{ClusterId, Region, ReplicaId};
use crate::operation::Reconfig;
use std::collections::BTreeMap;

/// Static information about a replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplicaInfo {
    /// The replica's identifier.
    pub id: ReplicaId,
    /// The region the replica is deployed in.
    pub region: Region,
}

/// The membership map: for every cluster, the ordered set of its current replicas.
///
/// Replicas within a cluster are kept in a deterministic order (ascending id), which
/// the protocol uses for round-robin leader election and for choosing the "first
/// f+1 replicas" sender sets of the remote-leader-change protocol.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Membership {
    clusters: BTreeMap<ClusterId, Vec<ReplicaInfo>>,
}

impl Membership {
    /// Create an empty membership map.
    pub fn new() -> Self {
        Membership { clusters: BTreeMap::new() }
    }

    /// Add a replica to a cluster (idempotent). Keeps the per-cluster order sorted by
    /// replica id.
    pub fn add(&mut self, cluster: ClusterId, replica: ReplicaInfo) {
        let members = self.clusters.entry(cluster).or_default();
        if !members.iter().any(|m| m.id == replica.id) {
            members.push(replica);
            members.sort_by_key(|m| m.id);
        }
    }

    /// Remove a replica from a cluster. Returns true if it was present.
    pub fn remove(&mut self, cluster: ClusterId, replica: ReplicaId) -> bool {
        if let Some(members) = self.clusters.get_mut(&cluster) {
            let before = members.len();
            members.retain(|m| m.id != replica);
            return members.len() != before;
        }
        false
    }

    /// All cluster ids, in ascending order (the paper's "predefined order of
    /// clusters" used by Stage 3 execution).
    pub fn cluster_ids(&self) -> Vec<ClusterId> {
        self.clusters.keys().copied().collect()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Members of `cluster`, in ascending replica-id order.
    pub fn members(&self, cluster: ClusterId) -> &[ReplicaInfo] {
        self.clusters.get(&cluster).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Member ids of `cluster`, in ascending order.
    pub fn member_ids(&self, cluster: ClusterId) -> Vec<ReplicaId> {
        self.members(cluster).iter().map(|m| m.id).collect()
    }

    /// Size of `cluster`.
    pub fn size(&self, cluster: ClusterId) -> usize {
        self.members(cluster).len()
    }

    /// Whether `replica` is currently a member of `cluster`.
    pub fn contains(&self, cluster: ClusterId, replica: ReplicaId) -> bool {
        self.members(cluster).iter().any(|m| m.id == replica)
    }

    /// The cluster `replica` currently belongs to, if any.
    pub fn cluster_of(&self, replica: ReplicaId) -> Option<ClusterId> {
        self.clusters.iter().find(|(_, ms)| ms.iter().any(|m| m.id == replica)).map(|(c, _)| *c)
    }

    /// Failure threshold of `cluster`: `f_j = ⌊(|C_j|−1)/3⌋` (Alg. 10, line 28).
    pub fn f(&self, cluster: ClusterId) -> usize {
        let n = self.size(cluster);
        if n == 0 {
            0
        } else {
            (n - 1) / 3
        }
    }

    /// Quorum size of `cluster`: `2·f_j + 1`.
    pub fn quorum(&self, cluster: ClusterId) -> usize {
        2 * self.f(cluster) + 1
    }

    /// "At least one correct replica" set size for `cluster`: `f_j + 1`.
    pub fn one_correct(&self, cluster: ClusterId) -> usize {
        self.f(cluster) + 1
    }

    /// The first `k` replicas of `cluster` by the predefined (ascending id) order.
    /// Used as the sender set of the remote-leader-change protocol (Alg. 2 line 16)
    /// and as the inter-cluster broadcast target set (Alg. 1 line 13).
    pub fn first_k(&self, cluster: ClusterId, k: usize) -> Vec<ReplicaId> {
        self.members(cluster).iter().take(k).map(|m| m.id).collect()
    }

    /// The leader of `cluster` for leader timestamp `ts`: round-robin over the
    /// deterministic member order (Alg. 9 line 27).
    pub fn leader_for(&self, cluster: ClusterId, ts: u64) -> Option<ReplicaId> {
        let members = self.members(cluster);
        if members.is_empty() {
            None
        } else {
            Some(members[(ts as usize) % members.len()].id)
        }
    }

    /// Apply one reconfiguration to `cluster` (Alg. 10 `reconfigure`): joins add the
    /// replica, leaves remove it. The failure threshold is implicitly updated because
    /// it is always derived from the current size.
    pub fn apply(&mut self, cluster: ClusterId, rc: &Reconfig) {
        match *rc {
            Reconfig::Join { replica, region } => {
                self.add(cluster, ReplicaInfo { id: replica, region })
            }
            Reconfig::Leave { replica } => {
                self.remove(cluster, replica);
            }
        }
    }

    /// Apply a whole reconfiguration set, joins before leaves (Alg. 10 `kickstart`
    /// processes joins first so that leaving replicas can still help new ones).
    pub fn apply_set(&mut self, cluster: ClusterId, set: &[Reconfig]) {
        for rc in set.iter().filter(|rc| rc.is_join()) {
            self.apply(cluster, rc);
        }
        for rc in set.iter().filter(|rc| !rc.is_join()) {
            self.apply(cluster, rc);
        }
    }

    /// Total number of replicas across all clusters.
    pub fn total_replicas(&self) -> usize {
        self.clusters.values().map(|v| v.len()).sum()
    }

    /// Iterate over `(cluster, replica)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, &ReplicaInfo)> {
        self.clusters.iter().flat_map(|(c, ms)| ms.iter().map(move |m| (*c, m)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u32) -> ReplicaInfo {
        ReplicaInfo { id: ReplicaId(id), region: Region::UsWest }
    }

    fn cluster_of_size(n: u32) -> Membership {
        let mut m = Membership::new();
        for i in 0..n {
            m.add(ClusterId(0), info(i));
        }
        m
    }

    #[test]
    fn thresholds_match_paper_examples() {
        // The paper's running example: clusters of 4 and 7 replicas with f=1 and f=2.
        let m4 = cluster_of_size(4);
        let m7 = cluster_of_size(7);
        assert_eq!(m4.f(ClusterId(0)), 1);
        assert_eq!(m7.f(ClusterId(0)), 2);
        assert_eq!(m4.quorum(ClusterId(0)), 3);
        assert_eq!(m7.quorum(ClusterId(0)), 5);
        assert_eq!(m4.one_correct(ClusterId(0)), 2);
        assert_eq!(m7.one_correct(ClusterId(0)), 3);
    }

    #[test]
    fn add_is_idempotent_and_sorted() {
        let mut m = Membership::new();
        m.add(ClusterId(1), info(5));
        m.add(ClusterId(1), info(2));
        m.add(ClusterId(1), info(5));
        assert_eq!(m.member_ids(ClusterId(1)), vec![ReplicaId(2), ReplicaId(5)]);
    }

    #[test]
    fn remove_and_cluster_of() {
        let mut m = cluster_of_size(4);
        assert_eq!(m.cluster_of(ReplicaId(2)), Some(ClusterId(0)));
        assert!(m.remove(ClusterId(0), ReplicaId(2)));
        assert!(!m.remove(ClusterId(0), ReplicaId(2)));
        assert_eq!(m.cluster_of(ReplicaId(2)), None);
        assert_eq!(m.size(ClusterId(0)), 3);
    }

    #[test]
    fn leader_rotation_is_round_robin_over_sorted_members() {
        let m = cluster_of_size(4);
        assert_eq!(m.leader_for(ClusterId(0), 0), Some(ReplicaId(0)));
        assert_eq!(m.leader_for(ClusterId(0), 1), Some(ReplicaId(1)));
        assert_eq!(m.leader_for(ClusterId(0), 5), Some(ReplicaId(1)));
        assert_eq!(m.leader_for(ClusterId(9), 0), None);
    }

    #[test]
    fn stale_threshold_attack_scenario_sizes() {
        // Section II-B: C1 grows from 4 to 7 replicas; its threshold must move from
        // f=1 (quorum 3) to f=2 (quorum 5) as soon as the joins are applied.
        let mut m = cluster_of_size(4);
        let joins: Vec<Reconfig> = (10..13)
            .map(|i| Reconfig::Join { replica: ReplicaId(i), region: Region::AsiaSouth })
            .collect();
        m.apply_set(ClusterId(0), &joins);
        assert_eq!(m.size(ClusterId(0)), 7);
        assert_eq!(m.f(ClusterId(0)), 2);
        assert_eq!(m.quorum(ClusterId(0)), 5);
    }

    #[test]
    fn apply_set_processes_joins_before_leaves() {
        let mut m = cluster_of_size(4);
        // A set in which the same round adds p10 and removes p0.
        let set = vec![
            Reconfig::Leave { replica: ReplicaId(0) },
            Reconfig::Join { replica: ReplicaId(10), region: Region::Europe },
        ];
        m.apply_set(ClusterId(0), &set);
        assert!(m.contains(ClusterId(0), ReplicaId(10)));
        assert!(!m.contains(ClusterId(0), ReplicaId(0)));
        assert_eq!(m.size(ClusterId(0)), 4);
    }

    #[test]
    fn first_k_uses_predefined_order() {
        let m = cluster_of_size(7);
        assert_eq!(m.first_k(ClusterId(0), 3), vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)]);
        assert_eq!(m.first_k(ClusterId(0), 100).len(), 7);
    }

    #[test]
    fn totals_and_iteration() {
        let mut m = cluster_of_size(4);
        m.add(ClusterId(1), info(100));
        assert_eq!(m.total_replicas(), 5);
        assert_eq!(m.iter().count(), 5);
        assert_eq!(m.cluster_ids(), vec![ClusterId(0), ClusterId(1)]);
    }
}
