//! Measurement events emitted by protocol actors and collected by the simulator.
//!
//! The benchmark harness derives every figure of the paper (throughput, latency,
//! latency breakdown, time series around failures and reconfigurations) from this
//! stream of events.

use crate::ids::{ClientId, ClusterId, ReplicaId, Round, TxId};
use crate::time::Time;

/// The stage of a Hamava round, used for the E2 latency breakdown.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StageKind {
    /// Stage 1: intra-cluster replication (local ordering + reconfiguration).
    IntraCluster,
    /// Stage 2: inter-cluster communication.
    InterCluster,
    /// Stage 3: ordering and execution.
    Execution,
}

impl StageKind {
    /// All stages, in protocol order.
    pub const ALL: [StageKind; 3] =
        [StageKind::IntraCluster, StageKind::InterCluster, StageKind::Execution];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::IntraCluster => "intra-cluster replication",
            StageKind::InterCluster => "inter-cluster communication",
            StageKind::Execution => "execution",
        }
    }
}

/// An observable event produced by the replicated system.
#[derive(Clone, PartialEq, Debug)]
pub enum Output {
    /// A transaction finished (executed for writes, served locally for reads).
    TxCompleted {
        /// The transaction.
        tx: TxId,
        /// Issuing client.
        client: ClientId,
        /// Cluster that processed it.
        cluster: ClusterId,
        /// Time the client issued it.
        issued_at: Time,
        /// Time the response was produced.
        completed_at: Time,
        /// Whether it was a write (went through the three stages).
        is_write: bool,
    },
    /// A replica finished a stage of a round (for the E2 breakdown).
    StageCompleted {
        /// Reporting replica.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The round.
        round: Round,
        /// Which stage completed.
        stage: StageKind,
        /// When the stage started at this replica.
        started_at: Time,
        /// When it completed.
        completed_at: Time,
    },
    /// A replica executed a round (all three stages done).
    RoundExecuted {
        /// Reporting replica.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The executed round.
        round: Round,
        /// Number of transactions executed in the round across all clusters.
        txns: usize,
        /// When execution finished.
        at: Time,
    },
    /// A reconfiguration was applied (the requesting replica joined or left).
    ReconfigApplied {
        /// The replica that joined or left.
        replica: ReplicaId,
        /// The cluster affected.
        cluster: ClusterId,
        /// True for join, false for leave.
        joined: bool,
        /// The round in which it took effect.
        round: Round,
        /// When it was applied.
        at: Time,
        /// The replica that applied (and reports) the reconfiguration. Every
        /// correct replica executing the round applies the same set, so grouping
        /// these events by `reporter` is how the fuzzer's reconfig-set agreement
        /// checker detects divergence.
        reporter: ReplicaId,
    },
    /// A cluster changed its local leader.
    LeaderChanged {
        /// The cluster whose leader changed.
        cluster: ClusterId,
        /// The new leader.
        new_leader: ReplicaId,
        /// The new leader timestamp.
        timestamp: u64,
        /// When the change happened (at the reporting replica).
        at: Time,
        /// The replica reporting the change.
        replica: ReplicaId,
    },
    /// A crashed replica restarted with only its persisted store and began
    /// catching up.
    ReplicaRestarted {
        /// The restarting replica.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The round its durable store recovered to (checkpoint + local log
        /// replay); catch-up must cover everything after this.
        recovered_round: Round,
        /// Rounds replayed from the local round log during local recovery.
        log_rounds_replayed: u64,
        /// When the restart happened.
        at: Time,
    },
    /// A replica installed a checkpoint in its durable store (taken at the local
    /// cadence boundary or adopted from peers during catch-up). Checkpoint digests
    /// are round-deterministic, so every correct replica installing round `round`
    /// reports the same `digest` — the fuzzer's checkpoint-chain checker relies on
    /// this.
    CheckpointInstalled {
        /// The installing replica.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The round the checkpoint covers.
        round: Round,
        /// The checkpoint's canonical digest (see `ava-store`).
        digest: [u8; 32],
        /// Whether the snapshot was adopted from peers (catch-up) rather than
        /// taken locally at a cadence boundary.
        adopted: bool,
        /// When it was installed.
        at: Time,
    },
    /// A restarted (or stateless) replica finished state-transfer catch-up and
    /// rejoined ordering.
    RecoveryCompleted {
        /// The recovered replica.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The round it rejoined at (current round of the cluster).
        round: Round,
        /// Rounds obtained from peers (checkpoint gap + transferred log suffix).
        rounds_transferred: u64,
        /// Bytes of checkpoint + log-suffix payload adopted from peers.
        bytes_transferred: u64,
        /// When catch-up completed.
        at: Time,
    },
    /// A broker cut a certified batch and submitted it into the ordering path
    /// (one event per flush), carrying the broker's flow-control state at the
    /// moment of the flush. The `BrokerStats` observer derives queue-depth,
    /// batch-occupancy and shed-rate series from this stream.
    BrokerFlushed {
        /// The broker actor's node id.
        broker: ReplicaId,
        /// The cluster the broker submits into.
        cluster: ClusterId,
        /// Operations in the flushed batch.
        ops: usize,
        /// Queue depth immediately after the flush.
        queue: usize,
        /// In-flight (submitted, unacknowledged) batches after the flush.
        inflight: usize,
        /// Total operations shed by this broker so far (overload backpressure).
        shed_total: u64,
        /// When the batch was flushed.
        at: Time,
    },
    /// A replica committed one operation of a broker batch (emitted by the
    /// replica that admitted the batch, at execution time). The fuzzer's
    /// broker-conservation checker matches these against the virtual-client
    /// acknowledgements to prove every acked operation is backed by exactly one
    /// commit.
    BatchOpCommitted {
        /// The replica that admitted the batch and reports the commit.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The broker that submitted the batch.
        broker: ReplicaId,
        /// The broker-local batch sequence number.
        batch: u64,
        /// The committed transaction.
        tx: TxId,
        /// When it was committed.
        at: Time,
    },
    /// A replica rejected a message whose cryptographic material failed
    /// verification — evidence of a Byzantine sender. Honest replicas never
    /// produce unverifiable certificates or signatures, so in a run with no
    /// `Corrupt` event scheduled this output must never appear (the fuzzer's
    /// certificate-validity checker pins exactly that).
    ByzantineRejected {
        /// The rejecting replica.
        replica: ReplicaId,
        /// The cluster the rejected material claims to originate from.
        cluster: ClusterId,
        /// The round the rejected material belongs to.
        round: Round,
        /// What kind of material failed verification.
        kind: RejectKind,
        /// When the rejection happened.
        at: Time,
    },
    /// A replica observed two different round packages for the same
    /// `(cluster, round)` — equivocation evidence. Honest packages for one
    /// round are identical at every replica (they share one `Arc` through the
    /// fan-out and their content digests match), so this output can only
    /// follow a scheduled package-mutating `Corrupt` event.
    EquivocationObserved {
        /// The observing replica.
        replica: ReplicaId,
        /// The cluster both conflicting packages claim to originate from.
        cluster: ClusterId,
        /// The round both packages belong to.
        round: Round,
        /// Content digest of the package accepted first.
        first: [u8; 32],
        /// Content digest of the conflicting package.
        second: [u8; 32],
        /// When the conflict was observed.
        at: Time,
    },
    /// A replica's full state digest after executing a round. Emitted only by
    /// deployments running the keyed KV state machine (legacy counter runs
    /// never produce it, which keeps their output streams golden-stable). The
    /// digest is history-independent — a function of committed state only — so
    /// every correct replica, including ones that recovered via snapshot
    /// adoption, reports the same digest for the same round; the fuzzer's
    /// execution-agreement checker compares these across replicas.
    StateDigest {
        /// Reporting replica.
        replica: ReplicaId,
        /// Its cluster.
        cluster: ClusterId,
        /// The executed round the digest covers.
        round: Round,
        /// The machine's state digest after the round.
        digest: [u8; 32],
        /// Number of keys present.
        entries: u64,
        /// Total committed value bytes.
        value_bytes: u64,
        /// When the round's execution finished.
        at: Time,
    },
    /// Free-form named measurement (used by benches for auxiliary series).
    Custom {
        /// Metric name.
        name: &'static str,
        /// Metric value.
        value: f64,
        /// When it was recorded.
        at: Time,
    },
}

/// The kind of cryptographic material a [`Output::ByzantineRejected`] event
/// reports as failing verification.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RejectKind {
    /// A round package whose block or BRD certificates failed verification
    /// (`Inter` or `LocalShare` path).
    PackageCert,
    /// A BRD `Echo`/`Ready` vote whose signature failed verification.
    BrdSignature,
    /// A `CatchUpReply` checkpoint whose stored digest does not match its
    /// content.
    CatchUpCheckpoint,
}

impl RejectKind {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::PackageCert => "package-cert",
            RejectKind::BrdSignature => "brd-signature",
            RejectKind::CatchUpCheckpoint => "catch-up-checkpoint",
        }
    }
}

impl Output {
    /// The time the event refers to (completion time for transactions and stages).
    pub fn at(&self) -> Time {
        match self {
            Output::TxCompleted { completed_at, .. } => *completed_at,
            Output::StageCompleted { completed_at, .. } => *completed_at,
            Output::RoundExecuted { at, .. }
            | Output::ReconfigApplied { at, .. }
            | Output::LeaderChanged { at, .. }
            | Output::ReplicaRestarted { at, .. }
            | Output::CheckpointInstalled { at, .. }
            | Output::RecoveryCompleted { at, .. }
            | Output::BrokerFlushed { at, .. }
            | Output::BatchOpCommitted { at, .. }
            | Output::ByzantineRejected { at, .. }
            | Output::EquivocationObserved { at, .. }
            | Output::StateDigest { at, .. }
            | Output::Custom { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_cover_all_stages() {
        for s in StageKind::ALL {
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn output_at_returns_completion_time() {
        let o = Output::TxCompleted {
            tx: TxId { client: ClientId(0), seq: 1 },
            client: ClientId(0),
            cluster: ClusterId(0),
            issued_at: Time(10),
            completed_at: Time(42),
            is_write: true,
        };
        assert_eq!(o.at(), Time(42));
        let o = Output::Custom { name: "x", value: 1.0, at: Time(7) };
        assert_eq!(o.at(), Time(7));
    }

    #[test]
    fn byzantine_evidence_outputs_carry_their_time() {
        let o = Output::ByzantineRejected {
            replica: ReplicaId(3),
            cluster: ClusterId(1),
            round: Round(9),
            kind: RejectKind::PackageCert,
            at: Time(55),
        };
        assert_eq!(o.at(), Time(55));
        let o = Output::EquivocationObserved {
            replica: ReplicaId(3),
            cluster: ClusterId(1),
            round: Round(9),
            first: [1; 32],
            second: [2; 32],
            at: Time(56),
        };
        assert_eq!(o.at(), Time(56));
        for kind in
            [RejectKind::PackageCert, RejectKind::BrdSignature, RejectKind::CatchUpCheckpoint]
        {
            assert!(!kind.label().is_empty());
        }
    }
}
