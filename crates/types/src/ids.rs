//! Strongly-typed identifiers used across the system.
//!
//! Newtypes keep replica/cluster/round/view numbers from being mixed up and give the
//! rest of the workspace a single place to change representations.

use crate::encode::{Encode, EncodeSink};
use std::fmt;

/// Identifier of a replica (a process participating in replication).
///
/// Replica identifiers are globally unique across all clusters; the cluster a replica
/// currently belongs to is tracked by [`crate::membership::Membership`], not by the id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ReplicaId(pub u32);

/// Identifier of a cluster (a geographically co-located group of replicas).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClusterId(pub u32);

/// Identifier of a client process issuing transactions or reconfiguration requests.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClientId(pub u32);

/// Globally unique transaction identifier (client id, client-local sequence number).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxId {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: u64,
}

/// Protocol round number. A round spans the three Hamava stages (intra-cluster
/// replication, inter-cluster communication, execution).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Round(pub u64);

/// Monotonically increasing leader timestamp used by leader election (the paper's
/// `ts`). Distinct from [`Round`]: several leaders may succeed each other within one
/// round.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Timestamp(pub u64);

/// Geographic regions used in the paper's evaluation (Google Cloud regions).
///
/// The associated round-trip latencies live in `ava-simnet`'s latency model; the
/// region itself is pure data so protocol crates can reason about placement without
/// depending on the simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Region {
    /// `us-west1-b`
    UsWest,
    /// `europe-west3-c`
    Europe,
    /// `asia-south1-c`
    AsiaSouth,
    /// `us-east5-c` (used in E8)
    UsEast,
    /// `asia-northeast1-b` (used in E8)
    AsiaNortheast,
}

impl Default for Region {
    fn default() -> Self {
        Region::UsWest
    }
}

impl Region {
    /// All regions known to the latency model, in a stable order.
    pub const ALL: [Region; 5] =
        [Region::UsWest, Region::Europe, Region::AsiaSouth, Region::UsEast, Region::AsiaNortheast];

    /// Stable index of the region, usable to address latency matrices.
    pub fn index(self) -> usize {
        match self {
            Region::UsWest => 0,
            Region::Europe => 1,
            Region::AsiaSouth => 2,
            Region::UsEast => 3,
            Region::AsiaNortheast => 4,
        }
    }

    /// Human readable Google Cloud zone name as used in the paper.
    pub fn zone_name(self) -> &'static str {
        match self {
            Region::UsWest => "us-west1-b",
            Region::Europe => "europe-west3-c",
            Region::AsiaSouth => "asia-south1-c",
            Region::UsEast => "us-east5-c",
            Region::AsiaNortheast => "asia-northeast1-b",
        }
    }
}

impl Round {
    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl Timestamp {
    /// The next leader timestamp.
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cl{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.zone_name())
    }
}

impl Encode for ReplicaId {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.0.to_le_bytes());
    }
}

impl Encode for ClusterId {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.0.to_le_bytes());
    }
}

impl Encode for ClientId {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.0.to_le_bytes());
    }
}

impl Encode for TxId {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.client.encode(out);
        out.write(&self.seq.to_le_bytes());
    }
}

impl Encode for Round {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.0.to_le_bytes());
    }
}

impl Encode for Timestamp {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.0.to_le_bytes());
    }
}

impl Encode for Region {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&[self.index() as u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_and_timestamp_increment() {
        assert_eq!(Round(3).next(), Round(4));
        assert_eq!(Timestamp(0).next(), Timestamp(1));
    }

    #[test]
    fn region_indices_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for r in Region::ALL {
            assert!(seen.insert(r.index()), "duplicate index for {r:?}");
        }
        assert_eq!(Region::UsWest.index(), 0);
        assert_eq!(Region::AsiaNortheast.index(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReplicaId(7).to_string(), "p7");
        assert_eq!(ClusterId(2).to_string(), "C2");
        assert_eq!(Round(5).to_string(), "r5");
        assert_eq!(Region::Europe.to_string(), "europe-west3-c");
    }

    #[test]
    fn txid_orders_by_client_then_seq() {
        let a = TxId { client: ClientId(1), seq: 9 };
        let b = TxId { client: ClientId(2), seq: 0 };
        assert!(a < b);
    }

    #[test]
    fn encode_is_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        TxId { client: ClientId(3), seq: 42 }.encode(&mut a);
        TxId { client: ClientId(3), seq: 42 }.encode(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }
}
