//! Deterministic binary encoding used for hashing and signing.
//!
//! Certificates in Hamava sign digests of protocol payloads (batches of operations,
//! reconfiguration sets, complaints). [`Encode`] produces a canonical byte string for
//! a value so that every replica computes the same digest for the same logical value.
//! It is intentionally *not* a full serialization framework: the simulator passes
//! messages by value, so only digest material needs encoding.
//!
//! Encoding streams into an [`EncodeSink`] rather than a concrete buffer, so digest
//! computation can feed the hasher directly (`ava-crypto` implements `EncodeSink` for
//! its SHA-256 state) without materialising an intermediate `Vec<u8>` — the zero-copy
//! hot-path invariant documented in `DESIGN.md` §4.

/// A byte sink the canonical encoding is streamed into.
///
/// Implemented by `Vec<u8>` (buffering, for tests and wire-size accounting) and by
/// the incremental SHA-256 hasher in `ava-crypto` (streaming digests).
pub trait EncodeSink {
    /// Append `bytes` to the sink.
    fn write(&mut self, bytes: &[u8]);
}

impl EncodeSink for Vec<u8> {
    fn write(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Canonical, deterministic binary encoding of a value.
pub trait Encode {
    /// Stream the canonical encoding of `self` into `out`.
    fn encode(&self, out: &mut dyn EncodeSink);

    /// Convenience: encode into a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

impl Encode for u8 {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&[*self]);
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.to_le_bytes());
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&self.to_le_bytes());
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&(*self as u64).to_le_bytes());
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&[u8::from(*self)]);
    }
}

impl Encode for str {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&(self.len() as u64).to_le_bytes());
        out.write(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.as_str().encode(out);
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut dyn EncodeSink) {
        match self {
            None => out.write(&[0]),
            Some(v) => {
                out.write(&[1]);
                v.encode(out);
            }
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut dyn EncodeSink) {
        out.write(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.as_slice().encode(out);
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_encodings_are_length_prefixed_where_needed() {
        let v: Vec<u8> = vec![1, 2, 3];
        let enc = v.encoded();
        assert_eq!(&enc[..8], &3u64.to_le_bytes());
        assert_eq!(&enc[8..], &[1, 2, 3]);
        let s = "ab".encoded();
        assert_eq!(&s[..8], &2u64.to_le_bytes());
        assert_eq!(&s[8..], b"ab");
    }

    #[test]
    fn option_encoding_distinguishes_none_and_some() {
        assert_ne!(Option::<u32>::None.encoded(), Some(0u32).encoded());
    }

    #[test]
    fn nested_vectors_encode_deterministically() {
        let a: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let b: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        assert_eq!(a.encoded(), b.encoded());
    }

    #[test]
    fn different_values_have_different_encodings() {
        assert_ne!(5u64.encoded(), 6u64.encoded());
        assert_ne!("abc".encoded(), "abd".encoded());
    }

    /// A sink that only counts bytes: exercises streaming through a non-`Vec` sink.
    struct Counter(usize);

    impl EncodeSink for Counter {
        fn write(&mut self, bytes: &[u8]) {
            self.0 += bytes.len();
        }
    }

    #[test]
    fn custom_sink_sees_the_same_bytes_as_a_buffer() {
        let value = (7u64, vec!["hello".to_string(), "world".to_string()]);
        let mut counter = Counter(0);
        value.encode(&mut counter);
        assert_eq!(counter.0, value.encoded().len());
    }
}
