//! Deterministic binary encoding used for hashing and signing.
//!
//! Certificates in Hamava sign digests of protocol payloads (batches of operations,
//! reconfiguration sets, complaints). [`Encode`] produces a canonical byte string for
//! a value so that every replica computes the same digest for the same logical value.
//! It is intentionally *not* a full serialization framework: the simulator passes
//! messages by value, so only digest material needs encoding.

/// Canonical, deterministic binary encoding of a value.
pub trait Encode {
    /// Append the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        out.extend_from_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_encodings_are_length_prefixed_where_needed() {
        let v: Vec<u8> = vec![1, 2, 3];
        let enc = v.encoded();
        assert_eq!(&enc[..8], &3u64.to_le_bytes());
        assert_eq!(&enc[8..], &[1, 2, 3]);
        let s = "ab".encoded();
        assert_eq!(&s[..8], &2u64.to_le_bytes());
        assert_eq!(&s[8..], b"ab");
    }

    #[test]
    fn option_encoding_distinguishes_none_and_some() {
        assert_ne!(Option::<u32>::None.encoded(), Some(0u32).encoded());
    }

    #[test]
    fn nested_vectors_encode_deterministically() {
        let a: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let b: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        assert_eq!(a.encoded(), b.encoded());
    }

    #[test]
    fn different_values_have_different_encodings() {
        assert_ne!(5u64.encoded(), 6u64.encoded());
        assert_ne!("abc".encoded(), "abd".encoded());
    }
}
