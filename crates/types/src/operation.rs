//! Operations replicated by Hamava: transactions and reconfiguration requests.
//!
//! A round replicates, per cluster, a batch of transactions (ordered by the local
//! total-order broadcast) plus one *set* of reconfiguration requests (agreed through
//! Byzantine Reliable Dissemination). Stage 3 executes the union of all clusters'
//! batches in a deterministic order.

use crate::encode::{Encode, EncodeSink};
use crate::ids::{ClientId, Region, ReplicaId, Round, TxId};

/// The kind of a YCSB-style key/value transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxKind {
    /// Read the value of `key`.
    Read { key: u64 },
    /// Write `value_size` bytes under `key`.
    Write { key: u64, value_size: u32 },
    /// Atomically write `value_size` bytes under each of `keys` (YCSB-style
    /// multi-key transaction; ordered through the three stages like a write).
    MultiWrite {
        /// The keys written, in application order.
        keys: Vec<u64>,
        /// Bytes written under each key.
        value_size: u32,
    },
    /// Range read: the values of the first `count` present keys at or after
    /// `start_key`. Served cluster-locally from committed state, like `Read`.
    Scan {
        /// First key of the range.
        start_key: u64,
        /// Maximum number of keys returned.
        count: u32,
    },
}

impl TxKind {
    /// Whether this is a write transaction (goes through the three stages).
    pub fn is_write(&self) -> bool {
        matches!(self, TxKind::Write { .. } | TxKind::MultiWrite { .. })
    }

    /// The primary key accessed by the transaction (the first key for
    /// multi-key writes, the range start for scans).
    pub fn key(&self) -> u64 {
        match self {
            TxKind::Read { key } | TxKind::Write { key, .. } => *key,
            TxKind::MultiWrite { keys, .. } => keys.first().copied().unwrap_or(0),
            TxKind::Scan { start_key, .. } => *start_key,
        }
    }
}

/// A client transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Globally unique id (client, sequence number).
    pub id: TxId,
    /// The key/value operation.
    pub kind: TxKind,
    /// Total request payload size in bytes (the paper uses 1 KB operations).
    pub payload_size: u32,
}

impl Transaction {
    /// Construct a write transaction.
    pub fn write(client: ClientId, seq: u64, key: u64, payload_size: u32) -> Self {
        Transaction {
            id: TxId { client, seq },
            kind: TxKind::Write { key, value_size: payload_size },
            payload_size,
        }
    }

    /// Construct a read transaction.
    pub fn read(client: ClientId, seq: u64, key: u64) -> Self {
        Transaction { id: TxId { client, seq }, kind: TxKind::Read { key }, payload_size: 64 }
    }

    /// Construct a multi-key write transaction: `value_size` bytes under each
    /// of `keys`. The request payload carries every value.
    pub fn multi_write(client: ClientId, seq: u64, keys: Vec<u64>, value_size: u32) -> Self {
        let payload_size = value_size.saturating_mul(keys.len().min(u32::MAX as usize) as u32);
        Transaction {
            id: TxId { client, seq },
            kind: TxKind::MultiWrite { keys, value_size },
            payload_size,
        }
    }

    /// Construct a range-read (scan) transaction over up to `count` keys
    /// starting at `start_key`.
    pub fn scan(client: ClientId, seq: u64, start_key: u64, count: u32) -> Self {
        Transaction {
            id: TxId { client, seq },
            kind: TxKind::Scan { start_key, count },
            payload_size: 64,
        }
    }
}

/// A single reconfiguration request: a replica joining or leaving a cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Reconfig {
    /// `join(p)`: replica `p`, located in `region`, asks to join the cluster it sent
    /// the request to.
    Join { replica: ReplicaId, region: Region },
    /// `leave(p)`: replica `p` asks to leave its cluster.
    Leave { replica: ReplicaId },
}

impl Reconfig {
    /// The replica the request is about.
    pub fn replica(&self) -> ReplicaId {
        match *self {
            Reconfig::Join { replica, .. } | Reconfig::Leave { replica } => replica,
        }
    }

    /// Whether this is a join request.
    pub fn is_join(&self) -> bool {
        matches!(self, Reconfig::Join { .. })
    }
}

/// An operation replicated within a round: either a transaction or the set of
/// reconfigurations agreed for that round.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operation {
    /// `Trans(p, t)` in the paper: a transaction issued by client `p`.
    Trans(Transaction),
    /// `Reconfig(rc)` in the paper: the reconfiguration set agreed for `round`.
    ///
    /// The round is part of the operation's identity: in the single-workflow
    /// ablation (E5.2) every round orders its set through the transaction
    /// total-order broadcast, whose pool deduplicates operations by digest — two
    /// different rounds' (often empty) sets must not collide, or every round after
    /// the first wedges in Stage 1 waiting for a set the pool swallowed.
    ReconfigSet {
        /// The round the set is agreed for.
        round: Round,
        /// The reconfiguration requests of the set.
        recs: Vec<Reconfig>,
    },
    /// A leader-ordered round-cut marker: closes `round`'s batch at the block
    /// that carries it. The timeout cut of Stage 1 must land at the same point
    /// of every replica's local log or peers partition the block stream into
    /// rounds differently and their round packages diverge — so instead of each
    /// replica cutting on its own clock, the leader orders the cut through the
    /// total-order broadcast and every replica cuts where the marker commits.
    /// A marker whose round is already closed (the batch filled first, or a
    /// second leader raced one in) is simply skipped.
    RoundCut {
        /// The round the marker closes.
        round: Round,
    },
}

impl Operation {
    /// Whether this operation is a reconfiguration set.
    pub fn is_reconfig(&self) -> bool {
        matches!(self, Operation::ReconfigSet { .. })
    }
}

/// The batch of operations a cluster replicates in one round: the ordered
/// transactions plus (at most) one reconfiguration set.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OperationBatch {
    /// The round the batch belongs to.
    pub round: Round,
    /// Ordered operations (transactions first, then at most one reconfiguration set;
    /// the order within the batch is the local total-order).
    pub ops: Vec<Operation>,
}

impl OperationBatch {
    /// Create an empty batch for `round`.
    pub fn new(round: Round) -> Self {
        OperationBatch { round, ops: Vec::new() }
    }

    /// Number of transactions in the batch (markers and reconfiguration sets
    /// are control operations, not transactions).
    pub fn tx_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Operation::Trans(_))).count()
    }

    /// The reconfiguration set of the batch, if any.
    pub fn reconfig_set(&self) -> Option<&Vec<Reconfig>> {
        self.ops.iter().find_map(|o| match o {
            Operation::ReconfigSet { recs, .. } => Some(recs),
            Operation::Trans(_) | Operation::RoundCut { .. } => None,
        })
    }

    /// Total payload bytes carried by the batch (used for message-size modelling).
    pub fn payload_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|o| match o {
                Operation::Trans(t) => t.payload_size as usize,
                Operation::ReconfigSet { recs, .. } => recs.len() * 64,
                Operation::RoundCut { .. } => 16,
            })
            .sum()
    }
}

impl Encode for TxKind {
    fn encode(&self, out: &mut dyn EncodeSink) {
        match self {
            TxKind::Read { key } => {
                out.write(&[0]);
                key.encode(out);
            }
            TxKind::Write { key, value_size } => {
                out.write(&[1]);
                key.encode(out);
                value_size.encode(out);
            }
            TxKind::MultiWrite { keys, value_size } => {
                out.write(&[2]);
                keys.encode(out);
                value_size.encode(out);
            }
            TxKind::Scan { start_key, count } => {
                out.write(&[3]);
                start_key.encode(out);
                count.encode(out);
            }
        }
    }
}

impl Encode for Transaction {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.id.encode(out);
        self.kind.encode(out);
        self.payload_size.encode(out);
    }
}

impl Encode for Reconfig {
    fn encode(&self, out: &mut dyn EncodeSink) {
        match *self {
            Reconfig::Join { replica, region } => {
                out.write(&[0]);
                replica.encode(out);
                region.encode(out);
            }
            Reconfig::Leave { replica } => {
                out.write(&[1]);
                replica.encode(out);
            }
        }
    }
}

impl Encode for Operation {
    fn encode(&self, out: &mut dyn EncodeSink) {
        match self {
            Operation::Trans(t) => {
                out.write(&[0]);
                t.encode(out);
            }
            Operation::ReconfigSet { round, recs } => {
                out.write(&[1]);
                round.encode(out);
                recs.encode(out);
            }
            Operation::RoundCut { round } => {
                out.write(&[2]);
                round.encode(out);
            }
        }
    }
}

impl Encode for OperationBatch {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.round.encode(out);
        self.ops.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> OperationBatch {
        let mut b = OperationBatch::new(Round(1));
        b.ops.push(Operation::Trans(Transaction::write(ClientId(0), 0, 7, 1024)));
        b.ops.push(Operation::Trans(Transaction::read(ClientId(0), 1, 9)));
        b.ops.push(Operation::ReconfigSet {
            round: Round(1),
            recs: vec![Reconfig::Leave { replica: ReplicaId(3) }],
        });
        b
    }

    #[test]
    fn tx_kind_accessors() {
        assert!(TxKind::Write { key: 1, value_size: 10 }.is_write());
        assert!(!TxKind::Read { key: 1 }.is_write());
        assert_eq!(TxKind::Read { key: 42 }.key(), 42);
    }

    #[test]
    fn multi_key_and_scan_kinds() {
        let mw = TxKind::MultiWrite { keys: vec![5, 9], value_size: 10 };
        assert!(mw.is_write(), "multi-key writes are ordered like writes");
        assert_eq!(mw.key(), 5);
        let scan = TxKind::Scan { start_key: 3, count: 4 };
        assert!(!scan.is_write(), "scans are served from committed state");
        assert_eq!(scan.key(), 3);
        assert_ne!(mw.encoded(), scan.encoded());
        assert_ne!(
            mw.encoded(),
            TxKind::MultiWrite { keys: vec![9, 5], value_size: 10 }.encoded(),
            "key order is part of the identity"
        );
    }

    #[test]
    fn batch_counts_transactions_and_finds_reconfigs() {
        let b = batch();
        assert_eq!(b.tx_count(), 2);
        assert_eq!(b.reconfig_set().unwrap().len(), 1);
        assert!(b.payload_bytes() >= 1024);
    }

    #[test]
    fn reconfig_accessors() {
        let j = Reconfig::Join { replica: ReplicaId(9), region: Region::Europe };
        assert!(j.is_join());
        assert_eq!(j.replica(), ReplicaId(9));
        assert!(!Reconfig::Leave { replica: ReplicaId(9) }.is_join());
    }

    #[test]
    fn reconfig_sets_of_different_rounds_encode_differently() {
        // The regression behind E5.2's "0 txns": round-less empty sets collided in
        // the total-order broadcast's dedup pool.
        let a = Operation::ReconfigSet { round: Round(1), recs: vec![] };
        let b = Operation::ReconfigSet { round: Round(2), recs: vec![] };
        assert_ne!(a.encoded(), b.encoded());
    }

    #[test]
    fn encoding_distinguishes_batches() {
        let a = batch();
        let mut b = batch();
        b.ops.pop();
        assert_ne!(a.encoded(), b.encoded());
        assert_eq!(a.encoded(), batch().encoded());
    }
}
