//! Error type shared across the workspace.

use crate::ids::{ClusterId, ReplicaId, Round};
use std::fmt;

/// Errors surfaced by the protocol and simulation crates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AvaError {
    /// A certificate did not carry enough valid signatures for the claimed cluster.
    InvalidCertificate {
        /// The cluster the certificate claims to be from.
        cluster: ClusterId,
        /// Signatures expected (the quorum size).
        expected: usize,
        /// Valid signatures found.
        found: usize,
    },
    /// A signature failed verification.
    BadSignature {
        /// The claimed signer.
        signer: ReplicaId,
    },
    /// A message referred to a round the replica is not currently in.
    WrongRound {
        /// Round carried by the message.
        got: Round,
        /// The replica's current round.
        current: Round,
    },
    /// A replica id was not found in the membership map.
    UnknownReplica(ReplicaId),
    /// A cluster id was not found in the membership map.
    UnknownCluster(ClusterId),
    /// Generic configuration error with a description.
    Config(String),
}

impl fmt::Display for AvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvaError::InvalidCertificate { cluster, expected, found } => write!(
                f,
                "invalid certificate for {cluster}: expected {expected} signatures, found {found}"
            ),
            AvaError::BadSignature { signer } => write!(f, "bad signature from {signer}"),
            AvaError::WrongRound { got, current } => {
                write!(f, "message for {got} but replica is in {current}")
            }
            AvaError::UnknownReplica(r) => write!(f, "unknown replica {r}"),
            AvaError::UnknownCluster(c) => write!(f, "unknown cluster {c}"),
            AvaError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for AvaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = AvaError::InvalidCertificate { cluster: ClusterId(1), expected: 5, found: 3 };
        assert!(e.to_string().contains("expected 5"));
        let e = AvaError::WrongRound { got: Round(2), current: Round(3) };
        assert!(e.to_string().contains("r2"));
        assert!(AvaError::Config("bad".into()).to_string().contains("bad"));
    }
}
