//! # ava-bftsmart
//!
//! A from-scratch PBFT-style total-order broadcast modelled on BFT-SMaRt's MOD-SMaRt
//! consensus, used as the local replication protocol of AVA-BFTSMART.
//!
//! Per decision the protocol runs three communication steps: a leader *pre-prepare*
//! broadcast followed by all-to-all *prepare* and *commit* rounds, i.e. `O(2·n²)`
//! messages per decision (Table I of the paper) but only ~1.5 round trips of latency.
//! Compared to the HotStuff substrate this gives the asymmetry the paper's
//! evaluation shows: lower latency at small cluster sizes, lower throughput at large
//! ones because every replica handles `O(n)` messages per decision.
//!
//! ## Simplifications relative to BFT-SMaRt
//!
//! * One consensus instance at a time (no out-of-order instances); Hamava drives one
//!   batch per round so this does not change the round structure.
//! * The view-synchronization phase is externalised to Hamava's leader election
//!   module, exactly like the HotStuff pacemaker: liveness complaints surface as
//!   [`TobAction::Complain`] and the new regency arrives via `new_leader`.
//! * Prepare/commit votes sign the block digest, so the commit certificate doubles as
//!   the cross-cluster certificate shipped by Hamava's Stage 2.

use ava_consensus::{
    Block, CommittedBlock, FaultMode, PendingPool, TobAction, TobConfig, TotalOrderBroadcast,
    WireSize,
};
use ava_crypto::{Digest, KeyRegistry, Keypair, QuorumCert, SigSet, Signature};
use ava_types::{Operation, ReplicaId, Time, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// BFT-SMaRt-style wire messages.
#[derive(Clone, Debug)]
pub enum BftSmartMsg {
    /// A replica forwards an operation to the leader for ordering.
    Forward(Operation),
    /// Leader proposal starting a consensus instance (PBFT pre-prepare). The block
    /// is `Arc`-shared: the broadcast clones a pointer per member, not the batch.
    PrePrepare {
        /// The proposed block.
        block: Arc<Block>,
        /// Leader regency (timestamp) the proposal belongs to.
        regency: u64,
    },
    /// All-to-all prepare vote (PBFT prepare / BFT-SMaRt WRITE).
    Prepare {
        /// Height of the block being voted on.
        height: u64,
        /// Digest of the block.
        digest: Digest,
        /// Voter signature over the digest.
        sig: Signature,
        /// Leader regency.
        regency: u64,
    },
    /// All-to-all commit vote (PBFT commit / BFT-SMaRt ACCEPT).
    Commit {
        /// Height of the block being voted on.
        height: u64,
        /// Digest of the block.
        digest: Digest,
        /// Voter signature over the digest.
        sig: Signature,
        /// Leader regency.
        regency: u64,
    },
}

impl WireSize for BftSmartMsg {
    fn wire_size(&self) -> usize {
        match self {
            BftSmartMsg::Forward(op) => match op {
                Operation::Trans(t) => t.payload_size as usize + 48,
                Operation::ReconfigSet { recs, .. } => recs.len() * 64 + 56,
                Operation::RoundCut { .. } => 32,
            },
            BftSmartMsg::PrePrepare { block, .. } => block.wire_size(),
            BftSmartMsg::Prepare { .. } | BftSmartMsg::Commit { .. } => 120,
        }
    }
}

/// Per-instance voting state.
#[derive(Debug, Default)]
struct Instance {
    block: Option<Arc<Block>>,
    digest: Option<Digest>,
    prepares: SigSet,
    commits: SigSet,
    sent_commit: bool,
    delivered: bool,
}

/// The BFT-SMaRt-style total-order broadcast state machine for one replica.
pub struct BftSmart {
    cfg: TobConfig,
    keypair: Keypair,
    registry: KeyRegistry,
    leader: ReplicaId,
    regency: u64,
    fault: FaultMode,
    pool: PendingPool,
    /// Voting state per height.
    instances: HashMap<u64, Instance>,
    /// Next height the leader proposes at.
    next_propose_height: u64,
    /// Next height to deliver (deliveries are strictly in height order).
    next_deliver_height: u64,
    /// Whether the leader currently has an undecided proposal outstanding.
    proposal_outstanding: bool,
    /// Set by [`TotalOrderBroadcast::reset`]: the delivery cursor re-bases on the
    /// height of the first pre-prepare seen after a restart (the restarted replica
    /// learns the missed heights' effects via checkpoint/state transfer, not by
    /// re-running consensus for them).
    resync_delivery: bool,
}

impl BftSmart {
    /// Create a BFT-SMaRt instance for `cfg.me`, initially led by `leader`.
    pub fn new(cfg: TobConfig, keypair: Keypair, registry: KeyRegistry, leader: ReplicaId) -> Self {
        BftSmart {
            cfg,
            keypair,
            registry,
            leader,
            regency: 0,
            fault: FaultMode::Correct,
            pool: PendingPool::new(),
            instances: HashMap::new(),
            next_propose_height: 0,
            next_deliver_height: 0,
            proposal_outstanding: false,
            resync_delivery: false,
        }
    }

    fn is_leader(&self) -> bool {
        self.leader == self.cfg.me
    }

    fn broadcast_to_members(&self, msg: BftSmartMsg, out: &mut Vec<TobAction<BftSmartMsg>>) {
        for &member in &self.cfg.members {
            out.push(TobAction::Send { to: member, msg: msg.clone() });
        }
    }

    fn maybe_propose(&mut self, out: &mut Vec<TobAction<BftSmartMsg>>) {
        if !self.is_leader()
            || self.fault == FaultMode::SilentLeader
            || self.proposal_outstanding
            || self.pool.pending_len() == 0
        {
            return;
        }
        let ops = self.pool.take_batch(self.cfg.max_block_size);
        let block =
            Arc::new(Block::new(self.cfg.cluster, self.next_propose_height, self.cfg.me, ops));
        self.next_propose_height += 1;
        self.proposal_outstanding = true;
        out.push(TobAction::Consume(self.cfg.sign_cost));
        self.broadcast_to_members(BftSmartMsg::PrePrepare { block, regency: self.regency }, out);
    }

    fn handle_pre_prepare(
        &mut self,
        from: ReplicaId,
        block: Arc<Block>,
        regency: u64,
        out: &mut Vec<TobAction<BftSmartMsg>>,
    ) {
        if from != self.leader || regency != self.regency {
            return;
        }
        if self.resync_delivery {
            self.resync_delivery = false;
            self.next_deliver_height = self.next_deliver_height.max(block.height);
        }
        if block.height < self.next_deliver_height {
            return;
        }
        out.push(TobAction::Consume(self.cfg.verify_cost));
        let digest = block.digest();
        let height = block.height;
        let instance = self.instances.entry(height).or_default();
        if instance.block.is_some() {
            return;
        }
        instance.block = Some(block);
        instance.digest = Some(digest);
        out.push(TobAction::Consume(self.cfg.sign_cost));
        let sig = self.keypair.sign(&digest);
        let msg = BftSmartMsg::Prepare { height, digest, sig, regency: self.regency };
        self.broadcast_to_members(msg, out);
    }

    fn handle_vote(
        &mut self,
        from: ReplicaId,
        height: u64,
        digest: Digest,
        sig: Signature,
        regency: u64,
        is_commit: bool,
        now: Time,
        out: &mut Vec<TobAction<BftSmartMsg>>,
    ) {
        if regency != self.regency
            || height < self.next_deliver_height
            || !self.cfg.members.contains(&from)
        {
            return;
        }
        out.push(TobAction::Consume(self.cfg.verify_cost));
        if !self.registry.verify(&digest, &sig) {
            return;
        }
        let quorum = self.cfg.quorum();
        let me = self.keypair.clone();
        let instance = self.instances.entry(height).or_default();
        if instance.digest.is_some_and(|d| d != digest) {
            // Conflicting digest for the same height within a regency: ignore; only
            // the digest matching the leader's pre-prepare is voted on.
            return;
        }
        if is_commit {
            instance.commits.insert(sig);
        } else {
            instance.prepares.insert(sig);
        }
        // Move to the commit phase once a prepare quorum is known.
        if !instance.sent_commit
            && instance.prepares.len() >= quorum
            && instance.digest == Some(digest)
        {
            instance.sent_commit = true;
            out.push(TobAction::Consume(self.cfg.sign_cost));
            let my_sig = me.sign(&digest);
            let msg = BftSmartMsg::Commit { height, digest, sig: my_sig, regency };
            self.broadcast_to_members(msg, out);
        }
        self.try_deliver(now, out);
    }

    fn try_deliver(&mut self, now: Time, out: &mut Vec<TobAction<BftSmartMsg>>) {
        loop {
            let height = self.next_deliver_height;
            let quorum = self.cfg.quorum();
            let ready = {
                let Some(instance) = self.instances.get(&height) else { break };
                !instance.delivered && instance.block.is_some() && instance.commits.len() >= quorum
            };
            if !ready {
                break;
            }
            let mut instance = self.instances.remove(&height).expect("checked above");
            instance.delivered = true;
            let block = instance.block.take().expect("checked above");
            let digest = instance.digest.expect("digest set with block");
            let cert = QuorumCert::new(self.cfg.cluster, digest, instance.commits.clone());
            self.pool.mark_delivered(&block.ops, now);
            self.next_deliver_height = height + 1;
            if self.is_leader() {
                self.proposal_outstanding = false;
            }
            out.push(TobAction::Deliver(CommittedBlock { block, cert }));
            self.maybe_propose(out);
        }
    }
}

impl TotalOrderBroadcast for BftSmart {
    type Msg = BftSmartMsg;

    fn name(&self) -> &'static str {
        "BFT-SMaRt"
    }

    fn broadcast(&mut self, op: Operation, now: Time) -> Vec<TobAction<BftSmartMsg>> {
        let mut out = Vec::new();
        self.pool.record_my_broadcast(op.clone(), now);
        if self.is_leader() {
            self.pool.enqueue(op);
            self.maybe_propose(&mut out);
        } else {
            out.push(TobAction::Send { to: self.leader, msg: BftSmartMsg::Forward(op) });
        }
        out
    }

    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: BftSmartMsg,
        now: Time,
    ) -> Vec<TobAction<BftSmartMsg>> {
        let mut out = Vec::new();
        match msg {
            BftSmartMsg::Forward(op) => {
                if self.is_leader() {
                    self.pool.enqueue(op);
                    self.maybe_propose(&mut out);
                }
            }
            BftSmartMsg::PrePrepare { block, regency } => {
                self.handle_pre_prepare(from, block, regency, &mut out);
            }
            BftSmartMsg::Prepare { height, digest, sig, regency } => {
                self.handle_vote(from, height, digest, sig, regency, false, now, &mut out);
            }
            BftSmartMsg::Commit { height, digest, sig, regency } => {
                self.handle_vote(from, height, digest, sig, regency, true, now, &mut out);
            }
        }
        out
    }

    fn on_tick(&mut self, now: Time) -> Vec<TobAction<BftSmartMsg>> {
        let mut out = Vec::new();
        self.maybe_propose(&mut out);
        if self.pool.should_complain(now, self.cfg.timeout) {
            out.push(TobAction::Complain { leader: self.leader });
        }
        out
    }

    fn new_leader(
        &mut self,
        leader: ReplicaId,
        ts: Timestamp,
        now: Time,
    ) -> Vec<TobAction<BftSmartMsg>> {
        let mut out = Vec::new();
        if ts.0 <= self.regency && leader == self.leader {
            return out;
        }
        self.leader = leader;
        self.regency = ts.0;
        // Abandon undecided instances; their operations are re-forwarded below by the
        // replicas that originally broadcast them (BFT-SMaRt's view synchronization
        // re-proposes pending requests the same way).
        self.instances.retain(|_, inst| inst.delivered);
        self.next_propose_height = self.next_deliver_height;
        self.proposal_outstanding = false;
        self.pool.reset_watch(now);
        for op in self.pool.my_undelivered().to_vec() {
            if self.is_leader() {
                self.pool.enqueue(op);
            } else {
                out.push(TobAction::Send { to: self.leader, msg: BftSmartMsg::Forward(op) });
            }
        }
        self.maybe_propose(&mut out);
        out
    }

    fn set_membership(&mut self, members: Vec<ReplicaId>) {
        self.cfg.members = members;
    }

    fn leader(&self) -> ReplicaId {
        self.leader
    }

    fn set_fault_mode(&mut self, mode: FaultMode) {
        self.fault = mode;
    }

    fn reset(&mut self) {
        self.regency = 0;
        self.fault = FaultMode::Correct;
        self.pool = PendingPool::new();
        self.instances.clear();
        self.next_propose_height = 0;
        self.next_deliver_height = 0;
        self.proposal_outstanding = false;
        self.resync_delivery = true;
    }
}

#[cfg(test)]
mod tests;
