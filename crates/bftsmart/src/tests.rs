//! Unit and property tests for the BFT-SMaRt-style total-order broadcast.

use super::*;
use ava_consensus::testkit::LocalNet;
use ava_types::{ClientId, ClusterId, Duration, Transaction};
use proptest::prelude::*;

fn make_net(n: u32) -> (LocalNet<BftSmart>, KeyRegistry, Vec<ReplicaId>) {
    let registry = KeyRegistry::new();
    let members: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
    let leader = ReplicaId(0);
    let nodes: Vec<(ReplicaId, BftSmart)> = members
        .iter()
        .map(|&id| {
            let kp = registry.register(id);
            let mut cfg = TobConfig::new(ClusterId(0), id, members.clone());
            cfg.max_block_size = 10;
            cfg.timeout = Duration::from_secs(5);
            (id, BftSmart::new(cfg, kp, registry.clone(), leader))
        })
        .collect();
    (LocalNet::new(nodes), registry, members)
}

fn tx(seq: u64) -> Operation {
    Operation::Trans(Transaction::write(ClientId(2), seq, seq % 16, 512))
}

#[test]
fn all_replicas_deliver_the_same_operations() {
    let (mut net, _, _) = make_net(4);
    for i in 0..7 {
        net.broadcast(ReplicaId(i % 4), tx(i as u64));
    }
    net.run_to_quiescence(200_000);
    let reference = net.delivered_ops(ReplicaId(0));
    assert_eq!(reference.len(), 7);
    for r in 1..4 {
        assert_eq!(net.delivered_ops(ReplicaId(r)), reference, "replica {r} diverged");
    }
}

#[test]
fn commit_certificates_validate_against_cluster_quorum() {
    let (mut net, registry, members) = make_net(7);
    net.broadcast(ReplicaId(3), tx(0));
    net.run_to_quiescence(200_000);
    let blocks = net.delivered_at(ReplicaId(5));
    assert_eq!(blocks.len(), 1);
    assert!(blocks[0].verify(&registry, &members, 5));
    assert!(!blocks[0].verify(&registry, &members, 8));
}

#[test]
fn deliveries_are_in_height_order() {
    let (mut net, _, _) = make_net(4);
    for i in 0..35 {
        net.broadcast(ReplicaId(i % 4), tx(i as u64));
    }
    net.tick(Duration::from_millis(1));
    net.run_to_quiescence(500_000);
    for r in 0..4 {
        let blocks = net.delivered_at(ReplicaId(r));
        let heights: Vec<u64> = blocks.iter().map(|b| b.block.height).collect();
        let mut sorted = heights.clone();
        sorted.sort_unstable();
        assert_eq!(heights, sorted);
        assert_eq!(net.delivered_ops(ReplicaId(r)).len(), 35);
    }
}

#[test]
fn silent_leader_triggers_complaints_and_recovery() {
    let (mut net, _, _) = make_net(4);
    net.nodes.get_mut(&ReplicaId(0)).unwrap().set_fault_mode(FaultMode::SilentLeader);
    for i in 0..3 {
        net.broadcast(ReplicaId(i + 1), tx(i as u64));
    }
    net.run_to_quiescence(100_000);
    assert!(net.delivered_ops(ReplicaId(1)).is_empty());
    net.tick(Duration::from_secs(6));
    net.run_to_quiescence(100_000);
    assert!(net.complaints.values().filter(|c| !c.is_empty()).count() >= 3);
    net.install_leader(ReplicaId(1), Timestamp(1));
    net.run_to_quiescence(100_000);
    net.tick(Duration::from_millis(10));
    net.run_to_quiescence(100_000);
    assert_eq!(net.delivered_ops(ReplicaId(2)).len(), 3);
}

#[test]
fn tolerates_f_crashed_followers() {
    let (mut net, _, _) = make_net(7);
    net.down.insert(ReplicaId(5));
    net.down.insert(ReplicaId(6));
    for i in 0..5 {
        net.broadcast(ReplicaId(i % 4), tx(i as u64));
    }
    net.run_to_quiescence(300_000);
    assert_eq!(net.delivered_ops(ReplicaId(0)).len(), 5);
    assert_eq!(net.delivered_ops(ReplicaId(4)).len(), 5);
}

#[test]
fn uses_quadratic_message_pattern() {
    // One decision in a 4-replica cluster: pre-prepare (4 sends) + prepare (4×4) +
    // commit (4×4) ≈ 36 messages, clearly above HotStuff's linear pattern. The test
    // pins the order of magnitude rather than the exact constant.
    let (mut net, _, _) = make_net(4);
    net.broadcast(ReplicaId(0), tx(0));
    net.run_to_quiescence(10_000);
    // `LocalNet` does not count messages, so re-derive from delivered certificates:
    // every replica must have seen commit votes from a quorum of distinct replicas.
    let blocks = net.delivered_at(ReplicaId(2));
    assert_eq!(blocks.len(), 1);
    assert!(blocks[0].cert.signature_count() >= 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Uniform agreement for arbitrary small workloads and cluster sizes.
    #[test]
    fn prop_uniform_agreement(n in 4u32..8, ops in 1usize..25, seed in 0u32..1000) {
        let (mut net, _, _) = make_net(n);
        for i in 0..ops {
            net.broadcast(ReplicaId((seed.wrapping_add(i as u32)) % n), tx(i as u64));
        }
        net.tick(Duration::from_millis(1));
        net.run_to_quiescence(2_000_000);
        let reference = net.delivered_ops(ReplicaId(0));
        prop_assert_eq!(reference.len(), ops);
        for r in 1..n {
            prop_assert_eq!(net.delivered_ops(ReplicaId(r)), reference.clone());
        }
    }

    /// Certificates of delivered blocks are always valid for the current quorum.
    #[test]
    fn prop_certificates_always_valid(n in 4u32..8, ops in 1usize..12) {
        let (mut net, registry, members) = make_net(n);
        let quorum = 2 * ((n as usize - 1) / 3) + 1;
        for i in 0..ops {
            net.broadcast(ReplicaId(i as u32 % n), tx(i as u64));
        }
        net.tick(Duration::from_millis(1));
        net.run_to_quiescence(2_000_000);
        for &r in &members {
            for block in net.delivered_at(r) {
                prop_assert!(block.verify(&registry, &members, quorum));
            }
        }
    }
}
