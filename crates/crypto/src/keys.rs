//! Keypairs, signatures and the shared key registry.
//!
//! See the crate-level documentation for why this is a *simulation-grade* scheme:
//! signatures are HMAC-SHA-256 tags over message digests under per-replica secrets,
//! and verification looks the secret up in a registry shared by the whole simulated
//! deployment. Replicas can only sign through their own [`Keypair`] handle, which is
//! what enforces unforgeability inside the simulation.

use crate::hmac::hmac_sha256;
use crate::sha256::Digest;
use ava_types::{Encode, EncodeSink, ReplicaId};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A signature produced by a replica over a digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    /// The signing replica.
    pub signer: ReplicaId,
    /// HMAC tag over the signed digest.
    pub tag: [u8; 32],
}

impl Encode for Signature {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.signer.encode(out);
        out.write(&self.tag);
    }
}

struct RegistryInner {
    /// Identifier unique to this registry instance for the whole process lifetime
    /// (monotonic counter, never reused — unlike a heap address).
    id: u64,
    secrets: HashMap<ReplicaId, [u8; 32]>,
    /// Memo of *expected* HMAC tags by `(signer, digest)`.
    ///
    /// In a simulated deployment the same signature is verified by every receiver of
    /// a broadcast; the expected tag depends only on the signer's secret and the
    /// digest, so the first verification pays the HMAC and the rest are a map
    /// lookup. Only registry-derived tags are cached (never attacker-supplied ones),
    /// so a forged signature can not poison the memo. Bounded by
    /// [`TAG_MEMO_CAPACITY`]; cleared wholesale when full (tags are recomputable).
    tags: HashMap<(ReplicaId, [u8; 32]), [u8; 32]>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        RegistryInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            secrets: HashMap::new(),
            tags: HashMap::new(),
        }
    }
}

/// Upper bound on memoised `(signer, digest)` tags (~72 bytes each, so ≈ 75 MiB
/// worst case) before the memo is reset.
const TAG_MEMO_CAPACITY: usize = 1 << 20;

/// Registry mapping replica ids to their secrets.
///
/// Cloning the registry is cheap (it is an `Arc`); every replica of a simulated
/// deployment holds a clone and uses it to verify signatures from any other replica.
#[derive(Clone, Default)]
pub struct KeyRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

impl KeyRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generate (deterministically from the replica id) and register a keypair for
    /// `replica`. Returns the keypair handle the replica signs with.
    pub fn register(&self, replica: ReplicaId) -> Keypair {
        // Deterministic secrets keep simulation runs reproducible; unforgeability is
        // structural (only the owning replica holds the Keypair), not cryptographic.
        let secret = crate::sha256::sha256(&{
            let mut bytes = b"ava-secret-".to_vec();
            replica.encode(&mut bytes);
            bytes
        });
        self.inner.write().expect("registry lock poisoned").secrets.insert(replica, secret);
        Keypair { id: replica, secret }
    }

    /// Whether `replica` has a registered key.
    pub fn is_registered(&self, replica: ReplicaId) -> bool {
        self.inner.read().expect("registry lock poisoned").secrets.contains_key(&replica)
    }

    /// An identifier unique to this registry instance (and its clones) for the
    /// whole process lifetime, used to key per-certificate verification memos so
    /// results from one registry are never replayed against another (a monotonic
    /// id, so a dropped registry's identity is never reused the way a heap address
    /// can be).
    pub fn instance_id(&self) -> u64 {
        self.inner.read().expect("registry lock poisoned").id
    }

    /// Verify `sig` over `digest`.
    ///
    /// The expected tag for `(signer, digest)` is memoised, so when every member of
    /// a cluster verifies the same broadcast signature only the first check pays the
    /// HMAC cost. The common memo-hit path takes only the read lock; the write lock
    /// is taken just to install a freshly computed tag. (Replicas still *charge
    /// themselves* the modelled `per_sig_verify` CPU time — the memo changes
    /// wall-clock, not virtual time.)
    pub fn verify(&self, digest: &Digest, sig: &Signature) -> bool {
        let key = (sig.signer, digest.0);
        let secret = {
            let inner = self.inner.read().expect("registry lock poisoned");
            if let Some(expected) = inner.tags.get(&key) {
                return *expected == sig.tag;
            }
            match inner.secrets.get(&sig.signer) {
                Some(secret) => *secret,
                None => return false,
            }
        };
        let expected = hmac_sha256(&secret, &digest.0);
        let mut inner = self.inner.write().expect("registry lock poisoned");
        if inner.tags.len() >= TAG_MEMO_CAPACITY {
            inner.tags.clear();
        }
        inner.tags.insert(key, expected);
        expected == sig.tag
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock poisoned").secrets.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A replica's signing handle.
#[derive(Clone)]
pub struct Keypair {
    /// The replica this keypair belongs to.
    pub id: ReplicaId,
    secret: [u8; 32],
}

impl Keypair {
    /// Sign a digest.
    pub fn sign(&self, digest: &Digest) -> Signature {
        Signature { signer: self.id, tag: hmac_sha256(&self.secret, &digest.0) }
    }

    /// Sign the canonical encoding of a value.
    pub fn sign_value<T: Encode + ?Sized>(&self, value: &T) -> Signature {
        self.sign(&Digest::of(value))
    }
}

impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "Keypair({})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_and_verify_roundtrip() {
        let reg = KeyRegistry::new();
        let kp = reg.register(ReplicaId(1));
        let digest = Digest::of(&"hello".to_string());
        let sig = kp.sign(&digest);
        assert!(reg.verify(&digest, &sig));
    }

    #[test]
    fn verification_fails_for_wrong_digest_or_signer() {
        let reg = KeyRegistry::new();
        let kp1 = reg.register(ReplicaId(1));
        reg.register(ReplicaId(2));
        let digest = Digest::of(&1u64);
        let other = Digest::of(&2u64);
        let sig = kp1.sign(&digest);
        assert!(!reg.verify(&other, &sig));
        // Claiming another signer with the same tag must fail.
        let forged = Signature { signer: ReplicaId(2), ..sig };
        assert!(!reg.verify(&digest, &forged));
    }

    #[test]
    fn unregistered_signer_is_rejected() {
        let reg = KeyRegistry::new();
        let rogue_reg = KeyRegistry::new();
        let rogue = rogue_reg.register(ReplicaId(9));
        let digest = Digest::of(&3u64);
        assert!(!reg.verify(&digest, &rogue.sign(&digest)));
        assert!(!reg.is_registered(ReplicaId(9)));
    }

    #[test]
    fn tag_memo_never_validates_forged_tags() {
        let reg = KeyRegistry::new();
        let kp = reg.register(ReplicaId(1));
        let digest = Digest::of(&5u64);
        let good = kp.sign(&digest);
        // Prime the memo with the genuine verification, then check a forged tag for
        // the same (signer, digest) key is still rejected on the memo-hit path.
        assert!(reg.verify(&digest, &good));
        let forged = Signature { signer: ReplicaId(1), tag: [0u8; 32] };
        assert!(!reg.verify(&digest, &forged));
        assert!(reg.verify(&digest, &good));
    }

    #[test]
    fn registry_counts_keys() {
        let reg = KeyRegistry::new();
        assert!(reg.is_empty());
        reg.register(ReplicaId(0));
        reg.register(ReplicaId(1));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let reg = KeyRegistry::new();
        let kp = reg.register(ReplicaId(3));
        let s = format!("{kp:?}");
        assert!(s.contains("p3"));
        assert!(!s.contains("secret"));
    }
}
