//! HMAC-SHA-256 (RFC 2104), built on the from-scratch SHA-256.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// HMAC-SHA-256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&out), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case_2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&out), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&out), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn different_keys_give_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k1", b"msg1"), hmac_sha256(b"k1", b"msg2"));
    }
}
