//! Signature sets and quorum certificates.
//!
//! Hamava's inter-cluster messages carry certificates proving that a payload was
//! approved by a quorum of the originating cluster: commit certificates from the
//! local total-order broadcast, the BRD certificates `Σ` (collected from a quorum)
//! and `Σ'` (voted for delivery), and the complaint signature sets of the remote
//! leader change. All of them are a [`SigSet`] over a digest, and validity is always
//! judged against the membership of the *claimed* cluster.

use crate::keys::{KeyRegistry, Signature};
use crate::sha256::Digest;
use ava_types::{ClusterId, Encode, EncodeSink, ReplicaId};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A set of signatures over a single digest, at most one per signer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SigSet {
    sigs: BTreeMap<ReplicaId, Signature>,
}

impl SigSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a signature (replaces any previous signature by the same signer).
    pub fn insert(&mut self, sig: Signature) {
        self.sigs.insert(sig.signer, sig);
    }

    /// Number of distinct signers.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Whether `signer` has signed.
    pub fn contains(&self, signer: ReplicaId) -> bool {
        self.sigs.contains_key(&signer)
    }

    /// The signers, in ascending id order.
    pub fn signers(&self) -> Vec<ReplicaId> {
        self.sigs.keys().copied().collect()
    }

    /// Iterate over the signatures.
    pub fn iter(&self) -> impl Iterator<Item = &Signature> {
        self.sigs.values()
    }

    /// Count how many signatures verify over `digest`, only counting signers in
    /// `allowed` (the membership of the claimed cluster).
    pub fn count_valid(
        &self,
        registry: &KeyRegistry,
        digest: &Digest,
        allowed: &[ReplicaId],
    ) -> usize {
        self.sigs
            .values()
            .filter(|sig| allowed.contains(&sig.signer) && registry.verify(digest, sig))
            .count()
    }

    /// Merge another signature set into this one.
    pub fn merge(&mut self, other: &SigSet) {
        for sig in other.iter() {
            self.insert(*sig);
        }
    }
}

impl Encode for SigSet {
    fn encode(&self, out: &mut dyn EncodeSink) {
        (self.sigs.len() as u64).encode(out);
        for sig in self.sigs.values() {
            sig.encode(out);
        }
    }
}

impl FromIterator<Signature> for SigSet {
    fn from_iter<I: IntoIterator<Item = Signature>>(iter: I) -> Self {
        let mut set = SigSet::new();
        for sig in iter {
            set.insert(sig);
        }
        set
    }
}

/// A certificate that a quorum of a specific cluster signed a digest.
///
/// This is the unit attached to operations in inter-cluster messages (Alg. 1: "a
/// certificate for an operation contains at least `2·f_i + 1` signatures").
///
/// Verification carries a single-entry memo: when the same certificate value is
/// shared by reference across many verifiers (the `Arc`-shared round packages of the
/// Stage 2 fan-out), only the first verifier pays the per-signature HMAC cost for a
/// given `(registry, digest, members, threshold)` context; the rest hit the memo.
/// The memo is interior state only — it does not participate in equality, hashing or
/// encoding; the `Mutex` keeps the certificate `Sync` (it is uncontended in the
/// single-threaded simulator).
pub struct QuorumCert {
    /// The cluster whose quorum signed.
    pub cluster: ClusterId,
    /// The signed digest.
    pub digest: Digest,
    /// The signatures.
    pub sigs: SigSet,
    /// `(context key, verdict)` of the most recent `is_valid` evaluation.
    valid_memo: Mutex<Option<(u64, bool)>>,
}

impl Clone for QuorumCert {
    fn clone(&self) -> Self {
        QuorumCert {
            cluster: self.cluster,
            digest: self.digest,
            sigs: self.sigs.clone(),
            valid_memo: Mutex::new(*self.valid_memo.lock().expect("memo lock poisoned")),
        }
    }
}

/// FNV-1a over the full verification context, so a memo hit can only replay a
/// verdict computed for the identical question.
fn memo_key(registry: &KeyRegistry, expected: &Digest, members: &[ReplicaId], t: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(&registry.instance_id().to_le_bytes());
    mix(&expected.0);
    mix(&(t as u64).to_le_bytes());
    mix(&(members.len() as u64).to_le_bytes());
    for m in members {
        mix(&m.0.to_le_bytes());
    }
    h
}

impl QuorumCert {
    /// Build a certificate from parts.
    pub fn new(cluster: ClusterId, digest: Digest, sigs: SigSet) -> Self {
        QuorumCert { cluster, digest, sigs, valid_memo: Mutex::new(None) }
    }

    /// Verify that the certificate carries at least `threshold` valid signatures from
    /// members of `members` over `expected` (which must equal the certificate's
    /// digest).
    pub fn is_valid(
        &self,
        registry: &KeyRegistry,
        expected: &Digest,
        members: &[ReplicaId],
        threshold: usize,
    ) -> bool {
        if self.digest != *expected {
            return false;
        }
        let key = memo_key(registry, expected, members, threshold);
        if let Some((cached_key, verdict)) = *self.valid_memo.lock().expect("memo lock poisoned") {
            if cached_key == key {
                return verdict;
            }
        }
        let verdict = self.sigs.count_valid(registry, expected, members) >= threshold;
        *self.valid_memo.lock().expect("memo lock poisoned") = Some((key, verdict));
        verdict
    }

    /// Number of signatures carried (valid or not).
    pub fn signature_count(&self) -> usize {
        self.sigs.len()
    }
}

impl PartialEq for QuorumCert {
    fn eq(&self, other: &Self) -> bool {
        self.cluster == other.cluster && self.digest == other.digest && self.sigs == other.sigs
    }
}

impl Eq for QuorumCert {}

impl std::fmt::Debug for QuorumCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumCert")
            .field("cluster", &self.cluster)
            .field("digest", &self.digest)
            .field("sigs", &self.sigs)
            .finish()
    }
}

impl Encode for QuorumCert {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.cluster.encode(out);
        self.digest.encode(out);
        self.sigs.encode(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::Keypair;

    fn setup(n: u32) -> (KeyRegistry, Vec<Keypair>, Vec<ReplicaId>) {
        let reg = KeyRegistry::new();
        let kps: Vec<Keypair> = (0..n).map(|i| reg.register(ReplicaId(i))).collect();
        let ids: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
        (reg, kps, ids)
    }

    #[test]
    fn sigset_deduplicates_signers() {
        let (_, kps, _) = setup(2);
        let digest = Digest::of(&1u64);
        let mut set = SigSet::new();
        set.insert(kps[0].sign(&digest));
        set.insert(kps[0].sign(&digest));
        set.insert(kps[1].sign(&digest));
        assert_eq!(set.len(), 2);
        assert!(set.contains(ReplicaId(0)));
    }

    #[test]
    fn count_valid_ignores_outsiders_and_bad_sigs() {
        let (reg, kps, ids) = setup(4);
        let digest = Digest::of(&7u64);
        let other = Digest::of(&8u64);
        let mut set = SigSet::new();
        set.insert(kps[0].sign(&digest));
        set.insert(kps[1].sign(&other)); // wrong digest
        set.insert(kps[3].sign(&digest));
        // Only members 0..3 allowed: kps[3] excluded.
        assert_eq!(set.count_valid(&reg, &digest, &ids[..3]), 1);
        assert_eq!(set.count_valid(&reg, &digest, &ids), 2);
    }

    #[test]
    fn quorum_cert_valid_iff_threshold_met() {
        let (reg, kps, ids) = setup(4); // f=1, quorum=3
        let digest = Digest::of(&"ops".to_string());
        let sigs: SigSet = kps[..3].iter().map(|kp| kp.sign(&digest)).collect();
        let cert = QuorumCert::new(ClusterId(0), digest, sigs);
        assert!(cert.is_valid(&reg, &digest, &ids, 3));
        assert!(!cert.is_valid(&reg, &digest, &ids, 4));
        assert!(!cert.is_valid(&reg, &Digest::of(&"other".to_string()), &ids, 3));
        assert_eq!(cert.signature_count(), 3);
    }

    #[test]
    fn stale_threshold_attack_is_rejected_with_updated_membership() {
        // Section II-B attack: after C1 grows from 4 to 7 replicas (f': 2, quorum 5),
        // a certificate with only 3 signatures must be rejected by a replica that has
        // applied the reconfiguration, even though 3 was a quorum for the old size.
        let (reg, kps, _) = setup(7);
        let digest = Digest::of(&"forged-ops".to_string());
        let sigs: SigSet = kps[..3].iter().map(|kp| kp.sign(&digest)).collect();
        let cert = QuorumCert::new(ClusterId(0), digest, sigs);
        let new_members: Vec<ReplicaId> = (0..7).map(ReplicaId).collect();
        let old_quorum = 3;
        let new_quorum = 5;
        assert!(cert.is_valid(&reg, &digest, &new_members, old_quorum));
        assert!(!cert.is_valid(&reg, &digest, &new_members, new_quorum));
    }

    #[test]
    fn merge_unions_signers() {
        let (_, kps, _) = setup(3);
        let digest = Digest::of(&1u64);
        let mut a: SigSet = kps[..1].iter().map(|kp| kp.sign(&digest)).collect();
        let b: SigSet = kps[1..].iter().map(|kp| kp.sign(&digest)).collect();
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.signers(), vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)]);
    }
}
