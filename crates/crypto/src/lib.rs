//! # ava-crypto
//!
//! Cryptographic substrate for the Hamava reproduction: SHA-256 and HMAC-SHA-256
//! implemented from scratch, a simulation-grade signature scheme, and the signature
//! sets / quorum certificates that Hamava's certificates (`Σ`, `Σ'`, commit
//! certificates) are built from.
//!
//! ## Simulation signatures
//!
//! The paper's deployments use real public-key signatures. In this reproduction all
//! replicas run inside one process, so unforgeability is enforced structurally: a
//! replica can only produce signatures through its own [`Keypair`] handle, and a
//! shared [`KeyRegistry`] lets any replica verify any signature (HMAC over the
//! message digest under the signer's registered secret). The *cost* of signing and
//! verifying is modelled separately by the simulator's cost model so that certificate
//! verification still shows up in latency breakdowns. This substitution is documented
//! in `DESIGN.md` §1.

pub mod cert;
pub mod hmac;
pub mod keys;
pub mod sha256;

pub use cert::{QuorumCert, SigSet};
pub use hmac::hmac_sha256;
pub use keys::{KeyRegistry, Keypair, Signature};
pub use sha256::{sha256, Digest, Sha256};
