//! # ava-geobft
//!
//! Baselines for the paper's comparative experiments:
//!
//! * **GeoBFT-style clustered replication** (experiment E6). GeoBFT (ResilientDB)
//!   partitions replicas into clusters, runs PBFT locally, and has the local leader
//!   share each locally certified batch with `f+1` replicas of every remote cluster,
//!   which re-broadcast it locally — exactly the structure Hamava generalises
//!   (§ Related Work: "the inspiring work GeoBFT"). The crucial difference is that
//!   GeoBFT's membership is *fixed*: no reconfiguration, no heterogeneous cluster
//!   sizes by design. This crate therefore builds the comparator as the same
//!   clustered machinery instantiated with the PBFT-style local consensus and with
//!   reconfiguration disabled, which reproduces GeoBFT's message and latency
//!   structure while making the "GeoBFT cannot reconfigure" distinction explicit.
//! * **Non-clustered PBFT** (the classical baseline the paper's complexity analysis
//!   compares against): all replicas in one cluster spanning every region.
//!
//! Both baselines are driven through the same [`ava_hamava::Deployment`] harness so
//! that the benchmark crate can sweep them with identical workloads.

use ava_types::{Region, SystemConfig};

/// Adjust `config` for a GeoBFT-style run: clustered, PBFT local ordering, certified
/// global sharing, fixed membership.
///
/// A GeoBFT configuration must not be driven with join/leave requests — GeoBFT has
/// no reconfiguration path, and that is precisely the capability gap E6 highlights.
/// `ava_scenario::Protocol::GeoBft` enforces this by rejecting reconfiguration
/// events at deployment time.
pub fn geobft_config(mut config: SystemConfig) -> SystemConfig {
    // GeoBFT processes client batches directly; there is no parallel reconfiguration
    // workflow to overlap, so disable it (the BRD round still closes with an empty
    // set, mirroring GeoBFT's lack of a reconfiguration phase).
    config.params.parallel_reconfig_workflow = true;
    config
}

/// Configuration for the classical non-clustered baseline: every replica in a single
/// cluster, spread over `regions` round-robin.
pub fn non_clustered_config(total: usize, regions: &[Region]) -> SystemConfig {
    assert!(total > 0 && !regions.is_empty());
    let replicas: Vec<Region> = (0..total).map(|i| regions[i % regions.len()]).collect();
    SystemConfig::heterogeneous(&[replicas])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_hamava::harness::{bftsmart_factory, Deployment, DeploymentOptions};
    use ava_simnet::{CostModel, LatencyModel};
    use ava_types::{ClusterId, Duration, Output};
    use ava_workload::WorkloadSpec;

    fn small_opts() -> DeploymentOptions {
        DeploymentOptions {
            seed: 7,
            latency: LatencyModel::paper_table2().with_jitter(0.0),
            costs: CostModel::cloud_vm(),
            workload: WorkloadSpec { key_space: 1000, ..WorkloadSpec::default() },
            clients_per_cluster: 1,
            client_concurrency: 32,
            store: None,
            state_machine: ava_hamava::StateMachineKind::Counter,
        }
    }

    #[test]
    fn geobft_deployment_processes_transactions() {
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.batch_size = 20;
        let mut dep = Deployment::build(geobft_config(config), small_opts(), bftsmart_factory());
        dep.run_for(Duration::from_secs(10));
        let committed =
            dep.outputs().iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();
        assert!(committed > 0, "GeoBFT baseline should commit transactions");
    }

    #[test]
    fn geobft_config_forces_the_direct_processing_path() {
        let mut config = SystemConfig::even_split_single_region(8, 2, Region::UsWest);
        config.params.parallel_reconfig_workflow = false;
        assert!(geobft_config(config).params.parallel_reconfig_workflow);
    }

    #[test]
    fn non_clustered_config_is_one_cluster_across_regions() {
        let cfg = non_clustered_config(9, &[Region::UsWest, Region::Europe, Region::AsiaSouth]);
        assert_eq!(cfg.clusters.len(), 1);
        let m = cfg.membership();
        assert_eq!(m.size(ClusterId(0)), 9);
        assert_eq!(m.f(ClusterId(0)), 2);
    }
}
