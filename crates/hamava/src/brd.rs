//! Byzantine Reliable Dissemination (BRD) — Alg. 5 and 6 of the paper.
//!
//! BRD collects the reconfiguration requests every replica of a cluster gathered in
//! the current round, aggregates them at the leader, and disseminates the aggregated
//! *set* uniformly: every correct replica of the cluster delivers exactly the same
//! set, even if the leader is Byzantine or changes mid-dissemination. The delivered
//! set carries two certificates — `Σ` (the set was collected from a quorum) and `Σ'`
//! (a quorum voted to deliver it) — which Stage 2 ships to other clusters as proof.
//!
//! The module is a reusable sans-I/O state machine, independent of the rest of the
//! Hamava replica, exactly as the paper presents it ("a general reusable module, that
//! is of independent interest").

use ava_crypto::sha256::Sha256;
use ava_crypto::{Digest, KeyRegistry, Keypair, SigSet, Signature};
use ava_types::{Duration, Encode, EncodeSink, Reconfig, ReplicaId, Round, Time, Timestamp};
use std::collections::BTreeMap;

/// One replica's signed contribution of collected reconfiguration requests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecsContribution {
    /// The contributing replica.
    pub from: ReplicaId,
    /// The round the requests were collected in.
    pub round: Round,
    /// The collected reconfiguration requests.
    pub recs: Vec<Reconfig>,
    /// Signature over `(round, from, recs)`.
    pub sig: Signature,
}

impl RecsContribution {
    /// The digest this contribution's signature covers. Streamed straight into the
    /// hasher (no intermediate buffer).
    pub fn signing_digest(round: Round, from: ReplicaId, recs: &[Reconfig]) -> Digest {
        let mut h = Sha256::new();
        h.write(b"brd-contrib");
        round.encode(&mut h);
        from.encode(&mut h);
        recs.encode(&mut h);
        Digest(h.finalize())
    }

    /// Verify the contribution's signature.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        self.sig.signer == self.from
            && registry.verify(&Self::signing_digest(self.round, self.from, &self.recs), &self.sig)
    }
}

/// Justification attached to an `Agg` broadcast: proof that the aggregated set is
/// legitimate (Alg. 5 line 23).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AggJustify {
    /// Signed contributions from at least a quorum of replicas (fresh aggregation).
    Contributions(Vec<RecsContribution>),
    /// At least a quorum of `Echo` signatures for the set (re-proposed by a new
    /// leader from a `valid` record).
    Echoes(SigSet),
    /// At least `f+1` `Ready` signatures for the set.
    Readies(SigSet),
}

/// Domain-separated digests for the Echo and Ready votes over a set of requests,
/// streamed straight into the hasher.
fn domain_digest(domain: &[u8], round: Round, recs: &[Reconfig]) -> Digest {
    let mut h = Sha256::new();
    h.write(domain);
    round.encode(&mut h);
    recs.encode(&mut h);
    Digest(h.finalize())
}

fn echo_digest(round: Round, recs: &[Reconfig]) -> Digest {
    domain_digest(b"brd-echo", round, recs)
}

fn ready_digest(round: Round, recs: &[Reconfig]) -> Digest {
    domain_digest(b"brd-ready", round, recs)
}

/// The certificate delivered alongside a reconfiguration set: `Σ` attests quorum
/// collection, `Σ'` attests quorum delivery votes. Remote clusters verify `Σ'`
/// against their view of this cluster's membership.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BrdCert {
    /// The round the set belongs to.
    pub round: Round,
    /// `Σ`: the contributions the set was aggregated from (may be empty if this
    /// replica only learned the set through Echo/Ready amplification).
    pub contributions: Vec<RecsContribution>,
    /// `Σ'`: Ready signatures from a quorum over the ready digest of the set.
    pub ready_sigs: SigSet,
}

impl BrdCert {
    /// Verify `Σ'` against a membership view of the originating cluster.
    pub fn verify_delivery(
        &self,
        registry: &KeyRegistry,
        recs: &[Reconfig],
        members: &[ReplicaId],
        quorum: usize,
    ) -> bool {
        self.ready_sigs.count_valid(registry, &ready_digest(self.round, recs), members) >= quorum
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.contributions.iter().map(|c| 48 + c.recs.len() * 64).sum::<usize>()
            + self.ready_sigs.len() * 48
    }
}

/// BRD wire messages.
#[derive(Clone, Debug)]
pub enum BrdMsg {
    /// A replica's contribution sent to the leader (Alg. 5 line 15).
    Recs(RecsContribution),
    /// The leader's aggregated set (Alg. 5 line 22 / Alg. 6 line 57).
    Agg {
        /// Round of the dissemination.
        round: Round,
        /// The aggregated (union) set.
        recs: Vec<Reconfig>,
        /// Proof the set is legitimate.
        justify: AggJustify,
        /// Leader timestamp.
        ts: u64,
    },
    /// Echo vote (Alg. 5 line 25).
    Echo {
        /// Round of the dissemination.
        round: Round,
        /// The echoed set.
        recs: Vec<Reconfig>,
        /// Signature over the echo digest of the set.
        sig: Signature,
        /// Leader timestamp.
        ts: u64,
    },
    /// Ready vote (Alg. 5 line 28 / Alg. 6 line 32).
    Ready {
        /// Round of the dissemination.
        round: Round,
        /// The set being made ready.
        recs: Vec<Reconfig>,
        /// Signature over the ready digest of the set.
        sig: Signature,
        /// Leader timestamp.
        ts: u64,
    },
    /// A replica's `valid` record forwarded to a new leader (Alg. 6 line 47).
    Valid {
        /// Round of the dissemination.
        round: Round,
        /// The recorded set.
        recs: Vec<Reconfig>,
        /// Echo or Ready signatures attesting the record.
        proof: AggJustify,
        /// The leader timestamp under which the record was made.
        recorded_ts: u64,
    },
}

impl BrdMsg {
    /// The dissemination round the message belongs to (BRD instances are
    /// per-round; the replica uses this to stash messages that arrive for a round
    /// it has not reached yet).
    pub fn round(&self) -> Round {
        match self {
            BrdMsg::Recs(c) => c.round,
            BrdMsg::Agg { round, .. }
            | BrdMsg::Echo { round, .. }
            | BrdMsg::Ready { round, .. }
            | BrdMsg::Valid { round, .. } => *round,
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        let recs_size = |recs: &Vec<Reconfig>| recs.len() * 64 + 48;
        let justify_size = |j: &AggJustify| match j {
            AggJustify::Contributions(cs) => cs.iter().map(|c| 96 + c.recs.len() * 64).sum(),
            AggJustify::Echoes(s) | AggJustify::Readies(s) => s.len() * 48,
        };
        match self {
            BrdMsg::Recs(c) => 96 + c.recs.len() * 64,
            BrdMsg::Agg { recs, justify, .. } => recs_size(recs) + justify_size(justify),
            BrdMsg::Echo { recs, .. } | BrdMsg::Ready { recs, .. } => recs_size(recs) + 64,
            BrdMsg::Valid { recs, proof, .. } => recs_size(recs) + justify_size(proof),
        }
    }
}

/// Side effects requested by the BRD state machine.
#[derive(Clone, Debug)]
pub enum BrdAction {
    /// Send a message to a replica of the local cluster.
    Send {
        /// Destination.
        to: ReplicaId,
        /// Message.
        msg: BrdMsg,
    },
    /// Deliver the uniformly agreed reconfiguration set with its certificate.
    Deliver {
        /// The delivered set (sorted, deduplicated).
        recs: Vec<Reconfig>,
        /// The accompanying certificate.
        cert: BrdCert,
    },
    /// Complain about the current leader (delivery is not timely).
    Complain {
        /// The leader complained about.
        leader: ReplicaId,
    },
    /// Charge CPU time for signature work.
    Consume(Duration),
    /// An `Echo`/`Ready` vote from a known member failed signature
    /// verification — Byzantine evidence. Honest members sign exactly what
    /// they send, so a cryptographically invalid vote can only be a forgery
    /// (a membership-view mismatch, which *can* occur honestly around a
    /// reconfiguration boundary, is dropped silently instead).
    Reject {
        /// The round the forged vote claimed.
        round: Round,
    },
}

/// A `valid` record: a set that is safe to re-propose under a new leader.
#[derive(Clone, Debug)]
struct ValidRecord {
    recs: Vec<Reconfig>,
    proof: AggJustify,
    ts: u64,
}

/// The BRD state machine for one replica and one round.
pub struct Brd {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    keypair: Keypair,
    registry: KeyRegistry,
    leader: ReplicaId,
    ts: u64,
    round: Round,
    timeout: Duration,
    verify_cost: Duration,
    sign_cost: Duration,

    my_recs: Option<Vec<Reconfig>>,
    started_at: Option<Time>,
    echoed: bool,
    readied: bool,
    delivered: bool,
    complained: bool,
    valid: Option<ValidRecord>,
    /// Leader-side: collected contributions keyed by sender.
    contributions: BTreeMap<ReplicaId, RecsContribution>,
    /// Leader-side: senders seen since becoming leader (contributions or Valid).
    collected_from: Vec<ReplicaId>,
    /// Leader-side: best valid record received from a replica.
    high_valid: Option<ValidRecord>,
    /// Leader-side: whether this leader already broadcast an aggregation.
    aggregated: bool,
    /// Echo signatures per set digest.
    echo_votes: BTreeMap<Digest, (Vec<Reconfig>, SigSet)>,
    /// Ready signatures per set digest.
    ready_votes: BTreeMap<Digest, (Vec<Reconfig>, SigSet)>,
}

impl Brd {
    /// Create a BRD instance for one round of one cluster.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: ReplicaId,
        members: Vec<ReplicaId>,
        keypair: Keypair,
        registry: KeyRegistry,
        leader: ReplicaId,
        ts: Timestamp,
        round: Round,
        timeout: Duration,
    ) -> Self {
        Brd {
            me,
            members,
            keypair,
            registry,
            leader,
            ts: ts.0,
            round,
            timeout,
            verify_cost: Duration::from_micros(40),
            sign_cost: Duration::from_micros(20),
            my_recs: None,
            started_at: None,
            echoed: false,
            readied: false,
            delivered: false,
            complained: false,
            valid: None,
            contributions: BTreeMap::new(),
            collected_from: Vec::new(),
            high_valid: None,
            aggregated: false,
            echo_votes: BTreeMap::new(),
            ready_votes: BTreeMap::new(),
        }
    }

    fn f(&self) -> usize {
        if self.members.is_empty() {
            0
        } else {
            (self.members.len() - 1) / 3
        }
    }

    fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// Whether this instance has delivered its set.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// The leader this instance currently follows.
    pub fn leader(&self) -> ReplicaId {
        self.leader
    }

    /// Alg. 5 line 13: broadcast this replica's collected requests (they go to the
    /// leader, which aggregates them).
    pub fn broadcast(&mut self, recs: Vec<Reconfig>, now: Time) -> Vec<BrdAction> {
        let mut out = Vec::new();
        let mut recs = recs;
        recs.sort();
        recs.dedup();
        self.my_recs = Some(recs.clone());
        self.started_at = Some(now);
        out.push(BrdAction::Consume(self.sign_cost));
        let sig = self.keypair.sign(&RecsContribution::signing_digest(self.round, self.me, &recs));
        let contribution = RecsContribution { from: self.me, round: self.round, recs, sig };
        out.push(BrdAction::Send { to: self.leader, msg: BrdMsg::Recs(contribution) });
        out
    }

    /// Handle a BRD message from `from`.
    pub fn on_message(&mut self, from: ReplicaId, msg: BrdMsg, now: Time) -> Vec<BrdAction> {
        let mut out = Vec::new();
        match msg {
            BrdMsg::Recs(contribution) => self.handle_recs(from, contribution, &mut out),
            BrdMsg::Agg { round, recs, justify, ts } => {
                self.handle_agg(from, round, recs, justify, ts, &mut out);
            }
            BrdMsg::Echo { round, recs, sig, ts } => {
                self.handle_echo(round, recs, sig, ts, &mut out);
            }
            BrdMsg::Ready { round, recs, sig, ts } => {
                self.handle_ready(round, recs, sig, ts, now, &mut out);
            }
            BrdMsg::Valid { round, recs, proof, recorded_ts } => {
                self.handle_valid(round, recs, proof, recorded_ts, &mut out);
            }
        }
        out
    }

    /// Periodic tick: leader liveness watchdog (Alg. 6 line 38).
    pub fn on_tick(&mut self, now: Time) -> Vec<BrdAction> {
        let mut out = Vec::new();
        if let Some(started) = self.started_at {
            if !self.delivered && !self.complained && now.since(started) >= self.timeout {
                self.complained = true;
                out.push(BrdAction::Complain { leader: self.leader });
            }
        }
        out
    }

    /// Alg. 6 line 40: install a new leader.
    pub fn new_leader(&mut self, leader: ReplicaId, ts: Timestamp, now: Time) -> Vec<BrdAction> {
        let mut out = Vec::new();
        if ts.0 <= self.ts && leader == self.leader {
            return out;
        }
        self.leader = leader;
        self.ts = ts.0;
        self.echoed = false;
        self.readied = false;
        self.complained = false;
        self.contributions.clear();
        self.collected_from.clear();
        self.high_valid = None;
        self.aggregated = false;
        self.echo_votes.clear();
        self.ready_votes.clear();
        if self.started_at.is_some() {
            self.started_at = Some(now);
        }
        if self.delivered {
            return out;
        }
        if let Some(valid) = self.valid.clone() {
            out.push(BrdAction::Send {
                to: self.leader,
                msg: BrdMsg::Valid {
                    round: self.round,
                    recs: valid.recs,
                    proof: valid.proof,
                    recorded_ts: valid.ts,
                },
            });
        } else if let Some(my_recs) = self.my_recs.clone() {
            out.push(BrdAction::Consume(self.sign_cost));
            let sig =
                self.keypair.sign(&RecsContribution::signing_digest(self.round, self.me, &my_recs));
            let contribution =
                RecsContribution { from: self.me, round: self.round, recs: my_recs, sig };
            out.push(BrdAction::Send { to: self.leader, msg: BrdMsg::Recs(contribution) });
        }
        out
    }

    /// Update the member list (after a reconfiguration took effect).
    pub fn set_members(&mut self, members: Vec<ReplicaId>) {
        self.members = members;
    }

    fn handle_recs(&mut self, from: ReplicaId, c: RecsContribution, out: &mut Vec<BrdAction>) {
        if self.me != self.leader || c.round != self.round || c.from != from {
            return;
        }
        out.push(BrdAction::Consume(self.verify_cost));
        if !self.members.contains(&from) || !c.verify(&self.registry) {
            return;
        }
        self.contributions.insert(from, c);
        if !self.collected_from.contains(&from) {
            self.collected_from.push(from);
        }
        self.maybe_aggregate(out);
    }

    fn handle_valid(
        &mut self,
        round: Round,
        recs: Vec<Reconfig>,
        proof: AggJustify,
        recorded_ts: u64,
        out: &mut Vec<BrdAction>,
    ) {
        if self.me != self.leader || round != self.round {
            return;
        }
        out.push(BrdAction::Consume(
            self.verify_cost.saturating_mul(self.proof_len(&proof) as u64),
        ));
        if !self.verify_justify(&recs, &proof, true) {
            return;
        }
        let sender_ok = match self.high_valid.as_ref() {
            Some(existing) => recorded_ts > existing.ts,
            None => true,
        };
        if sender_ok {
            self.high_valid = Some(ValidRecord { recs, proof, ts: recorded_ts });
        }
        // The sender counts toward the collection quorum even if its record is not
        // the highest (Alg. 6 line 54).
        if let Some(signer) = self.last_signer_of_high_valid() {
            if !self.collected_from.contains(&signer) {
                self.collected_from.push(signer);
            }
        }
        self.maybe_aggregate(out);
    }

    fn last_signer_of_high_valid(&self) -> Option<ReplicaId> {
        // Valid messages arrive over authenticated links; use any signer in the proof
        // as the representative sender for quorum counting.
        self.high_valid.as_ref().and_then(|v| match &v.proof {
            AggJustify::Contributions(cs) => cs.first().map(|c| c.from),
            AggJustify::Echoes(s) | AggJustify::Readies(s) => s.signers().first().copied(),
        })
    }

    fn proof_len(&self, proof: &AggJustify) -> usize {
        match proof {
            AggJustify::Contributions(cs) => cs.len(),
            AggJustify::Echoes(s) | AggJustify::Readies(s) => s.len(),
        }
    }

    /// Leader: once a quorum contributed (or a valid record is known together with a
    /// quorum of responses), broadcast the aggregation.
    fn maybe_aggregate(&mut self, out: &mut Vec<BrdAction>) {
        if self.aggregated || self.me != self.leader {
            return;
        }
        let responders = self.contributions.len().max(self.collected_from.len());
        if responders < self.quorum() {
            return;
        }
        self.aggregated = true;
        let (recs, justify) = if let Some(high) = self.high_valid.clone() {
            (high.recs, high.proof)
        } else {
            let contributions: Vec<RecsContribution> =
                self.contributions.values().cloned().collect();
            let mut union: Vec<Reconfig> =
                contributions.iter().flat_map(|c| c.recs.iter().copied()).collect();
            union.sort();
            union.dedup();
            (union, AggJustify::Contributions(contributions))
        };
        let msg = BrdMsg::Agg { round: self.round, recs, justify, ts: self.ts };
        for &member in &self.members {
            out.push(BrdAction::Send { to: member, msg: msg.clone() });
        }
    }

    fn verify_justify(&self, recs: &[Reconfig], justify: &AggJustify, allow_ready: bool) -> bool {
        match justify {
            AggJustify::Contributions(contributions) => {
                let mut distinct: Vec<ReplicaId> = Vec::new();
                for c in contributions {
                    if c.round != self.round
                        || !self.members.contains(&c.from)
                        || !c.verify(&self.registry)
                    {
                        return false;
                    }
                    if !distinct.contains(&c.from) {
                        distinct.push(c.from);
                    }
                }
                if distinct.len() < self.quorum() {
                    return false;
                }
                let mut union: Vec<Reconfig> =
                    contributions.iter().flat_map(|c| c.recs.iter().copied()).collect();
                union.sort();
                union.dedup();
                union == recs
            }
            AggJustify::Echoes(sigs) => {
                sigs.count_valid(&self.registry, &echo_digest(self.round, recs), &self.members)
                    >= self.quorum()
            }
            AggJustify::Readies(sigs) => {
                allow_ready
                    && sigs.count_valid(
                        &self.registry,
                        &ready_digest(self.round, recs),
                        &self.members,
                    ) >= self.f() + 1
            }
        }
    }

    fn handle_agg(
        &mut self,
        from: ReplicaId,
        round: Round,
        recs: Vec<Reconfig>,
        justify: AggJustify,
        ts: u64,
        out: &mut Vec<BrdAction>,
    ) {
        if from != self.leader || ts != self.ts || round != self.round || self.echoed {
            return;
        }
        out.push(BrdAction::Consume(
            self.verify_cost.saturating_mul(self.proof_len(&justify) as u64),
        ));
        if !self.verify_justify(&recs, &justify, true) {
            return;
        }
        self.echoed = true;
        // Remember the contributions (Σ) if we saw them, so the delivery certificate
        // can carry them.
        if let AggJustify::Contributions(cs) = &justify {
            for c in cs {
                self.contributions.insert(c.from, c.clone());
            }
        }
        out.push(BrdAction::Consume(self.sign_cost));
        let sig = self.keypair.sign(&echo_digest(self.round, &recs));
        let msg = BrdMsg::Echo { round: self.round, recs, sig, ts: self.ts };
        for &member in &self.members {
            out.push(BrdAction::Send { to: member, msg: msg.clone() });
        }
    }

    fn handle_echo(
        &mut self,
        round: Round,
        recs: Vec<Reconfig>,
        sig: Signature,
        ts: u64,
        out: &mut Vec<BrdAction>,
    ) {
        if ts != self.ts || round != self.round {
            return;
        }
        out.push(BrdAction::Consume(self.verify_cost));
        let digest = echo_digest(self.round, &recs);
        if !self.members.contains(&sig.signer) {
            return;
        }
        if !self.registry.verify(&digest, &sig) {
            out.push(BrdAction::Reject { round: self.round });
            return;
        }
        let quorum = self.quorum();
        let entry = self.echo_votes.entry(digest).or_insert_with(|| (recs.clone(), SigSet::new()));
        entry.1.insert(sig);
        let echo_count = entry.1.len();
        if echo_count >= quorum && !self.readied {
            self.readied = true;
            let echo_sigs = entry.1.clone();
            self.valid = Some(ValidRecord {
                recs: recs.clone(),
                proof: AggJustify::Echoes(echo_sigs),
                ts: self.ts,
            });
            self.send_ready(recs, out);
        }
    }

    fn handle_ready(
        &mut self,
        round: Round,
        recs: Vec<Reconfig>,
        sig: Signature,
        _ts: u64,
        _now: Time,
        out: &mut Vec<BrdAction>,
    ) {
        if round != self.round {
            return;
        }
        out.push(BrdAction::Consume(self.verify_cost));
        let digest = ready_digest(self.round, &recs);
        if !self.members.contains(&sig.signer) {
            return;
        }
        if !self.registry.verify(&digest, &sig) {
            out.push(BrdAction::Reject { round: self.round });
            return;
        }
        let f_plus_one = self.f() + 1;
        let quorum = self.quorum();
        let entry = self.ready_votes.entry(digest).or_insert_with(|| (recs.clone(), SigSet::new()));
        entry.1.insert(sig);
        let count = entry.1.len();
        // Amplification (Alg. 6 line 30): f+1 Ready votes make a correct replica
        // ready even without a quorum of Echoes.
        if count >= f_plus_one && !self.readied {
            self.readied = true;
            let ready_sigs = self.ready_votes.get(&digest).expect("inserted above").1.clone();
            self.valid = Some(ValidRecord {
                recs: recs.clone(),
                proof: AggJustify::Readies(ready_sigs),
                ts: self.ts,
            });
            self.send_ready(recs.clone(), out);
        }
        // Delivery (Alg. 6 line 34).
        let entry = self.ready_votes.get(&digest).expect("inserted above");
        if entry.1.len() >= quorum && !self.delivered {
            self.delivered = true;
            let cert = BrdCert {
                round: self.round,
                contributions: self.contributions.values().cloned().collect(),
                ready_sigs: entry.1.clone(),
            };
            out.push(BrdAction::Deliver { recs, cert });
        }
    }

    fn send_ready(&mut self, recs: Vec<Reconfig>, out: &mut Vec<BrdAction>) {
        // Note: `ts` is not part of the ready digest so that Ready votes recorded
        // under an earlier leader still count toward delivery under a later one —
        // uniformity across leader changes (Alg. 6's `valid` mechanism).
        out.push(BrdAction::Consume(self.sign_cost));
        let sig = self.keypair.sign(&ready_digest(self.round, &recs));
        let msg = BrdMsg::Ready { round: self.round, recs, sig, ts: self.ts };
        for &member in &self.members {
            out.push(BrdAction::Send { to: member, msg: msg.clone() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, VecDeque};

    struct Net {
        nodes: BTreeMap<ReplicaId, Brd>,
        queue: VecDeque<(ReplicaId, ReplicaId, BrdMsg)>,
        delivered: BTreeMap<ReplicaId, Vec<(Vec<Reconfig>, BrdCert)>>,
        complaints: BTreeMap<ReplicaId, usize>,
        down: Vec<ReplicaId>,
        now: Time,
    }

    fn join(r: u32) -> Reconfig {
        Reconfig::Join { replica: ReplicaId(100 + r), region: ava_types::Region::Europe }
    }

    fn make_net(n: u32, leader: u32) -> (Net, KeyRegistry) {
        let registry = KeyRegistry::new();
        let members: Vec<ReplicaId> = (0..n).map(ReplicaId).collect();
        let nodes: BTreeMap<ReplicaId, Brd> = members
            .iter()
            .map(|&id| {
                let kp = registry.register(id);
                (
                    id,
                    Brd::new(
                        id,
                        members.clone(),
                        kp,
                        registry.clone(),
                        ReplicaId(leader),
                        Timestamp(0),
                        Round(1),
                        Duration::from_secs(5),
                    ),
                )
            })
            .collect();
        let delivered = members.iter().map(|&id| (id, Vec::new())).collect();
        let complaints = members.iter().map(|&id| (id, 0)).collect();
        (
            Net {
                nodes,
                queue: VecDeque::new(),
                delivered,
                complaints,
                down: Vec::new(),
                now: Time::ZERO,
            },
            registry,
        )
    }

    impl Net {
        fn apply(&mut self, at: ReplicaId, actions: Vec<BrdAction>) {
            for a in actions {
                match a {
                    BrdAction::Send { to, msg } => self.queue.push_back((at, to, msg)),
                    BrdAction::Deliver { recs, cert } => {
                        self.delivered.get_mut(&at).unwrap().push((recs, cert))
                    }
                    BrdAction::Complain { .. } => *self.complaints.get_mut(&at).unwrap() += 1,
                    BrdAction::Consume(_) => {}
                    BrdAction::Reject { .. } => {}
                }
            }
        }

        fn broadcast_all(&mut self, recs_of: impl Fn(ReplicaId) -> Vec<Reconfig>) {
            let ids: Vec<ReplicaId> = self.nodes.keys().copied().collect();
            let now = self.now;
            for id in ids {
                if self.down.contains(&id) {
                    continue;
                }
                let actions = self.nodes.get_mut(&id).unwrap().broadcast(recs_of(id), now);
                self.apply(id, actions);
            }
        }

        fn run(&mut self, max: usize) {
            for _ in 0..max {
                let Some((from, to, msg)) = self.queue.pop_front() else { return };
                if self.down.contains(&from) || self.down.contains(&to) {
                    continue;
                }
                let now = self.now;
                let actions = self.nodes.get_mut(&to).unwrap().on_message(from, msg, now);
                self.apply(to, actions);
            }
            panic!("BRD test network did not quiesce");
        }

        fn drop_messages_from_leader_except(&mut self, leader: ReplicaId, keep: &[ReplicaId]) {
            self.queue.retain(|(from, to, _)| *from != leader || keep.contains(to));
        }

        fn install_leader(&mut self, leader: ReplicaId, ts: Timestamp) {
            let ids: Vec<ReplicaId> = self.nodes.keys().copied().collect();
            let now = self.now;
            for id in ids {
                if self.down.contains(&id) {
                    continue;
                }
                let actions = self.nodes.get_mut(&id).unwrap().new_leader(leader, ts, now);
                self.apply(id, actions);
            }
        }

        fn tick_all(&mut self, advance: Duration) {
            self.now = self.now + advance;
            let ids: Vec<ReplicaId> = self.nodes.keys().copied().collect();
            let now = self.now;
            for id in ids {
                if self.down.contains(&id) {
                    continue;
                }
                let actions = self.nodes.get_mut(&id).unwrap().on_tick(now);
                self.apply(id, actions);
            }
        }
    }

    #[test]
    fn correct_leader_delivers_same_set_everywhere() {
        let (mut net, _) = make_net(4, 1);
        net.broadcast_all(|id| if id == ReplicaId(0) { vec![join(0)] } else { vec![join(1)] });
        net.run(100_000);
        let expected: Vec<Reconfig> = vec![join(0), join(1)];
        for (id, delivered) in &net.delivered {
            assert_eq!(delivered.len(), 1, "replica {id} deliveries");
            let mut got = delivered[0].0.clone();
            got.sort();
            assert_eq!(got, expected, "replica {id} set");
        }
    }

    #[test]
    fn delivery_certificate_verifies_remotely() {
        let (mut net, registry) = make_net(7, 0);
        net.broadcast_all(|_| vec![join(3)]);
        net.run(200_000);
        let members: Vec<ReplicaId> = (0..7).map(ReplicaId).collect();
        let (recs, cert) = &net.delivered[&ReplicaId(4)][0];
        assert!(cert.verify_delivery(&registry, recs, &members, 5));
        assert!(!cert.verify_delivery(&registry, &[join(9)], &members, 5));
    }

    #[test]
    fn integrity_set_is_union_of_quorum_contributions() {
        // Every replica requests a different reconfiguration; the delivered set must
        // contain at least a quorum's worth of them and nothing invented.
        let (mut net, _) = make_net(4, 2);
        net.broadcast_all(|id| vec![join(id.0)]);
        net.run(100_000);
        let all: Vec<Reconfig> = (0..4).map(join).collect();
        for delivered in net.delivered.values() {
            let set = &delivered[0].0;
            assert!(set.len() >= 3, "set should contain a quorum of contributions");
            assert!(set.iter().all(|rc| all.contains(rc)), "no invented requests");
        }
    }

    #[test]
    fn empty_sets_still_terminate() {
        let (mut net, _) = make_net(4, 0);
        net.broadcast_all(|_| vec![]);
        net.run(100_000);
        for delivered in net.delivered.values() {
            assert_eq!(delivered.len(), 1);
            assert!(delivered[0].0.is_empty());
        }
    }

    #[test]
    fn no_duplicate_delivery() {
        let (mut net, _) = make_net(4, 0);
        net.broadcast_all(|_| vec![join(1)]);
        net.run(100_000);
        // Re-run a tick storm; nothing further should be delivered.
        net.tick_all(Duration::from_secs(1));
        net.run(100_000);
        for delivered in net.delivered.values() {
            assert_eq!(delivered.len(), 1);
        }
    }

    #[test]
    fn byzantine_leader_partial_dissemination_stays_uniform_after_leader_change() {
        // Reproduces Fig. 2b: the leader p2 aggregates correctly (it cannot forge)
        // but only sends the aggregation to a subset {p0, p3}. Some replica may
        // deliver early; after complaints, the new leader adopts the valid set and
        // every correct replica delivers the SAME set.
        let (mut net, _) = make_net(4, 2);
        net.broadcast_all(|id| vec![join(id.0)]);
        // Let the leader receive contributions and emit the Agg, then censor the Agg
        // so that only p0 and p3 receive leader messages.
        net.run_partial_until_agg();
        net.drop_messages_from_leader_except(ReplicaId(2), &[ReplicaId(0), ReplicaId(3)]);
        net.run(100_000);
        // Timeout fires at replicas that have not delivered, leader changes to p3.
        net.tick_all(Duration::from_secs(6));
        net.install_leader(ReplicaId(3), Timestamp(1));
        net.run(100_000);
        let sets: Vec<Vec<Reconfig>> = net
            .delivered
            .values()
            .filter(|d| !d.is_empty())
            .map(|d| {
                let mut s = d[0].0.clone();
                s.sort();
                s
            })
            .collect();
        assert!(sets.len() >= 3, "at least the correct replicas deliver ({} did)", sets.len());
        assert!(sets.windows(2).all(|w| w[0] == w[1]), "uniformity violated: {sets:?}");
    }

    impl Net {
        /// Deliver messages until the leader's Agg broadcast is sitting in the queue.
        fn run_partial_until_agg(&mut self) {
            for _ in 0..100_000 {
                if self.queue.iter().any(|(_, _, m)| matches!(m, BrdMsg::Agg { .. })) {
                    return;
                }
                let Some((from, to, msg)) = self.queue.pop_front() else { return };
                let now = self.now;
                let actions = self.nodes.get_mut(&to).unwrap().on_message(from, msg, now);
                self.apply(to, actions);
            }
        }
    }

    #[test]
    fn silent_leader_triggers_complaints() {
        let (mut net, _) = make_net(4, 1);
        net.down.push(ReplicaId(1));
        net.broadcast_all(|_| vec![join(0)]);
        net.run(100_000);
        net.tick_all(Duration::from_secs(6));
        let complainers = net.complaints.values().filter(|&&c| c > 0).count();
        assert_eq!(complainers, 3, "all live replicas should complain");
        // After electing p2, dissemination completes.
        net.install_leader(ReplicaId(2), Timestamp(1));
        net.run(100_000);
        for (&id, delivered) in &net.delivered {
            if id != ReplicaId(1) {
                assert_eq!(delivered.len(), 1, "replica {id}");
            }
        }
    }

    #[test]
    fn forged_aggregation_without_quorum_is_rejected() {
        let registry = KeyRegistry::new();
        let members: Vec<ReplicaId> = (0..4).map(ReplicaId).collect();
        let kp3 = registry.register(ReplicaId(3));
        let kp0 = registry.register(ReplicaId(0));
        let mut brd = Brd::new(
            ReplicaId(0),
            members,
            kp0,
            registry.clone(),
            ReplicaId(3),
            Timestamp(0),
            Round(1),
            Duration::from_secs(5),
        );
        // Leader 3 claims a set justified by a single contribution (its own): below
        // quorum, so no Echo may be produced.
        let recs = vec![join(9)];
        let sig = kp3.sign(&RecsContribution::signing_digest(Round(1), ReplicaId(3), &recs));
        let contribution =
            RecsContribution { from: ReplicaId(3), round: Round(1), recs: recs.clone(), sig };
        let actions = brd.on_message(
            ReplicaId(3),
            BrdMsg::Agg {
                round: Round(1),
                recs,
                justify: AggJustify::Contributions(vec![contribution]),
                ts: 0,
            },
            Time::ZERO,
        );
        assert!(
            !actions.iter().any(|a| matches!(a, BrdAction::Send { msg: BrdMsg::Echo { .. }, .. })),
            "under-justified aggregation must not be echoed"
        );
    }

    #[test]
    fn forged_votes_yield_reject_evidence_but_membership_skew_stays_silent() {
        let registry = KeyRegistry::new();
        let members: Vec<ReplicaId> = (0..4).map(ReplicaId).collect();
        let kp1 = registry.register(ReplicaId(1));
        let kp0 = registry.register(ReplicaId(0));
        let outsider = registry.register(ReplicaId(9));
        let mut brd = Brd::new(
            ReplicaId(0),
            members,
            kp0,
            registry.clone(),
            ReplicaId(3),
            Timestamp(0),
            Round(1),
            Duration::from_secs(5),
        );
        // A member's honest Echo signature re-attached to a tampered set fails
        // cryptographic verification: forgery evidence.
        let honest = vec![join(7)];
        let sig = kp1.sign(&echo_digest(Round(1), &honest));
        let mut forged = honest.clone();
        forged.push(join(8));
        let actions = brd.on_message(
            ReplicaId(1),
            BrdMsg::Echo { round: Round(1), recs: forged.clone(), sig, ts: 0 },
            Time::ZERO,
        );
        assert!(actions.iter().any(|a| matches!(a, BrdAction::Reject { .. })));
        // A well-signed vote from a non-member (honest around reconfiguration
        // boundaries) is dropped without evidence.
        let sig = outsider.sign(&echo_digest(Round(1), &honest));
        let actions = brd.on_message(
            ReplicaId(9),
            BrdMsg::Echo { round: Round(1), recs: honest.clone(), sig, ts: 0 },
            Time::ZERO,
        );
        assert!(!actions.iter().any(|a| matches!(a, BrdAction::Reject { .. })));
        // Forged Ready votes produce the same evidence.
        let sig = kp1.sign(&ready_digest(Round(1), &honest));
        let actions = brd.on_message(
            ReplicaId(1),
            BrdMsg::Ready { round: Round(1), recs: forged, sig, ts: 0 },
            Time::ZERO,
        );
        assert!(actions.iter().any(|a| matches!(a, BrdAction::Reject { .. })));
    }
}
