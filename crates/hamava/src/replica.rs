//! The Hamava replica: composition of all sub-protocols into the three-stage round
//! structure of the paper (Alg. 7–10), generic over the local total-order broadcast.

use crate::brd::{Brd, BrdAction, BrdCert};
use crate::leader_election::{ElectionAction, LeaderElection};
use crate::messages::{AvaMsg, ControlCmd, RoundPackage};
use crate::remote_leader::{RemoteLeaderAction, RemoteLeaderChange};
use ava_consensus::{CommittedBlock, FaultMode, TobAction, TotalOrderBroadcast};
use ava_crypto::{KeyRegistry, Keypair};
use ava_simnet::{Actor, Context, SimMessage};
use ava_types::{
    ClientId, ClusterId, Duration, Membership, Operation, Output, ProtocolParams, Reconfig, Region,
    ReplicaId, Round, StageKind, Time, Timestamp, Transaction, TxId, TxKind,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Timer kind used for the replica's periodic tick.
const TICK: u64 = 1;

/// Lifecycle status of a replica.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplicaStatus {
    /// Participating in replication.
    Active,
    /// Trying to join a cluster (Alg. 3 requester side).
    Joining {
        /// The cluster being joined.
        target: ClusterId,
        /// Acks received so far.
        acks: BTreeSet<ReplicaId>,
        /// CurrState senders seen, by round.
        state_senders: BTreeMap<Round, BTreeSet<ReplicaId>>,
    },
    /// Has left the system (stops processing).
    Left,
}

/// Per-round bookkeeping.
#[derive(Debug, Default)]
struct RoundState {
    /// Blocks delivered by the local TOB this round.
    blocks: Vec<CommittedBlock>,
    /// Transactions delivered this round (across blocks).
    tx_count: usize,
    /// The reconfiguration set delivered by BRD for this round.
    recs: Option<(Vec<Reconfig>, Option<BrdCert>)>,
    /// Whether `send-recs` was called already (Alg. 7 line 20).
    sent_recs: bool,
    /// Whether Stage 1 is complete at this replica.
    stage1_done: bool,
    /// Whether this replica (as leader) already ran the inter-cluster broadcast.
    inter_broadcast_done: bool,
    /// Packages received per cluster (the paper's `operations_j`), Arc-shared with
    /// the messages they arrived in.
    packages: BTreeMap<ClusterId, Arc<RoundPackage>>,
    /// When the round started.
    started_at: Time,
    /// When Stage 1 finished.
    stage1_end: Option<Time>,
}

/// Configuration of a single replica.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// This replica's id.
    pub me: ReplicaId,
    /// This replica's region.
    pub region: Region,
    /// The cluster this replica belongs to (or wants to join).
    pub cluster: ClusterId,
    /// Protocol parameters.
    pub params: ProtocolParams,
    /// Initial membership map of the whole system.
    pub membership: Membership,
    /// Interval of the periodic tick driving timeouts and batching.
    pub tick_interval: Duration,
    /// Maximum time Stage 1 waits for a full batch before closing the round with a
    /// partial batch (keeps rounds progressing under light load).
    pub stage1_max_wait: Duration,
    /// If true, start in joining mode (the replica is not yet a member).
    pub joining: bool,
}

impl ReplicaConfig {
    /// Reasonable defaults for an active replica.
    pub fn new(
        me: ReplicaId,
        region: Region,
        cluster: ClusterId,
        params: ProtocolParams,
        membership: Membership,
    ) -> Self {
        ReplicaConfig {
            me,
            region,
            cluster,
            params,
            membership,
            tick_interval: Duration::from_millis(10),
            stage1_max_wait: Duration::from_millis(1500),
            joining: false,
        }
    }
}

/// A Hamava replica, generic over the local total-order broadcast `T`.
pub struct Replica<T: TotalOrderBroadcast> {
    cfg: ReplicaConfig,
    keypair: Keypair,
    registry: KeyRegistry,
    status: ReplicaStatus,
    membership: Membership,
    round: Round,
    round_state: RoundState,
    tob: T,
    election: LeaderElection,
    brd: Brd,
    rlc: RemoteLeaderChange,
    leader: ReplicaId,
    leader_ts: Timestamp,
    /// Reconfiguration requests collected this round (Alg. 3 member side).
    collected_recs: BTreeSet<Reconfig>,
    /// Regions of replicas that requested to join (needed to build `Reconfig::Join`).
    join_regions: HashMap<ReplicaId, Region>,
    /// Client write requests waiting for execution, keyed by transaction id.
    pending_clients: HashMap<TxId, (ReplicaId, ClientId)>,
    /// The replicated key-value state (key → write counter).
    kv: BTreeMap<u64, u64>,
    /// Package of the previous round (re-sent by a new leader, Alg. 8 line 17).
    prev_package: Option<Arc<RoundPackage>>,
    /// Packages that arrived for future rounds (a remote cluster can be one round
    /// ahead).
    future_packages: Vec<Arc<RoundPackage>>,
    /// Reconfiguration sets ordered through the TOB (single-workflow mode only),
    /// keyed by the round they were agreed for. A set can commit while this replica
    /// is still finishing the previous round; stashing it here instead of dropping
    /// it keeps Stage 1 of the tagged round live.
    ordered_reconfig_sets: BTreeMap<Round, Vec<Reconfig>>,
    /// E4.3-style Byzantine behaviour: withhold inter-cluster messages.
    mute_inter: bool,
    /// Whether this replica asked to leave.
    leave_requested: bool,
    /// Rounds executed so far (exposed for tests/benches).
    executed_rounds: u64,
}

impl<T: TotalOrderBroadcast> Replica<T> {
    /// Create a replica around an already-constructed TOB instance.
    pub fn new(cfg: ReplicaConfig, keypair: Keypair, registry: KeyRegistry, tob: T) -> Self {
        let members = cfg.membership.member_ids(cfg.cluster);
        let leader = members.first().copied().unwrap_or(cfg.me);
        let election = LeaderElection::new(cfg.me, members.clone());
        let brd = Brd::new(
            cfg.me,
            members,
            keypair.clone(),
            registry.clone(),
            leader,
            Timestamp(0),
            Round(1),
            cfg.params.brd_timeout,
        );
        let rlc = RemoteLeaderChange::new(
            cfg.me,
            cfg.cluster,
            cfg.membership.clone(),
            keypair.clone(),
            registry.clone(),
            cfg.params.remote_leader_timeout,
            cfg.params.leader_change_grace,
        );
        let status = if cfg.joining {
            ReplicaStatus::Joining {
                target: cfg.cluster,
                acks: BTreeSet::new(),
                state_senders: BTreeMap::new(),
            }
        } else {
            ReplicaStatus::Active
        };
        Replica {
            membership: cfg.membership.clone(),
            cfg,
            keypair,
            registry,
            status,
            round: Round(1),
            round_state: RoundState::default(),
            tob,
            election,
            brd,
            rlc,
            leader,
            leader_ts: Timestamp(0),
            collected_recs: BTreeSet::new(),
            join_regions: HashMap::new(),
            pending_clients: HashMap::new(),
            kv: BTreeMap::new(),
            prev_package: None,
            future_packages: Vec::new(),
            ordered_reconfig_sets: BTreeMap::new(),
            mute_inter: false,
            leave_requested: false,
            executed_rounds: 0,
        }
    }

    /// The replica's current round (for tests).
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// Number of rounds executed (for tests).
    pub fn executed_rounds(&self) -> u64 {
        self.executed_rounds
    }

    /// Current status (for tests).
    pub fn status(&self) -> &ReplicaStatus {
        &self.status
    }

    /// Current membership view (for tests).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Current key-value state (for tests).
    pub fn kv(&self) -> &BTreeMap<u64, u64> {
        &self.kv
    }

    fn my_members(&self) -> Vec<ReplicaId> {
        self.membership.member_ids(self.cfg.cluster)
    }

    fn is_leader(&self) -> bool {
        self.leader == self.cfg.me
    }

    // ---- action plumbing -------------------------------------------------------

    fn apply_tob_actions(
        &mut self,
        actions: Vec<TobAction<T::Msg>>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                TobAction::Send { to, msg } => ctx.send(to, AvaMsg::Tob(msg)),
                TobAction::Consume(d) => ctx.consume(d),
                TobAction::Complain { .. } => {
                    let actions = self.election.complain();
                    self.apply_election_actions(actions, ctx);
                }
                TobAction::Deliver(block) => self.on_local_block(block, ctx),
            }
        }
    }

    fn apply_brd_actions(
        &mut self,
        actions: Vec<BrdAction>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                BrdAction::Send { to, msg } => ctx.send(to, AvaMsg::Brd(msg)),
                BrdAction::Consume(d) => ctx.consume(d),
                BrdAction::Complain { .. } => {
                    let actions = self.election.complain();
                    self.apply_election_actions(actions, ctx);
                }
                BrdAction::Deliver { recs, cert } => {
                    if self.round_state.recs.is_none() {
                        self.round_state.recs = Some((recs, Some(cert)));
                        self.check_stage1(ctx);
                    }
                }
            }
        }
    }

    fn apply_election_actions(
        &mut self,
        actions: Vec<ElectionAction>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                ElectionAction::Send { to, msg } => ctx.send(to, AvaMsg::Election(msg)),
                ElectionAction::NewLeader { leader, ts } => self.install_leader(leader, ts, ctx),
            }
        }
    }

    fn apply_rlc_actions(
        &mut self,
        actions: Vec<RemoteLeaderAction>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                RemoteLeaderAction::Send { to, msg } => ctx.send(to, AvaMsg::RemoteLeader(msg)),
                RemoteLeaderAction::Consume(d) => ctx.consume(d),
                RemoteLeaderAction::RequestNextLeader => {
                    let actions = self.election.next_leader();
                    self.apply_election_actions(actions, ctx);
                }
            }
        }
    }

    // ---- leader changes --------------------------------------------------------

    fn install_leader(
        &mut self,
        leader: ReplicaId,
        ts: Timestamp,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        self.leader = leader;
        self.leader_ts = ts;
        let now = ctx.now();
        let tob_actions = self.tob.new_leader(leader, ts, now);
        self.apply_tob_actions(tob_actions, ctx);
        let brd_actions = self.brd.new_leader(leader, ts, now);
        self.apply_brd_actions(brd_actions, ctx);
        self.rlc.note_local_leader_change(now);
        ctx.emit(Output::LeaderChanged {
            cluster: self.cfg.cluster,
            new_leader: leader,
            timestamp: ts.0,
            at: now,
            replica: self.cfg.me,
        });
        // Alg. 8 lines 14–18: a new leader re-runs the inter-cluster broadcast for
        // the current round (if Stage 1 is already complete) and for the previous
        // round, in case the failed leader never communicated them.
        if self.is_leader() {
            // Capture the previous round's package first: inter_broadcast below
            // updates `prev_package` to the current round's package.
            let previous = self.prev_package.clone();
            if self.round_state.stage1_done {
                self.round_state.inter_broadcast_done = false;
                self.inter_broadcast(ctx);
            }
            if let Some(prev) = previous {
                if prev.round != self.round {
                    self.send_package_to_remotes(&prev, ctx);
                }
            }
        }
    }

    // ---- stage 1: local ordering + reconfiguration ------------------------------

    fn on_local_block(&mut self, block: CommittedBlock, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        // Reconfiguration sets ordered through the TOB (single-workflow mode).
        let mut reconfig_sets = Vec::new();
        for op in &block.block.ops {
            if let Operation::ReconfigSet { round, recs } = op {
                reconfig_sets.push((*round, recs.clone()));
            }
        }
        self.round_state.tx_count += block.block.tx_count();
        self.round_state.blocks.push(block);
        if !self.cfg.params.parallel_reconfig_workflow {
            for (round, recs) in reconfig_sets {
                if round >= self.round {
                    self.ordered_reconfig_sets.entry(round).or_insert(recs);
                }
            }
            self.adopt_ordered_reconfig_set();
        }
        // Alg. 7 line 20: once a large fraction of the batch is ordered, start the
        // reconfiguration dissemination so it overlaps the tail of local ordering.
        if self.round_state.tx_count >= self.cfg.params.alpha_threshold()
            && !self.round_state.sent_recs
        {
            self.send_recs(ctx);
        }
        self.check_stage1(ctx);
    }

    fn send_recs(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.round_state.sent_recs {
            return;
        }
        self.round_state.sent_recs = true;
        let recs: Vec<Reconfig> = self.collected_recs.iter().copied().collect();
        if self.cfg.params.parallel_reconfig_workflow {
            let actions = self.brd.broadcast(recs, ctx.now());
            self.apply_brd_actions(actions, ctx);
        } else {
            // Single-workflow ablation (E5.2): the reconfiguration set competes with
            // transactions for slots in the total order. The round tag keeps each
            // round's set distinct in the TOB's dedup pool (see `Operation`).
            let actions =
                self.tob.broadcast(Operation::ReconfigSet { round: self.round, recs }, ctx.now());
            self.apply_tob_actions(actions, ctx);
        }
    }

    /// Single-workflow mode: adopt the ordered reconfiguration set for the current
    /// round, if one has committed.
    fn adopt_ordered_reconfig_set(&mut self) {
        if self.round_state.recs.is_none() {
            if let Some(recs) = self.ordered_reconfig_sets.remove(&self.round) {
                self.round_state.recs = Some((recs, None));
            }
        }
    }

    fn check_stage1(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.round_state.stage1_done {
            return;
        }
        let now = ctx.now();
        let batch_full = self.round_state.tx_count >= self.cfg.params.batch_size;
        let waited_long_enough = now.since(self.round_state.started_at) >= self.cfg.stage1_max_wait
            && self.round_state.tx_count > 0;
        if !(batch_full || waited_long_enough) {
            return;
        }
        if !self.round_state.sent_recs {
            self.send_recs(ctx);
        }
        let Some((recs, cert)) = self.round_state.recs.clone() else {
            return;
        };
        // Single-workflow mode: the set already travels inside the TOB-certified
        // blocks, so the package-level copy stays empty — it has no BRD delivery
        // certificate (remote verifiers would reject the package) and would be
        // applied a second time at execution.
        let (recs, cert) = if self.cfg.params.parallel_reconfig_workflow {
            (recs, cert)
        } else {
            (Vec::new(), None)
        };
        self.round_state.stage1_done = true;
        self.round_state.stage1_end = Some(now);
        ctx.emit(Output::StageCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            stage: StageKind::IntraCluster,
            started_at: self.round_state.started_at,
            completed_at: now,
        });
        // `operations_i`: every replica records its own cluster's package locally.
        let own = Arc::new(RoundPackage::new(
            self.cfg.cluster,
            self.round,
            self.round_state.blocks.clone(),
            recs,
            cert,
        ));
        self.round_state.packages.insert(self.cfg.cluster, own);
        // Alg. 7 line 23: the leader starts the inter-cluster broadcast.
        if self.is_leader() {
            self.inter_broadcast(ctx);
        }
        self.check_stage2(ctx);
    }

    // ---- stage 2: inter-cluster communication -----------------------------------

    fn inter_broadcast(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.round_state.inter_broadcast_done {
            return;
        }
        self.round_state.inter_broadcast_done = true;
        let Some(own) = self.round_state.packages.get(&self.cfg.cluster).cloned() else {
            return;
        };
        self.prev_package = Some(Arc::clone(&own));
        self.send_package_to_remotes(&own, ctx);
    }

    fn send_package_to_remotes(
        &mut self,
        package: &Arc<RoundPackage>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        if self.mute_inter {
            // E4.3 Byzantine leader: behaves correctly locally but never sends Inter.
            return;
        }
        for cluster in self.membership.cluster_ids() {
            if cluster == self.cfg.cluster {
                continue;
            }
            // Alg. 1 line 13: send to f_j + 1 distinct replicas of the remote cluster
            // so that at least one correct replica receives the package. The payload
            // is shared: each recipient costs an `Arc` bump, not a package copy.
            let targets = self.membership.first_k(cluster, self.membership.one_correct(cluster));
            ctx.broadcast(targets, AvaMsg::Inter(Arc::clone(package)));
        }
    }

    fn on_inter(&mut self, package: Arc<RoundPackage>, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if package.round < self.round || package.cluster == self.cfg.cluster {
            return;
        }
        ctx.consume(
            ctx.costs().per_sig_verify.saturating_mul(
                package.blocks.iter().map(|b| b.cert.signature_count() as u64).sum(),
            ),
        );
        if !package.verify(&self.registry, &self.membership) {
            return;
        }
        // Alg. 1 line 16: re-broadcast as a Local message within the local cluster,
        // sharing the verified package.
        let members = self.my_members();
        ctx.broadcast(members, AvaMsg::LocalShare(package));
    }

    fn on_local_share(
        &mut self,
        package: Arc<RoundPackage>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        if package.cluster == self.cfg.cluster {
            return;
        }
        if package.round > self.round {
            self.future_packages.push(package);
            return;
        }
        if package.round < self.round || self.round_state.packages.contains_key(&package.cluster) {
            return;
        }
        ctx.consume(
            ctx.costs().per_sig_verify.saturating_mul(
                package.blocks.iter().map(|b| b.cert.signature_count() as u64).sum(),
            ),
        );
        if !package.verify(&self.registry, &self.membership) {
            return;
        }
        self.rlc.mark_received(package.cluster);
        self.round_state.packages.insert(package.cluster, package);
        self.check_stage2(ctx);
    }

    fn check_stage2(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if !self.round_state.stage1_done {
            return;
        }
        let expected = self.membership.cluster_count();
        if self.round_state.packages.len() < expected {
            return;
        }
        let now = ctx.now();
        ctx.emit(Output::StageCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            stage: StageKind::InterCluster,
            started_at: self.round_state.stage1_end.unwrap_or(self.round_state.started_at),
            completed_at: now,
        });
        self.execute(ctx);
    }

    // ---- stage 3: execution (Alg. 10) -------------------------------------------

    fn execute(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let now = ctx.now();
        let stage_start = now;
        let packages = std::mem::take(&mut self.round_state.packages);
        let mut executed_txns = 0usize;
        let mut all_recs: Vec<(ClusterId, Vec<Reconfig>)> = Vec::new();

        // Transactions first, cluster by cluster in the predefined (ascending) order.
        for (cluster, package) in &packages {
            for block in &package.blocks {
                for op in &block.block.ops {
                    match op {
                        Operation::Trans(tx) => {
                            self.apply_transaction(tx, ctx);
                            executed_txns += 1;
                        }
                        Operation::ReconfigSet { recs, .. } => {
                            all_recs.push((*cluster, recs.clone()));
                        }
                    }
                }
            }
            if !package.recs.is_empty() {
                all_recs.push((*cluster, package.recs.clone()));
            }
        }
        ctx.consume(ctx.costs().per_tx_execute.saturating_mul(executed_txns as u64));

        // Then reconfigurations, uniformly, updating membership and thresholds.
        let mut local_recs: Vec<Reconfig> = Vec::new();
        for (cluster, recs) in &all_recs {
            self.membership.apply_set(*cluster, recs);
            if *cluster == self.cfg.cluster {
                local_recs.extend(recs.iter().copied());
            }
            for rc in recs {
                ctx.emit(Output::ReconfigApplied {
                    replica: rc.replica(),
                    cluster: *cluster,
                    joined: rc.is_join(),
                    round: self.round,
                    at: now,
                });
            }
        }

        // Kick-start joining replicas of the local cluster and handle own leave.
        let next_round = self.round.next();
        for rc in &local_recs {
            match rc {
                Reconfig::Join { replica, .. } => {
                    ctx.send(
                        *replica,
                        AvaMsg::CurrState {
                            state: self.kv.clone(),
                            membership: self.membership.clone(),
                            round: next_round,
                            leader_ts: self.leader_ts.0,
                        },
                    );
                }
                Reconfig::Leave { replica } => {
                    if *replica == self.cfg.me {
                        self.status = ReplicaStatus::Left;
                    }
                }
            }
        }

        ctx.emit(Output::StageCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            stage: StageKind::Execution,
            started_at: stage_start,
            completed_at: ctx.now(),
        });
        ctx.emit(Output::RoundExecuted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            txns: executed_txns,
            at: ctx.now(),
        });

        // Remember own package for Alg. 8's previous-round re-broadcast.
        if let Some(own) = packages.get(&self.cfg.cluster) {
            self.prev_package = Some(Arc::clone(own));
        }
        self.executed_rounds += 1;

        // Clear per-round reconfiguration collection state (Alg. 10 line 36).
        for rc in &local_recs {
            self.collected_recs.remove(rc);
        }

        if self.status == ReplicaStatus::Left {
            return;
        }
        self.start_round(next_round, ctx);
    }

    fn apply_transaction(&mut self, tx: &Transaction, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if let TxKind::Write { key, .. } = tx.kind {
            *self.kv.entry(key).or_insert(0) += 1;
        }
        if let Some((client_node, _client)) = self.pending_clients.remove(&tx.id) {
            ctx.send(
                client_node,
                AvaMsg::ClientResponse { tx: tx.id, is_write: tx.kind.is_write() },
            );
        }
    }

    fn start_round(&mut self, round: Round, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.round = round;
        self.round_state = RoundState { started_at: ctx.now(), ..Default::default() };
        if !self.cfg.params.parallel_reconfig_workflow {
            // Drop stale sets and adopt one that committed while the previous round
            // was finishing.
            self.ordered_reconfig_sets.retain(|r, _| *r >= round);
            self.adopt_ordered_reconfig_set();
        }
        // Membership may have changed: propagate to every sub-protocol.
        let members = self.my_members();
        self.tob.set_membership(members.clone());
        self.election.set_members(members.clone());
        self.rlc.set_membership(self.membership.clone());
        self.rlc.start_round(round, ctx.now());
        self.brd = Brd::new(
            self.cfg.me,
            members,
            self.keypair.clone(),
            self.registry.clone(),
            self.leader,
            self.leader_ts,
            round,
            self.cfg.params.brd_timeout,
        );
        // Re-deliver packages that arrived early for this round.
        let future = std::mem::take(&mut self.future_packages);
        for package in future {
            self.on_local_share(package, ctx);
        }
    }

    // ---- reconfiguration collection (Alg. 3, member side) -----------------------

    fn on_request_join(
        &mut self,
        replica: ReplicaId,
        region: Region,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        self.join_regions.insert(replica, region);
        self.collected_recs.insert(Reconfig::Join { replica, region });
        ctx.send(replica, AvaMsg::Ack { members: self.my_members(), round: self.round });
    }

    fn on_request_leave(&mut self, replica: ReplicaId, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.collected_recs.insert(Reconfig::Leave { replica });
        ctx.send(replica, AvaMsg::Ack { members: self.my_members(), round: self.round });
    }

    // ---- joining-replica side ----------------------------------------------------

    fn send_join_request(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let ReplicaStatus::Joining { target, .. } = &self.status else {
            return;
        };
        let msg = AvaMsg::RequestJoin {
            replica: self.cfg.me,
            region: self.cfg.region,
            round: self.round,
        };
        let members = self.membership.member_ids(*target);
        ctx.broadcast(members, msg);
    }

    fn on_curr_state(
        &mut self,
        from: ReplicaId,
        state: BTreeMap<u64, u64>,
        membership: Membership,
        round: Round,
        leader_ts: u64,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        let quorum_needed = {
            let ReplicaStatus::Joining { target, state_senders, .. } = &mut self.status else {
                return;
            };
            let senders = state_senders.entry(round).or_default();
            senders.insert(from);
            // A quorum of the cluster we are joining must report the same round
            // (Alg. 10 line 39).
            senders.len() >= 2 * self.cfg.membership.f(*target) + 1
        };
        if !quorum_needed {
            return;
        }
        // Adopt the state and become an active member starting at `round`.
        self.kv = state;
        self.membership = membership;
        self.round = round;
        self.leader_ts = Timestamp(leader_ts);
        let members = self.my_members();
        self.leader = LeaderElection::leader_for(&members, leader_ts);
        self.election = LeaderElection::new(self.cfg.me, members.clone());
        self.tob.set_membership(members);
        let leader = self.leader;
        let ts = self.leader_ts;
        let now = ctx.now();
        let tob_actions = self.tob.new_leader(leader, ts, now);
        self.apply_tob_actions(tob_actions, ctx);
        self.status = ReplicaStatus::Active;
        self.start_round(round, ctx);
        ctx.emit(Output::ReconfigApplied {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            joined: true,
            round,
            at: ctx.now(),
        });
    }

    // ---- client requests ---------------------------------------------------------

    fn on_client_request(
        &mut self,
        from: ReplicaId,
        tx: Transaction,
        client: ClientId,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        match tx.kind {
            TxKind::Read { key } => {
                // Reads are served locally without going through the three stages
                // (the paper's E2 latency breakdown relies on this).
                let _ = self.kv.get(&key);
                ctx.consume(ctx.costs().per_tx_execute);
                ctx.send(from, AvaMsg::ClientResponse { tx: tx.id, is_write: false });
            }
            TxKind::Write { .. } => {
                self.pending_clients.insert(tx.id, (from, client));
                let actions = self.tob.broadcast(Operation::Trans(tx), ctx.now());
                self.apply_tob_actions(actions, ctx);
            }
        }
    }

    // ---- control commands ---------------------------------------------------------

    fn on_control(&mut self, cmd: ControlCmd, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        match cmd {
            ControlCmd::RequestLeave => {
                if !self.leave_requested {
                    self.leave_requested = true;
                    let msg = AvaMsg::RequestLeave { replica: self.cfg.me, round: self.round };
                    let members = self.my_members();
                    ctx.broadcast(members, msg);
                }
            }
            ControlCmd::MuteInterCluster => {
                self.mute_inter = true;
            }
            ControlCmd::SilentLocalLeader => {
                self.tob.set_fault_mode(FaultMode::SilentLeader);
            }
        }
    }
}

impl<T: TotalOrderBroadcast> Actor<AvaMsg<T::Msg>> for Replica<T>
where
    AvaMsg<T::Msg>: SimMessage,
{
    fn on_start(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        ctx.set_timer(self.cfg.tick_interval, TICK);
        match self.status {
            ReplicaStatus::Active => {
                self.round_state.started_at = ctx.now();
                self.rlc.start_round(self.round, ctx.now());
            }
            ReplicaStatus::Joining { .. } => self.send_join_request(ctx),
            ReplicaStatus::Left => {}
        }
    }

    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: AvaMsg<T::Msg>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        if self.status == ReplicaStatus::Left {
            return;
        }
        if let ReplicaStatus::Joining { .. } = self.status {
            match msg {
                AvaMsg::Ack { .. } => {
                    if let ReplicaStatus::Joining { acks, .. } = &mut self.status {
                        acks.insert(from);
                    }
                }
                AvaMsg::CurrState { state, membership, round, leader_ts } => {
                    self.on_curr_state(from, state, membership, round, leader_ts, ctx);
                }
                _ => {}
            }
            return;
        }
        match msg {
            AvaMsg::Tob(m) => {
                let actions = self.tob.on_message(from, m, ctx.now());
                self.apply_tob_actions(actions, ctx);
            }
            AvaMsg::Brd(m) => {
                let actions = self.brd.on_message(from, m, ctx.now());
                self.apply_brd_actions(actions, ctx);
            }
            AvaMsg::Election(m) => {
                let actions = self.election.on_message(from, m);
                self.apply_election_actions(actions, ctx);
            }
            AvaMsg::RemoteLeader(m) => {
                let actions = self.rlc.on_message(from, m, ctx.now());
                self.apply_rlc_actions(actions, ctx);
            }
            AvaMsg::Inter(package) => self.on_inter(package, ctx),
            AvaMsg::LocalShare(package) => self.on_local_share(package, ctx),
            AvaMsg::RequestJoin { replica, region, .. } => {
                self.on_request_join(replica, region, ctx)
            }
            AvaMsg::RequestLeave { replica, .. } => self.on_request_leave(replica, ctx),
            AvaMsg::Ack { .. } => {}
            AvaMsg::CurrState { .. } => {}
            AvaMsg::ClientRequest { tx, client } => self.on_client_request(from, tx, client, ctx),
            AvaMsg::ClientResponse { .. } => {}
            AvaMsg::Control(cmd) => self.on_control(cmd, ctx),
            // Client-directed control traffic is not for replicas.
            AvaMsg::ClientControl(_) => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if kind != TICK || self.status == ReplicaStatus::Left {
            return;
        }
        ctx.set_timer(self.cfg.tick_interval, TICK);
        if let ReplicaStatus::Joining { acks, .. } = &self.status {
            // Alg. 3's client timer: keep re-sending the join request until a quorum
            // acknowledged it.
            let target_quorum = self.cfg.membership.quorum(self.cfg.cluster);
            if acks.len() < target_quorum {
                self.send_join_request(ctx);
            }
            return;
        }
        let now = ctx.now();
        let tob_actions = self.tob.on_tick(now);
        self.apply_tob_actions(tob_actions, ctx);
        let brd_actions = self.brd.on_tick(now);
        self.apply_brd_actions(brd_actions, ctx);
        let rlc_actions = self.rlc.on_tick(now);
        self.apply_rlc_actions(rlc_actions, ctx);
        // Drive Stage 1 completion under light load (partial batches).
        self.check_stage1(ctx);
    }
}
