//! The Hamava replica: composition of all sub-protocols into the three-stage round
//! structure of the paper (Alg. 7–10), generic over the local total-order broadcast.

use crate::brd::{Brd, BrdAction, BrdCert};
use crate::leader_election::{ElectionAction, LeaderElection};
use crate::messages::{AvaMsg, ControlCmd, CurrStateViews, RoundPackage, RoundRecord, TxBatch};
use crate::remote_leader::{RemoteLeaderAction, RemoteLeaderChange};
use ava_consensus::{CommittedBlock, FaultMode, TobAction, TotalOrderBroadcast};
use ava_crypto::{KeyRegistry, Keypair};
use ava_simnet::{Actor, Context, SimMessage};
use ava_state::{
    machine_for, machine_from_snapshot, StateMachine, StateMachineKind, StateSnapshot,
};
use ava_store::{Checkpoint, CheckpointCollector, ReplicaStore, StoreConfig};
use ava_types::{
    ClientId, ClusterId, Duration, Membership, Operation, Output, ProtocolParams, Reconfig, Region,
    RejectKind, ReplicaId, Round, StageKind, Time, Timestamp, Transaction, TxId, TxKind,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Timer kind used for the replica's periodic tick.
const TICK: u64 = 1;

/// How often a recovering replica re-broadcasts its `CatchUpRequest` until the
/// catch-up completes (peers may themselves be down, or a checkpoint boundary may
/// need to pass before enough digests match). 500 ms.
const RECOVERY_RESEND: Duration = Duration(500_000);

/// Lifecycle status of a replica.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplicaStatus {
    /// Participating in replication.
    Active,
    /// Trying to join a cluster (Alg. 3 requester side).
    Joining {
        /// The cluster being joined.
        target: ClusterId,
        /// Acks received so far.
        acks: BTreeSet<ReplicaId>,
        /// CurrState senders seen, by round.
        state_senders: BTreeMap<Round, BTreeSet<ReplicaId>>,
    },
    /// Has left the system (stops processing).
    Left,
    /// Restarted after a crash and catching up via checkpoint + log-suffix state
    /// transfer (the recovery bookkeeping lives in `Replica::recovery`).
    Recovering,
}

/// Per-round bookkeeping.
#[derive(Debug, Default)]
struct RoundState {
    /// Blocks delivered by the local TOB this round.
    blocks: Vec<CommittedBlock>,
    /// Transactions delivered this round (across blocks).
    tx_count: usize,
    /// The reconfiguration set delivered by BRD for this round.
    recs: Option<(Vec<Reconfig>, Option<BrdCert>)>,
    /// Whether `send-recs` was called already (Alg. 7 line 20).
    sent_recs: bool,
    /// Whether Stage 1 is complete at this replica.
    stage1_done: bool,
    /// A committed `RoundCut` marker for this round asked to close the batch.
    cut_requested: bool,
    /// Whether this replica (as leader) already ordered a `RoundCut` marker for
    /// this round.
    sent_cut_marker: bool,
    /// Whether this replica (as leader) already ran the inter-cluster broadcast.
    inter_broadcast_done: bool,
    /// Packages received per cluster (the paper's `operations_j`), Arc-shared with
    /// the messages they arrived in.
    packages: BTreeMap<ClusterId, Arc<RoundPackage>>,
    /// When the round started.
    started_at: Time,
    /// When Stage 1 finished.
    stage1_end: Option<Time>,
}

/// Configuration of a single replica.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// This replica's id.
    pub me: ReplicaId,
    /// This replica's region.
    pub region: Region,
    /// The cluster this replica belongs to (or wants to join).
    pub cluster: ClusterId,
    /// Protocol parameters.
    pub params: ProtocolParams,
    /// Initial membership map of the whole system.
    pub membership: Membership,
    /// Interval of the periodic tick driving timeouts and batching.
    pub tick_interval: Duration,
    /// Maximum time Stage 1 waits for a full batch before closing the round with a
    /// partial batch (keeps rounds progressing under light load).
    pub stage1_max_wait: Duration,
    /// If true, start in joining mode (the replica is not yet a member).
    pub joining: bool,
    /// Which deterministic state machine executes committed transactions. The
    /// default counter machine keeps legacy runs byte-identical; the keyed KV
    /// machine stores real versioned values and emits per-round state digests.
    pub machine: StateMachineKind,
    /// Durable-store configuration. `None` (the default) runs the replica without
    /// persistence: nothing is logged, no fsync cost is charged, and a crashed
    /// replica can only rejoin via a full current-state transfer — behaviour is
    /// bit-identical to pre-store builds.
    pub store: Option<StoreConfig>,
}

impl ReplicaConfig {
    /// Reasonable defaults for an active replica.
    pub fn new(
        me: ReplicaId,
        region: Region,
        cluster: ClusterId,
        params: ProtocolParams,
        membership: Membership,
    ) -> Self {
        ReplicaConfig {
            me,
            region,
            cluster,
            params,
            membership,
            tick_interval: Duration::from_millis(10),
            stage1_max_wait: Duration::from_millis(1500),
            joining: false,
            machine: StateMachineKind::default(),
            store: None,
        }
    }
}

/// One peer's catch-up reply, kept until enough peers agree on a checkpoint.
struct CatchUpOffer {
    checkpoint: Arc<Checkpoint>,
    suffix: Vec<Arc<RoundRecord>>,
    round: Round,
    leader_ts: u64,
}

/// Upper bound on protocol messages buffered while catching up (the window is
/// normally a local round trip; the cap only matters if every peer is down).
const RECOVERY_BUFFER_CAP: usize = 10_000;

/// How many rounds ahead of the current one BRD messages are stashed for replay.
/// Healthy skews are a round or two; the window bounds the stash and keeps a
/// forged far-future round number from lingering as fake straggler evidence.
const FUTURE_BRD_WINDOW: u64 = 8;

/// Bookkeeping of an in-progress catch-up (post-restart recovery or an active
/// replica's straggler escape).
struct RecoveryState<TM> {
    /// When the catch-up began (for time-to-caught-up accounting).
    started_at: Time,
    /// The round covered locally (store checkpoint + log replay, or the straggler's
    /// current round); peers only need to cover rounds from here on.
    recovered_round: Round,
    /// Collects peer checkpoints until `f + 1` digests match.
    collector: CheckpointCollector,
    /// Latest reply per peer.
    offers: BTreeMap<ReplicaId, CatchUpOffer>,
    /// When the catch-up request was last (re-)broadcast.
    last_request_at: Time,
    /// Suffix records rejected because a certificate failed verification against
    /// the membership of its round (corrupted or stale transfers).
    rejected_records: u64,
    /// Protocol traffic (TOB, BRD, packages) that arrived while catching up,
    /// replayed once the replica rejoins so in-flight decisions are not lost.
    buffered: Vec<(ReplicaId, AvaMsg<TM>)>,
}

impl<TM> RecoveryState<TM> {
    fn new(now: Time, recovered_round: Round, threshold: usize) -> Self {
        RecoveryState {
            started_at: now,
            recovered_round,
            collector: CheckpointCollector::new(threshold),
            offers: BTreeMap::new(),
            last_request_at: now,
            rejected_records: 0,
            buffered: Vec::new(),
        }
    }
}

/// A Hamava replica, generic over the local total-order broadcast `T`.
pub struct Replica<T: TotalOrderBroadcast> {
    cfg: ReplicaConfig,
    keypair: Keypair,
    registry: KeyRegistry,
    status: ReplicaStatus,
    membership: Membership,
    /// Membership as it stood immediately before the most recent reconfiguration
    /// (equal to `membership` until one applies). Blocks committed by the TOB
    /// just before a reconfiguration boundary legitimately strand past the cut
    /// and pack into the *next* round (see `consume_ready_blocks`), so a round's
    /// package can carry certificates signed by the previous membership — remote
    /// verification accepts either view (see `verify_package`).
    prev_membership: Membership,
    round: Round,
    round_state: RoundState,
    tob: T,
    election: LeaderElection,
    brd: Brd,
    rlc: RemoteLeaderChange,
    leader: ReplicaId,
    leader_ts: Timestamp,
    /// Reconfiguration requests collected this round (Alg. 3 member side).
    collected_recs: BTreeSet<Reconfig>,
    /// Regions of replicas that requested to join (needed to build `Reconfig::Join`).
    join_regions: HashMap<ReplicaId, Region>,
    /// Client write requests waiting for execution, keyed by transaction id.
    pending_clients: HashMap<TxId, (ReplicaId, ClientId)>,
    /// For writes admitted via a broker batch: which `(broker, batch id)` the
    /// operation arrived in, so execution can emit the batch-commit trace the
    /// broker-conservation checker audits.
    pending_batch: HashMap<TxId, (ReplicaId, u64)>,
    /// Broker batches already admitted, keyed by `(broker, batch id)`. A broker
    /// that re-submits after a reply was lost (or slow) gets an idempotent ack
    /// instead of a double admission.
    seen_batches: BTreeSet<(ReplicaId, u64)>,
    /// The replicated deterministic state machine (counter or keyed KV,
    /// per `ReplicaConfig::machine`). Execution, log replay and snapshot
    /// adoption all mutate state exclusively through `StateMachine::apply`,
    /// so live and replayed replicas cannot diverge.
    machine: Box<dyn StateMachine>,
    /// Blocks delivered by the local TOB but not yet packed into a round, keyed
    /// by height. Rounds consume this queue in contiguous height order (see
    /// `consume_ready_blocks`), so the block→round partition is a pure function
    /// of the cluster's totally-ordered block stream rather than of each
    /// replica's delivery timing.
    pending_blocks: BTreeMap<u64, CommittedBlock>,
    /// The next local-log height to pack into a round. Blocks below it are
    /// already covered (executed locally, or applied via checkpoint / record
    /// transfer) and are dropped on delivery; a delivered height above it parks
    /// in `pending_blocks` until the gap fills (or a catch-up moves the anchor
    /// past it). Recovery paths re-anchor this from `Checkpoint::next_height`,
    /// transferred round records, or `CurrState`.
    next_local_height: u64,
    /// `next_local_height` as of the current round's start — the height boundary
    /// after the last *executed* round. A storeless catch-up reply synthesizes a
    /// checkpoint of executed state and must report this boundary (not the live
    /// anchor, which may already include blocks packed into the in-flight
    /// round), or same-round senders' synthesized digests would split.
    round_base_height: u64,
    /// Package of the previous round (re-sent by a new leader, Alg. 8 line 17).
    prev_package: Option<Arc<RoundPackage>>,
    /// Packages that arrived for future rounds (a remote cluster can be one round
    /// ahead).
    future_packages: Vec<Arc<RoundPackage>>,
    /// Reconfiguration sets ordered through the TOB (single-workflow mode only),
    /// keyed by the round they were agreed for. A set can commit while this replica
    /// is still finishing the previous round; stashing it here instead of dropping
    /// it keeps Stage 1 of the tagged round live.
    ordered_reconfig_sets: BTreeMap<Round, Vec<Reconfig>>,
    /// E4.3-style Byzantine behaviour: withhold inter-cluster messages.
    mute_inter: bool,
    /// Whether this replica asked to leave.
    leave_requested: bool,
    /// Rounds executed so far (exposed for tests/benches).
    executed_rounds: u64,
    /// The durable store (round log + checkpoints). This is the one field a
    /// restart does not wipe — it models the on-disk state of the process.
    store: Option<ReplicaStore<Arc<RoundRecord>>>,
    /// In-progress crash recovery, present iff `status == Recovering`.
    recovery: Option<RecoveryState<T::Msg>>,
    /// BRD messages that arrived for rounds this replica has not reached yet
    /// (BRD instances are per-round); replayed when the round starts, so a replica
    /// entering a round late still completes the round's dissemination. Members
    /// only disseminate for their current round, so a non-empty stash is also the
    /// straggler-escape evidence that this replica fell behind its own cluster.
    future_brd: BTreeMap<Round, Vec<(ReplicaId, crate::brd::BrdMsg)>>,
}

impl<T: TotalOrderBroadcast> Replica<T> {
    /// Create a replica around an already-constructed TOB instance.
    pub fn new(cfg: ReplicaConfig, keypair: Keypair, registry: KeyRegistry, tob: T) -> Self {
        let members = cfg.membership.member_ids(cfg.cluster);
        let leader = members.first().copied().unwrap_or(cfg.me);
        let election = LeaderElection::new(cfg.me, members.clone());
        let brd = Brd::new(
            cfg.me,
            members,
            keypair.clone(),
            registry.clone(),
            leader,
            Timestamp(0),
            Round(1),
            cfg.params.brd_timeout,
        );
        let rlc = RemoteLeaderChange::new(
            cfg.me,
            cfg.cluster,
            cfg.membership.clone(),
            keypair.clone(),
            registry.clone(),
            cfg.params.remote_leader_timeout,
            cfg.params.leader_change_grace,
        );
        let status = if cfg.joining {
            ReplicaStatus::Joining {
                target: cfg.cluster,
                acks: BTreeSet::new(),
                state_senders: BTreeMap::new(),
            }
        } else {
            ReplicaStatus::Active
        };
        let machine = machine_for(cfg.machine);
        let mut replica = Replica {
            membership: cfg.membership.clone(),
            prev_membership: cfg.membership.clone(),
            cfg,
            keypair,
            registry,
            status,
            round: Round(1),
            round_state: RoundState::default(),
            tob,
            election,
            brd,
            rlc,
            leader,
            leader_ts: Timestamp(0),
            collected_recs: BTreeSet::new(),
            join_regions: HashMap::new(),
            pending_clients: HashMap::new(),
            pending_batch: HashMap::new(),
            seen_batches: BTreeSet::new(),
            machine,
            pending_blocks: BTreeMap::new(),
            next_local_height: 0,
            round_base_height: 0,
            prev_package: None,
            future_packages: Vec::new(),
            ordered_reconfig_sets: BTreeMap::new(),
            mute_inter: false,
            leave_requested: false,
            executed_rounds: 0,
            store: None,
            recovery: None,
            future_brd: BTreeMap::new(),
        };
        replica.store = replica.cfg.store.map(ReplicaStore::new);
        replica
    }

    /// The replica's current round (for tests).
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// Number of rounds executed (for tests).
    pub fn executed_rounds(&self) -> u64 {
        self.executed_rounds
    }

    /// Current status (for tests).
    pub fn status(&self) -> &ReplicaStatus {
        &self.status
    }

    /// Current membership view (for tests).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The replicated state machine (for tests).
    pub fn machine(&self) -> &dyn StateMachine {
        self.machine.as_ref()
    }

    fn my_members(&self) -> Vec<ReplicaId> {
        self.membership.member_ids(self.cfg.cluster)
    }

    fn is_leader(&self) -> bool {
        self.leader == self.cfg.me
    }

    // ---- action plumbing -------------------------------------------------------

    fn apply_tob_actions(
        &mut self,
        actions: Vec<TobAction<T::Msg>>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                TobAction::Send { to, msg } => ctx.send(to, AvaMsg::Tob(msg)),
                TobAction::Consume(d) => ctx.consume(d),
                TobAction::Complain { .. } => {
                    let actions = self.election.complain();
                    self.apply_election_actions(actions, ctx);
                }
                TobAction::Deliver(block) => self.on_local_block(block, ctx),
            }
        }
    }

    /// Route a BRD message: deliver to the current round's instance, stash
    /// messages for rounds this replica has not reached yet (replayed by
    /// `start_round`), drop messages for past rounds or beyond the stash window.
    fn on_brd_msg(
        &mut self,
        from: ReplicaId,
        msg: crate::brd::BrdMsg,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        let round = msg.round();
        if round > self.round {
            if round.0 <= self.round.0 + FUTURE_BRD_WINDOW {
                self.future_brd.entry(round).or_default().push((from, msg));
            }
            return;
        }
        let actions = self.brd.on_message(from, msg, ctx.now());
        self.apply_brd_actions(actions, ctx);
    }

    /// Straggler evidence: `f + 1` distinct members disseminating for the same
    /// future round. Members only run BRD for their current round, and with at
    /// most `f` Byzantine members at least one of `f + 1` senders is correct —
    /// so a single forged message can never demote a healthy replica.
    fn cluster_moved_past_this_round(&self) -> bool {
        let f = self.membership.f(self.cfg.cluster);
        self.future_brd.values().any(|msgs| {
            let mut senders: Vec<ReplicaId> = msgs.iter().map(|(from, _)| *from).collect();
            senders.sort();
            senders.dedup();
            senders.len() >= f + 1
        })
    }

    fn apply_brd_actions(
        &mut self,
        actions: Vec<BrdAction>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                BrdAction::Send { to, msg } => ctx.send(to, AvaMsg::Brd(msg)),
                BrdAction::Consume(d) => ctx.consume(d),
                BrdAction::Complain { .. } => {
                    let actions = self.election.complain();
                    self.apply_election_actions(actions, ctx);
                }
                BrdAction::Deliver { recs, cert } => {
                    if self.round_state.recs.is_none() {
                        self.round_state.recs = Some((recs, Some(cert)));
                        self.check_stage1(ctx);
                    }
                }
                BrdAction::Reject { round } => {
                    ctx.emit(Output::ByzantineRejected {
                        replica: self.cfg.me,
                        cluster: self.cfg.cluster,
                        round,
                        kind: RejectKind::BrdSignature,
                        at: ctx.now(),
                    });
                }
            }
        }
    }

    fn apply_election_actions(
        &mut self,
        actions: Vec<ElectionAction>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                ElectionAction::Send { to, msg } => ctx.send(to, AvaMsg::Election(msg)),
                ElectionAction::NewLeader { leader, ts } => self.install_leader(leader, ts, ctx),
            }
        }
    }

    fn apply_rlc_actions(
        &mut self,
        actions: Vec<RemoteLeaderAction>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for action in actions {
            match action {
                RemoteLeaderAction::Send { to, msg } => ctx.send(to, AvaMsg::RemoteLeader(msg)),
                RemoteLeaderAction::Consume(d) => ctx.consume(d),
                RemoteLeaderAction::RequestNextLeader => {
                    let actions = self.election.next_leader();
                    self.apply_election_actions(actions, ctx);
                }
            }
        }
    }

    // ---- leader changes --------------------------------------------------------

    fn install_leader(
        &mut self,
        leader: ReplicaId,
        ts: Timestamp,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        self.leader = leader;
        self.leader_ts = ts;
        let now = ctx.now();
        let tob_actions = self.tob.new_leader(leader, ts, now);
        self.apply_tob_actions(tob_actions, ctx);
        let brd_actions = self.brd.new_leader(leader, ts, now);
        self.apply_brd_actions(brd_actions, ctx);
        self.rlc.note_local_leader_change(now);
        ctx.emit(Output::LeaderChanged {
            cluster: self.cfg.cluster,
            new_leader: leader,
            timestamp: ts.0,
            at: now,
            replica: self.cfg.me,
        });
        // Alg. 8 lines 14–18: a new leader re-runs the inter-cluster broadcast for
        // the current round (if Stage 1 is already complete) and for the previous
        // round, in case the failed leader never communicated them.
        if self.is_leader() {
            // Capture the previous round's package first: inter_broadcast below
            // updates `prev_package` to the current round's package.
            let previous = self.prev_package.clone();
            if self.round_state.stage1_done {
                self.round_state.inter_broadcast_done = false;
                self.inter_broadcast(ctx);
            }
            if let Some(prev) = previous {
                if prev.round != self.round {
                    self.send_package_to_remotes(&prev, ctx);
                }
            }
        }
    }

    // ---- stage 1: local ordering + reconfiguration ------------------------------

    /// A block committed by the local TOB. Delivery order is per-replica timing;
    /// the round partition must not be. So blocks are parked in `pending_blocks`
    /// and packed strictly in local-log height order from `next_local_height`,
    /// making each round's `operations_i` a deterministic function of the
    /// cluster's block stream — identical at every correct replica regardless of
    /// when (or in what burst, e.g. a post-recovery replay) deliveries land.
    fn on_local_block(&mut self, block: CommittedBlock, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        // Single-workflow mode: a committed reconfiguration set is final the
        // moment the TOB orders it, independent of which round its carrying
        // block packs into. The set is broadcast near the batch tail, so its
        // block routinely commits *after* the cut — with the batch closed it
        // can no longer pack, and stage 1 would deadlock waiting on a set it
        // will never see. Harvest at delivery; the block itself still packs
        // normally (into the next round if it landed past the cut).
        if !self.cfg.params.parallel_reconfig_workflow {
            for op in &block.block.ops {
                if let Operation::ReconfigSet { round, recs } = op {
                    if *round >= self.round {
                        self.ordered_reconfig_sets.entry(*round).or_insert_with(|| recs.clone());
                    }
                }
            }
        }
        self.pending_blocks.entry(block.block.height).or_insert(block);
        self.consume_ready_blocks(ctx);
        if !self.cfg.params.parallel_reconfig_workflow
            && matches!(self.status, ReplicaStatus::Active)
        {
            self.adopt_ordered_reconfig_set();
            self.check_stage1(ctx);
        }
    }

    /// Pack queued blocks into the current round while the next contiguous
    /// height is available and the round is still collecting (stage 1 open).
    /// Heights below the anchor were already covered by an executed round, a
    /// checkpoint, or transferred records — drop them. A height above the anchor
    /// is a gap: stall until the missing delivery arrives or a straggler
    /// catch-up moves the anchor past it.
    fn consume_ready_blocks(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        while matches!(self.status, ReplicaStatus::Active)
            && !self.round_state.stage1_done
            && !self.batch_closed()
        {
            let Some((&height, _)) = self.pending_blocks.first_key_value() else {
                return;
            };
            if height > self.next_local_height {
                return;
            }
            let block = self.pending_blocks.pop_first().expect("peeked entry").1;
            if height < self.next_local_height {
                continue;
            }
            self.next_local_height = height + 1;
            self.pack_block(block, ctx);
        }
    }

    fn pack_block(&mut self, block: CommittedBlock, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        // Reconfiguration sets ordered through the TOB (single-workflow mode;
        // normally already harvested at delivery in `on_local_block`, but
        // recycled blocks re-enter through the pending queue alone, so this is
        // the safety net — `or_insert` makes the double harvest idempotent),
        // and round-cut markers closing the current round's batch. A marker for
        // any other round raced a batch-full (or earlier-marker) cut and is
        // stale — the block carrying it still packs into the round normally.
        let mut reconfig_sets = Vec::new();
        for op in &block.block.ops {
            match op {
                Operation::ReconfigSet { round, recs } => {
                    reconfig_sets.push((*round, recs.clone()));
                }
                Operation::RoundCut { round } if *round == self.round => {
                    self.round_state.cut_requested = true;
                }
                _ => {}
            }
        }
        self.round_state.tx_count += block.block.tx_count();
        self.round_state.blocks.push(block);
        if !self.cfg.params.parallel_reconfig_workflow {
            for (round, recs) in reconfig_sets {
                if round >= self.round {
                    self.ordered_reconfig_sets.entry(round).or_insert(recs);
                }
            }
            self.adopt_ordered_reconfig_set();
        }
        // Alg. 7 line 20: once a large fraction of the batch is ordered, start the
        // reconfiguration dissemination so it overlaps the tail of local ordering.
        if self.round_state.tx_count >= self.cfg.params.alpha_threshold()
            && !self.round_state.sent_recs
        {
            self.send_recs(ctx);
        }
        self.check_stage1(ctx);
    }

    fn send_recs(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.round_state.sent_recs {
            return;
        }
        self.round_state.sent_recs = true;
        let recs: Vec<Reconfig> = self.collected_recs.iter().copied().collect();
        if self.cfg.params.parallel_reconfig_workflow {
            let actions = self.brd.broadcast(recs, ctx.now());
            self.apply_brd_actions(actions, ctx);
        } else {
            // Single-workflow ablation (E5.2): the reconfiguration set competes with
            // transactions for slots in the total order. The round tag keeps each
            // round's set distinct in the TOB's dedup pool (see `Operation`).
            let actions =
                self.tob.broadcast(Operation::ReconfigSet { round: self.round, recs }, ctx.now());
            self.apply_tob_actions(actions, ctx);
        }
    }

    /// Single-workflow mode: adopt the ordered reconfiguration set for the current
    /// round, if one has committed.
    fn adopt_ordered_reconfig_set(&mut self) {
        if self.round_state.recs.is_none() {
            if let Some(recs) = self.ordered_reconfig_sets.remove(&self.round) {
                self.round_state.recs = Some((recs, None));
            }
        }
    }

    /// Whether the current round's batch is closed: no more blocks may pack
    /// into it. True once the batch filled or a committed `RoundCut` marker cut
    /// it (see `Operation::RoundCut` — the cut is a point of the block stream,
    /// never the local clock, so it is identical at every replica). Crucially
    /// this is decided by the block stream alone: stage 1 may still be waiting
    /// on the round's BRD reconfiguration set, whose arrival time is
    /// per-replica, and blocks consumed during that wait must NOT slip into the
    /// round or peers' packages diverge.
    fn batch_closed(&self) -> bool {
        self.round_state.tx_count >= self.cfg.params.batch_size
            || (self.round_state.cut_requested && self.round_state.tx_count > 0)
    }

    fn check_stage1(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.round_state.stage1_done {
            return;
        }
        let now = ctx.now();
        if !self.batch_closed() {
            return;
        }
        if !self.round_state.sent_recs {
            self.send_recs(ctx);
        }
        let Some((recs, cert)) = self.round_state.recs.clone() else {
            return;
        };
        // Single-workflow mode: the set already travels inside the TOB-certified
        // blocks, so the package-level copy stays empty — it has no BRD delivery
        // certificate (remote verifiers would reject the package) and would be
        // applied a second time at execution.
        let (recs, cert) = if self.cfg.params.parallel_reconfig_workflow {
            (recs, cert)
        } else {
            (Vec::new(), None)
        };
        self.round_state.stage1_done = true;
        self.round_state.stage1_end = Some(now);
        ctx.emit(Output::StageCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            stage: StageKind::IntraCluster,
            started_at: self.round_state.started_at,
            completed_at: now,
        });
        // `operations_i`: every replica records its own cluster's package locally.
        let own = Arc::new(RoundPackage::new(
            self.cfg.cluster,
            self.round,
            self.round_state.blocks.clone(),
            recs,
            cert,
        ));
        self.round_state.packages.insert(self.cfg.cluster, own);
        // Alg. 7 line 23: the leader starts the inter-cluster broadcast.
        if self.is_leader() {
            self.inter_broadcast(ctx);
        }
        self.check_stage2(ctx);
    }

    // ---- stage 2: inter-cluster communication -----------------------------------

    fn inter_broadcast(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.round_state.inter_broadcast_done {
            return;
        }
        self.round_state.inter_broadcast_done = true;
        let Some(own) = self.round_state.packages.get(&self.cfg.cluster).cloned() else {
            return;
        };
        self.prev_package = Some(Arc::clone(&own));
        self.send_package_to_remotes(&own, ctx);
    }

    fn send_package_to_remotes(
        &mut self,
        package: &Arc<RoundPackage>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        if self.mute_inter {
            // E4.3 Byzantine leader: behaves correctly locally but never sends Inter.
            return;
        }
        for cluster in self.membership.cluster_ids() {
            if cluster == self.cfg.cluster {
                continue;
            }
            // Alg. 1 line 13: send to f_j + 1 distinct replicas of the remote cluster
            // so that at least one correct replica receives the package. The payload
            // is shared: each recipient costs an `Arc` bump, not a package copy.
            let targets = self.membership.first_k(cluster, self.membership.one_correct(cluster));
            ctx.broadcast(targets, AvaMsg::Inter(Arc::clone(package)));
        }
    }

    /// Verify a remote package against the current membership view, falling back
    /// to the pre-reconfiguration view: around a reconfiguration boundary a
    /// round's package carries head blocks that the TOB certified under the
    /// outgoing membership (they committed before the boundary and stranded past
    /// the previous round's cut), and rejecting those would wedge stage 2 at
    /// every replica of the receiving cluster.
    fn verify_package(&self, package: &RoundPackage) -> bool {
        package.verify_either(&self.registry, &self.membership, &self.prev_membership)
    }

    fn on_inter(&mut self, package: Arc<RoundPackage>, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if package.round < self.round || package.cluster == self.cfg.cluster {
            return;
        }
        ctx.consume(
            ctx.costs().per_sig_verify.saturating_mul(
                package.blocks.iter().map(|b| b.cert.signature_count() as u64).sum(),
            ),
        );
        if !self.verify_package(&package) {
            // Only a failure at our *current* round is sound Byzantine
            // evidence: having executed every earlier round, we hold the exact
            // certifying view (and the previous-view fallback covers the
            // reconfiguration boundary). A future-round package may be honestly
            // certified under a membership we have not executed up to yet — a
            // straggler racing a cross-cluster reconfig hits exactly this — so
            // those drop silently and the sender's retry path recovers them.
            if package.round == self.round {
                ctx.emit(Output::ByzantineRejected {
                    replica: self.cfg.me,
                    cluster: package.cluster,
                    round: package.round,
                    kind: RejectKind::PackageCert,
                    at: ctx.now(),
                });
            }
            return;
        }
        // Alg. 1 line 16: re-broadcast as a Local message within the local cluster,
        // sharing the verified package.
        let members = self.my_members();
        ctx.broadcast(members, AvaMsg::LocalShare(package));
    }

    fn on_local_share(
        &mut self,
        package: Arc<RoundPackage>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        if package.cluster == self.cfg.cluster {
            return;
        }
        if package.round > self.round {
            self.future_packages.push(package);
            return;
        }
        if package.round < self.round {
            return;
        }
        if let Some(existing) = self.round_state.packages.get(&package.cluster) {
            // Honest duplicates share the originating leader's single `Arc`
            // through every fan-out, so pointer equality is the (free) common
            // case. A different allocation with different *content* for the
            // same slot is equivocation — two packages claiming the same
            // `(cluster, round)` cannot both be honest.
            if !Arc::ptr_eq(existing, &package) {
                let first = existing.content_digest();
                let second = package.content_digest();
                if first != second {
                    ctx.emit(Output::EquivocationObserved {
                        replica: self.cfg.me,
                        cluster: package.cluster,
                        round: package.round,
                        first,
                        second,
                        at: ctx.now(),
                    });
                }
            }
            return;
        }
        ctx.consume(
            ctx.costs().per_sig_verify.saturating_mul(
                package.blocks.iter().map(|b| b.cert.signature_count() as u64).sum(),
            ),
        );
        if !self.verify_package(&package) {
            ctx.emit(Output::ByzantineRejected {
                replica: self.cfg.me,
                cluster: package.cluster,
                round: package.round,
                kind: RejectKind::PackageCert,
                at: ctx.now(),
            });
            return;
        }
        self.rlc.mark_received(package.cluster);
        self.round_state.packages.insert(package.cluster, package);
        self.check_stage2(ctx);
    }

    fn check_stage2(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if !self.round_state.stage1_done {
            return;
        }
        let expected = self.membership.cluster_count();
        if self.round_state.packages.len() < expected {
            return;
        }
        let now = ctx.now();
        ctx.emit(Output::StageCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            stage: StageKind::InterCluster,
            started_at: self.round_state.stage1_end.unwrap_or(self.round_state.started_at),
            completed_at: now,
        });
        self.execute(ctx);
    }

    // ---- stage 3: execution (Alg. 10) -------------------------------------------

    // NOTE: the state mutations below (machine applies, membership updates) are
    // mirrored by `apply_record_contents` for log replay and state transfer —
    // both funnel transactions through `StateMachine::apply`, so keeping them
    // in sync means keeping the *iteration order* identical (see its doc).
    fn execute(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let now = ctx.now();
        let stage_start = now;
        let packages = std::mem::take(&mut self.round_state.packages);
        // Write-ahead persistence: log the round's certified inputs before applying
        // them, so a post-crash restart can replay this round from its own store.
        if self.store.is_some() {
            let record =
                Arc::new(RoundRecord::new(self.round, packages.values().cloned().collect()));
            self.persist_record(record, ctx);
        }
        let mut executed_txns = 0usize;
        let mut value_bytes = 0u64;
        let mut all_recs: Vec<(ClusterId, Vec<Reconfig>)> = Vec::new();

        // Transactions first, cluster by cluster in the predefined (ascending) order.
        for (cluster, package) in &packages {
            for block in &package.blocks {
                for op in &block.block.ops {
                    match op {
                        Operation::Trans(tx) => {
                            value_bytes += self.apply_transaction(tx, ctx);
                            executed_txns += 1;
                        }
                        Operation::ReconfigSet { recs, .. } => {
                            all_recs.push((*cluster, recs.clone()));
                        }
                        Operation::RoundCut { .. } => {}
                    }
                }
            }
            if !package.recs.is_empty() {
                all_recs.push((*cluster, package.recs.clone()));
            }
        }
        ctx.consume(ctx.costs().per_tx_execute.saturating_mul(executed_txns as u64));
        // Value movement is charged separately so counter deployments (zero
        // value bytes) never reach this consume and stay golden-stable.
        if value_bytes > 0 {
            ctx.consume(ctx.costs().value_cost(value_bytes));
        }

        // Then reconfigurations, uniformly, updating membership and thresholds.
        // Keep the outgoing view around: blocks certified under it are still in
        // flight (stranded past this round's cut) and will pack into the next
        // round's package, which remote verifiers must accept.
        if all_recs.iter().any(|(_, recs)| !recs.is_empty()) {
            self.prev_membership = self.membership.clone();
        }
        let mut local_recs: Vec<Reconfig> = Vec::new();
        for (cluster, recs) in &all_recs {
            self.membership.apply_set(*cluster, recs);
            if *cluster == self.cfg.cluster {
                local_recs.extend(recs.iter().copied());
            }
            for rc in recs {
                ctx.emit(Output::ReconfigApplied {
                    replica: rc.replica(),
                    cluster: *cluster,
                    joined: rc.is_join(),
                    round: self.round,
                    at: now,
                    reporter: self.cfg.me,
                });
            }
        }

        // Kick-start joining replicas of the local cluster and handle own leave.
        let next_round = self.round.next();
        for rc in &local_recs {
            match rc {
                Reconfig::Join { replica, .. } => {
                    ctx.send(
                        *replica,
                        AvaMsg::CurrState {
                            state: self.machine.snapshot(),
                            views: Box::new(CurrStateViews {
                                membership: self.membership.clone(),
                                prev_membership: self.prev_membership.clone(),
                            }),
                            round: next_round,
                            leader_ts: self.leader_ts.0,
                            next_height: self.next_local_height,
                        },
                    );
                }
                Reconfig::Leave { replica } => {
                    if *replica == self.cfg.me {
                        self.status = ReplicaStatus::Left;
                    }
                }
            }
        }

        ctx.emit(Output::StageCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            stage: StageKind::Execution,
            started_at: stage_start,
            completed_at: ctx.now(),
        });
        ctx.emit(Output::RoundExecuted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: self.round,
            txns: executed_txns,
            at: ctx.now(),
        });
        // KV deployments publish the machine's history-independent digest each
        // round; the fuzzer's execution-agreement checker compares these across
        // replicas (including snapshot-recovered ones). Counter deployments
        // never emit it, keeping their output streams golden-stable.
        if self.machine.kind() == StateMachineKind::Kv {
            ctx.emit(Output::StateDigest {
                replica: self.cfg.me,
                cluster: self.cfg.cluster,
                round: self.round,
                digest: self.machine.digest(),
                entries: self.machine.entries(),
                value_bytes: self.machine.value_bytes(),
                at: ctx.now(),
            });
        }

        // Remember own package for Alg. 8's previous-round re-broadcast.
        if let Some(own) = packages.get(&self.cfg.cluster) {
            self.prev_package = Some(Arc::clone(own));
        }
        self.executed_rounds += 1;

        // Clear per-round reconfiguration collection state (Alg. 10 line 36).
        for rc in &local_recs {
            self.collected_recs.remove(rc);
        }

        // Checkpoint cadence: snapshot executed state at interval boundaries so the
        // log can be truncated (every replica checkpoints at the same rounds, so
        // checkpoint digests match across the cluster).
        self.maybe_checkpoint(ctx);

        if self.status == ReplicaStatus::Left {
            return;
        }
        self.start_round(next_round, ctx);
    }

    fn persist_record(&mut self, record: Arc<RoundRecord>, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let Some(store) = &mut self.store else {
            return;
        };
        let bytes = store.append_round(record);
        if bytes > 0 {
            ctx.consume(ctx.costs().persist_cost(bytes));
        }
    }

    fn maybe_checkpoint(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let should = self.store.as_ref().is_some_and(|s| s.should_checkpoint(self.round));
        if !should {
            return;
        }
        let checkpoint = Arc::new(Checkpoint::new(
            self.round,
            self.machine.snapshot(),
            self.membership.clone(),
            self.leader_ts.0,
            self.next_local_height,
        ));
        let store = self.store.as_mut().expect("checked above");
        let digest = checkpoint.digest;
        let round = checkpoint.round;
        let bytes = store.install_checkpoint(checkpoint);
        if bytes > 0 {
            ctx.consume(ctx.costs().persist_cost(bytes));
            ctx.emit(Output::CheckpointInstalled {
                replica: self.cfg.me,
                cluster: self.cfg.cluster,
                round,
                digest: digest.0,
                adopted: false,
                at: ctx.now(),
            });
        }
    }

    /// Apply one ordered transaction to the state machine, answer its pending
    /// client (writes complete at execution), and return the value bytes the
    /// apply moved (for the per-round value-movement cost charge).
    fn apply_transaction(
        &mut self,
        tx: &Transaction,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) -> u64 {
        let outcome = self.machine.apply(self.round, tx);
        if let Some((client_node, _client)) = self.pending_clients.remove(&tx.id) {
            ctx.send(
                client_node,
                AvaMsg::ClientResponse { tx: tx.id, is_write: tx.kind.is_write(), value_len: 0 },
            );
        }
        if let Some((broker, batch)) = self.pending_batch.remove(&tx.id) {
            ctx.emit(Output::BatchOpCommitted {
                replica: self.cfg.me,
                cluster: self.cfg.cluster,
                broker,
                batch,
                tx: tx.id,
                at: ctx.now(),
            });
        }
        outcome.value_bytes
    }

    fn start_round(&mut self, round: Round, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.round = round;
        self.round_base_height = self.next_local_height;
        self.round_state = RoundState { started_at: ctx.now(), ..Default::default() };
        if !self.cfg.params.parallel_reconfig_workflow {
            // Drop stale sets and adopt one that committed while the previous round
            // was finishing.
            self.ordered_reconfig_sets.retain(|r, _| *r >= round);
            self.adopt_ordered_reconfig_set();
        }
        // Membership may have changed: propagate to every sub-protocol.
        let members = self.my_members();
        self.tob.set_membership(members.clone());
        self.election.set_members(members.clone());
        self.rlc.set_membership(self.membership.clone());
        self.rlc.start_round(round, ctx.now());
        self.brd = Brd::new(
            self.cfg.me,
            members,
            self.keypair.clone(),
            self.registry.clone(),
            self.leader,
            self.leader_ts,
            round,
            self.cfg.params.brd_timeout,
        );
        // Re-deliver packages and BRD messages that arrived early for this round.
        let future = std::mem::take(&mut self.future_packages);
        for package in future {
            self.on_local_share(package, ctx);
        }
        self.future_brd = self.future_brd.split_off(&round);
        if let Some(msgs) = self.future_brd.remove(&round) {
            for (from, msg) in msgs {
                let actions = self.brd.on_message(from, msg, ctx.now());
                self.apply_brd_actions(actions, ctx);
            }
        }
        // Blocks delivered after the previous round's cut carried over in
        // `pending_blocks`; pack the contiguous prefix into this round now.
        self.consume_ready_blocks(ctx);
    }

    // ---- reconfiguration collection (Alg. 3, member side) -----------------------

    fn on_request_join(
        &mut self,
        replica: ReplicaId,
        region: Region,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        self.join_regions.insert(replica, region);
        self.collected_recs.insert(Reconfig::Join { replica, region });
        ctx.send(replica, AvaMsg::Ack { members: self.my_members(), round: self.round });
    }

    fn on_request_leave(&mut self, replica: ReplicaId, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.collected_recs.insert(Reconfig::Leave { replica });
        ctx.send(replica, AvaMsg::Ack { members: self.my_members(), round: self.round });
    }

    // ---- joining-replica side ----------------------------------------------------

    fn send_join_request(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let ReplicaStatus::Joining { target, .. } = &self.status else {
            return;
        };
        let msg = AvaMsg::RequestJoin {
            replica: self.cfg.me,
            region: self.cfg.region,
            round: self.round,
        };
        let members = self.membership.member_ids(*target);
        ctx.broadcast(members, msg);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_curr_state(
        &mut self,
        from: ReplicaId,
        state: StateSnapshot,
        views: CurrStateViews,
        round: Round,
        leader_ts: u64,
        next_height: u64,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        let quorum_needed = {
            let ReplicaStatus::Joining { target, state_senders, .. } = &mut self.status else {
                return;
            };
            let senders = state_senders.entry(round).or_default();
            senders.insert(from);
            // A quorum of the cluster we are joining must report the same round
            // (Alg. 10 line 39).
            senders.len() >= 2 * self.cfg.membership.f(*target) + 1
        };
        if !quorum_needed {
            return;
        }
        // Adopt the state and become an active member starting at `round`. The
        // sender's packing anchor comes with it: heights below `next_height` are
        // already folded into `state`, and the joiner must cut its first rounds
        // at the same height boundaries as its new peers.
        self.machine = machine_from_snapshot(&state);
        self.membership = views.membership;
        // Adopt the sender's trailing window too: packages certified under the
        // outgoing view are still in flight, and the joiner must verify them
        // exactly like its established peers do.
        self.prev_membership = views.prev_membership;
        self.round = round;
        self.leader_ts = Timestamp(leader_ts);
        self.next_local_height = next_height;
        self.pending_blocks = self.pending_blocks.split_off(&next_height);
        let members = self.my_members();
        self.leader = LeaderElection::leader_for(&members, leader_ts);
        self.election = LeaderElection::new(self.cfg.me, members.clone());
        self.tob.set_membership(members);
        let leader = self.leader;
        let ts = self.leader_ts;
        let now = ctx.now();
        let tob_actions = self.tob.new_leader(leader, ts, now);
        self.apply_tob_actions(tob_actions, ctx);
        self.status = ReplicaStatus::Active;
        self.start_round(round, ctx);
        ctx.emit(Output::ReconfigApplied {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            joined: true,
            round,
            at: ctx.now(),
            reporter: self.cfg.me,
        });
    }

    // ---- crash restart & catch-up (state transfer) --------------------------------

    /// Rebuild the replica after a simulated process restart: every sub-protocol is
    /// reconstructed from static configuration, volatile state is discarded, and
    /// the durable store (the one surviving field) seeds local recovery before the
    /// catch-up protocol fills the gap from peers.
    fn restart(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let members = self.cfg.membership.member_ids(self.cfg.cluster);
        self.membership = self.cfg.membership.clone();
        self.prev_membership = self.cfg.membership.clone();
        self.round = Round(1);
        self.round_state = RoundState { started_at: ctx.now(), ..Default::default() };
        self.tob.reset();
        self.election = LeaderElection::new(self.cfg.me, members.clone());
        self.leader = members.first().copied().unwrap_or(self.cfg.me);
        self.leader_ts = Timestamp(0);
        self.brd = Brd::new(
            self.cfg.me,
            members,
            self.keypair.clone(),
            self.registry.clone(),
            self.leader,
            self.leader_ts,
            self.round,
            self.cfg.params.brd_timeout,
        );
        self.rlc = RemoteLeaderChange::new(
            self.cfg.me,
            self.cfg.cluster,
            self.membership.clone(),
            self.keypair.clone(),
            self.registry.clone(),
            self.cfg.params.remote_leader_timeout,
            self.cfg.params.leader_change_grace,
        );
        self.collected_recs.clear();
        self.join_regions.clear();
        self.pending_clients.clear();
        self.pending_batch.clear();
        self.seen_batches.clear();
        self.machine = machine_for(self.cfg.machine);
        self.prev_package = None;
        self.future_packages.clear();
        self.ordered_reconfig_sets.clear();
        self.mute_inter = false;
        self.leave_requested = false;
        self.future_brd.clear();
        self.pending_blocks.clear();
        self.next_local_height = 0;
        self.round_base_height = 0;

        let (recovered_round, replayed) = self.recover_from_store();
        self.round_base_height = self.next_local_height;
        self.round = recovered_round;

        ctx.set_timer(self.cfg.tick_interval, TICK);
        ctx.emit(Output::ReplicaRestarted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            recovered_round,
            log_rounds_replayed: replayed,
            at: ctx.now(),
        });
        let f = self.membership.f(self.cfg.cluster);
        self.recovery = Some(RecoveryState::new(ctx.now(), recovered_round, f + 1));
        self.status = ReplicaStatus::Recovering;
        self.send_catch_up_request(ctx);
    }

    /// Straggler escape: this replica fell behind its own cluster (a verified or
    /// claimed remote package proves a later round is in progress) and its current
    /// round can no longer complete — the round's BRD exchange and package
    /// forwarding are over at its peers. Re-run the catch-up protocol *without*
    /// wiping state: fetch the missed rounds' certified records, then rejoin.
    fn begin_straggler_catch_up(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let f = self.membership.f(self.cfg.cluster);
        self.recovery = Some(RecoveryState::new(ctx.now(), self.round, f + 1));
        self.status = ReplicaStatus::Recovering;
        ctx.emit(Output::Custom {
            name: "straggler_catch_up",
            value: self.round.0 as f64,
            at: ctx.now(),
        });
        self.send_catch_up_request(ctx);
    }

    /// Local durable recovery: adopt the store's checkpoint, replay the log suffix,
    /// and refresh the leader view for the recovered membership. Returns the first
    /// round the store cannot cover and how many log rounds were replayed.
    fn recover_from_store(&mut self) -> (Round, u64) {
        let Some(store) = &self.store else {
            return (Round(1), 0);
        };
        let (checkpoint, suffix) = store.recover();
        let mut round = Round(1);
        if let Some(cp) = checkpoint {
            self.machine = machine_from_snapshot(&cp.state);
            self.membership = cp.membership.clone();
            self.prev_membership = cp.membership.clone();
            self.leader_ts = Timestamp(cp.leader_ts);
            round = cp.round.next();
            self.next_local_height = cp.next_height;
        }
        let mut replayed = 0u64;
        for record in suffix {
            if record.round < round {
                continue;
            }
            Self::apply_record_contents(&record, self.machine.as_mut(), &mut self.membership);
            if let Some(h) = Self::record_next_height(&record, self.cfg.cluster) {
                self.next_local_height = self.next_local_height.max(h);
            }
            round = record.round.next();
            replayed += 1;
        }
        let members = self.membership.member_ids(self.cfg.cluster);
        self.leader = LeaderElection::leader_for(&members, self.leader_ts.0);
        self.election = LeaderElection::new(self.cfg.me, members.clone());
        self.tob.set_membership(members);
        (round, replayed)
    }

    fn send_catch_up_request(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let Some(rec) = &mut self.recovery else {
            return;
        };
        rec.last_request_at = ctx.now();
        let from_round = rec.recovered_round;
        let me = self.cfg.me;
        let members: Vec<ReplicaId> =
            self.membership.member_ids(self.cfg.cluster).into_iter().filter(|m| *m != me).collect();
        ctx.broadcast(members, AvaMsg::CatchUpRequest { replica: me, from_round });
    }

    /// Member side of catch-up: ship the latest checkpoint plus the log suffix
    /// after it. A storeless replica synthesizes a checkpoint of its current state
    /// (rounds advance in lockstep, so concurrent synthesized snapshots still
    /// match digest-wise whenever the senders are in the same round).
    fn on_catch_up_request(
        &mut self,
        from: ReplicaId,
        _from_round: Round,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        let (checkpoint, suffix) = match &self.store {
            Some(store) => match store.latest_checkpoint() {
                Some(cp) => {
                    let suffix = store.suffix(cp.round);
                    (cp, suffix)
                }
                None => {
                    // No checkpoint yet: the whole history is in the log; anchor it
                    // with the empty round-0 snapshot every replica agrees on.
                    let cp = Arc::new(Checkpoint::new(
                        Round(0),
                        StateSnapshot::empty(self.machine.kind()),
                        self.cfg.membership.clone(),
                        0,
                        0,
                    ));
                    let suffix = store.suffix(Round(0));
                    (cp, suffix)
                }
            },
            None => {
                let last_executed = Round(self.round.0.saturating_sub(1));
                let cp = Arc::new(Checkpoint::new(
                    last_executed,
                    self.machine.snapshot(),
                    self.membership.clone(),
                    self.leader_ts.0,
                    self.round_base_height,
                ));
                (cp, Vec::new())
            }
        };
        ctx.send(
            from,
            AvaMsg::CatchUpReply {
                checkpoint,
                suffix,
                round: self.round,
                leader_ts: self.leader_ts.0,
            },
        );
    }

    fn on_catch_up_reply(
        &mut self,
        from: ReplicaId,
        checkpoint: Arc<Checkpoint>,
        suffix: Vec<Arc<RoundRecord>>,
        round: Round,
        leader_ts: u64,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        let Some(rec) = &mut self.recovery else {
            return;
        };
        // Corrupted snapshots (digest ≠ content) are dropped before they can vote.
        // Honest senders never ship one, so the rejection is Byzantine evidence.
        if !rec.collector.offer(from, Arc::clone(&checkpoint)) {
            ctx.emit(Output::ByzantineRejected {
                replica: self.cfg.me,
                cluster: self.cfg.cluster,
                round: checkpoint.round,
                kind: RejectKind::CatchUpCheckpoint,
                at: ctx.now(),
            });
            return;
        }
        rec.offers.insert(from, CatchUpOffer { checkpoint, suffix, round, leader_ts });
        self.try_complete_recovery(ctx);
    }

    /// Once `f + 1` peers agree on a checkpoint digest, try to adopt it plus one
    /// agreeing peer's log suffix (newest peer first). Every transferred record's
    /// certificates are verified against the membership of its round; a candidate
    /// with a gap or an unverifiable record is rejected and the next one is tried.
    fn try_complete_recovery(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        struct Adoption {
            machine: Box<dyn StateMachine>,
            membership: Membership,
            // The view one reconfig behind `membership` (the replay's trailing
            // window), preserved so the recovered replica keeps verifying
            // honest in-flight packages certified just before its adopted view
            // — flattening it to `membership` would turn those drops into
            // false Byzantine evidence.
            prev_membership: Membership,
            round: Round,
            leader_ts: u64,
            checkpoint: Option<Arc<Checkpoint>>,
            records: Vec<Arc<RoundRecord>>,
            rounds_transferred: u64,
            bytes_transferred: u64,
            next_height: u64,
        }
        let adoption = {
            let Some(rec) = &mut self.recovery else {
                return;
            };
            let Some(agreed) = rec.collector.agreed() else {
                return;
            };
            let mut candidates: Vec<ReplicaId> = rec
                .offers
                .iter()
                .filter(|(_, o)| {
                    o.checkpoint.round == agreed.round && o.checkpoint.digest == agreed.digest
                })
                .map(|(id, _)| *id)
                .collect();
            candidates.sort_by_key(|id| std::cmp::Reverse(rec.offers[id].round));
            let mut sig_cost = 0u64;
            let mut adoption = None;
            for id in candidates {
                let offer = &rec.offers[&id];
                // Base: the agreed checkpoint if it is ahead of local recovery,
                // else the locally recovered state.
                let use_checkpoint = agreed.round.next() > rec.recovered_round;
                let (mut machine, mut membership, mut next, mut bytes) = if use_checkpoint {
                    (
                        machine_from_snapshot(&agreed.state),
                        agreed.membership.clone(),
                        agreed.round.next(),
                        agreed.wire_size() as u64,
                    )
                } else {
                    (
                        machine_from_snapshot(&self.machine.snapshot()),
                        self.membership.clone(),
                        rec.recovered_round,
                        0,
                    )
                };
                let gap_rounds =
                    if use_checkpoint { agreed.round.next().0 - rec.recovered_round.0 } else { 0 };
                // Re-anchor block packing at the adopted base, then advance it
                // past every own-cluster block the transferred records cover.
                // The no-checkpoint base is the boundary after the last round
                // this replica *executed* (not the live anchor): blocks it had
                // consumed into its now-abandoned in-flight round are recycled
                // into `pending_blocks` at commit and re-packed from here.
                let mut next_height =
                    if use_checkpoint { agreed.next_height } else { self.round_base_height };
                let mut records = Vec::new();
                let mut ok = true;
                // Trails `membership` by one record: a record's head blocks may
                // be certified under the view that preceded the previous
                // record's reconfigurations (see `verify_package`).
                let mut replay_prev = membership.clone();
                for record in &offer.suffix {
                    if record.round < next {
                        continue;
                    }
                    if record.round > next {
                        ok = false; // gap: this peer cannot cover our range
                        break;
                    }
                    let (valid, sigs) =
                        record.verify_either(&self.registry, &membership, &replay_prev);
                    sig_cost += sigs;
                    if !valid {
                        rec.rejected_records += 1;
                        ok = false;
                        break;
                    }
                    replay_prev = membership.clone();
                    Self::apply_record_contents(record, machine.as_mut(), &mut membership);
                    if let Some(h) = Self::record_next_height(record, self.cfg.cluster) {
                        next_height = next_height.max(h);
                    }
                    bytes += record.wire_size() as u64;
                    next = record.round.next();
                    records.push(Arc::clone(record));
                }
                // The suffix must reach the peer's current round, else we would
                // rejoin behind the cluster with no way to fetch the missing rounds.
                if ok && next >= offer.round {
                    adoption = Some(Adoption {
                        machine,
                        membership,
                        prev_membership: replay_prev,
                        round: next,
                        leader_ts: offer.leader_ts,
                        checkpoint: use_checkpoint.then(|| Arc::clone(&agreed)),
                        rounds_transferred: gap_rounds + records.len() as u64,
                        records,
                        bytes_transferred: bytes,
                        next_height,
                    });
                    break;
                }
            }
            if sig_cost > 0 {
                ctx.consume(ctx.costs().per_sig_verify.saturating_mul(sig_cost));
            }
            let Some(adoption) = adoption else {
                return;
            };
            adoption
        };

        // Commit: adopt the transferred state and make it durable in one batch.
        self.machine = adoption.machine;
        self.membership = adoption.membership;
        self.prev_membership = adoption.prev_membership;
        self.leader_ts = Timestamp(adoption.leader_ts);
        // Recycle blocks consumed into the abandoned in-flight round — the
        // transferred records may stop short of them — then re-anchor. Covered
        // heights fall below the new anchor and are pruned; the rest re-pack
        // into the resumed round in height order.
        for block in std::mem::take(&mut self.round_state.blocks) {
            self.pending_blocks.entry(block.block.height).or_insert(block);
        }
        self.next_local_height = self.round_base_height.max(adoption.next_height);
        self.pending_blocks = self.pending_blocks.split_off(&self.next_local_height);
        let mut persist_bytes = 0usize;
        if let Some(store) = &mut self.store {
            if let Some(cp) = &adoption.checkpoint {
                let installed = store.install_checkpoint(Arc::clone(cp));
                if installed > 0 {
                    ctx.emit(Output::CheckpointInstalled {
                        replica: self.cfg.me,
                        cluster: self.cfg.cluster,
                        round: cp.round,
                        digest: cp.digest.0,
                        adopted: true,
                        at: ctx.now(),
                    });
                }
                persist_bytes += installed;
            }
            for record in &adoption.records {
                persist_bytes += store.append_round(Arc::clone(record));
            }
        }
        if persist_bytes > 0 {
            ctx.consume(ctx.costs().persist_cost(persist_bytes));
        }
        // Transactions pending at this replica that executed inside transferred
        // rounds get their responses now (a straggler kept its client bookkeeping).
        for record in &adoption.records {
            for package in &record.packages {
                for block in &package.blocks {
                    for op in &block.block.ops {
                        if let Operation::Trans(tx) = op {
                            if let Some((client_node, _)) = self.pending_clients.remove(&tx.id) {
                                ctx.send(
                                    client_node,
                                    AvaMsg::ClientResponse {
                                        tx: tx.id,
                                        is_write: tx.kind.is_write(),
                                        value_len: 0,
                                    },
                                );
                            }
                            if let Some((broker, batch)) = self.pending_batch.remove(&tx.id) {
                                ctx.emit(Output::BatchOpCommitted {
                                    replica: self.cfg.me,
                                    cluster: self.cfg.cluster,
                                    broker,
                                    batch,
                                    tx: tx.id,
                                    at: ctx.now(),
                                });
                            }
                        }
                    }
                }
            }
        }
        let rec = self.recovery.take();
        // Two same-round checkpoint digests among the offers is sound evidence a
        // peer fabricated one (snapshots are round-deterministic at correct
        // replicas): the f+1 agreement outvoted it; record that it happened.
        let conflicting = rec.as_ref().map(|r| r.collector.conflicting()).unwrap_or(false);
        let buffered = rec.map(|r| r.buffered).unwrap_or_default();
        if conflicting {
            ctx.emit(Output::ByzantineRejected {
                replica: self.cfg.me,
                cluster: self.cfg.cluster,
                round: adoption.round,
                kind: RejectKind::CatchUpCheckpoint,
                at: ctx.now(),
            });
        }
        self.status = ReplicaStatus::Active;
        ctx.emit(Output::RecoveryCompleted {
            replica: self.cfg.me,
            cluster: self.cfg.cluster,
            round: adoption.round,
            rounds_transferred: adoption.rounds_transferred,
            bytes_transferred: adoption.bytes_transferred,
            at: ctx.now(),
        });
        self.resume_active(adoption.round, ctx);
        self.dispatch_buffered(buffered, ctx);
    }

    /// Replay protocol traffic buffered while catching up, in arrival order.
    fn dispatch_buffered(
        &mut self,
        buffered: Vec<(ReplicaId, AvaMsg<T::Msg>)>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        for (from, msg) in buffered {
            match msg {
                AvaMsg::Tob(m) => {
                    let actions = self.tob.on_message(from, m, ctx.now());
                    self.apply_tob_actions(actions, ctx);
                }
                AvaMsg::Brd(m) => self.on_brd_msg(from, m, ctx),
                AvaMsg::Inter(package) => self.on_inter(package, ctx),
                AvaMsg::LocalShare(package) => self.on_local_share(package, ctx),
                _ => {}
            }
        }
    }

    /// Apply one round record to a machine/membership pair, mirroring `execute`:
    /// transactions first (cluster by cluster in package order), then every
    /// reconfiguration uniformly. Used for local log replay and for replaying
    /// transferred suffixes — no client responses, no outputs.
    ///
    /// INVARIANT: this must stay semantically identical to the state mutations
    /// of [`Replica::execute`]. Both funnel every transaction through
    /// `StateMachine::apply` with the record's round, so the remaining sync
    /// obligation is the iteration order (packages ascending by cluster, blocks
    /// and ops in package order) and the reconfiguration handling (recs from
    /// both block-carried `ReconfigSet` ops and package-level sets). If the two
    /// ever diverge, replayed replicas compute different checkpoint and state
    /// digests than live ones and f+1 agreement breaks — change both together.
    fn apply_record_contents(
        record: &RoundRecord,
        machine: &mut dyn StateMachine,
        membership: &mut Membership,
    ) {
        let mut all_recs: Vec<(ClusterId, Vec<Reconfig>)> = Vec::new();
        for package in &record.packages {
            for block in &package.blocks {
                for op in &block.block.ops {
                    match op {
                        Operation::Trans(tx) => {
                            machine.apply(record.round, tx);
                        }
                        Operation::ReconfigSet { recs, .. } => {
                            all_recs.push((package.cluster, recs.clone()));
                        }
                        Operation::RoundCut { .. } => {}
                    }
                }
            }
            if !package.recs.is_empty() {
                all_recs.push((package.cluster, package.recs.clone()));
            }
        }
        for (cluster, recs) in &all_recs {
            membership.apply_set(*cluster, recs);
        }
    }

    /// The packing anchor implied by a round record for `cluster`'s own log:
    /// one past the highest own-cluster block height the record packs, or `None`
    /// when the record carries no own-cluster blocks (its round boundary then
    /// adds nothing beyond the previous one).
    fn record_next_height(record: &RoundRecord, cluster: ClusterId) -> Option<u64> {
        record
            .packages
            .iter()
            .filter(|p| p.cluster == cluster)
            .flat_map(|p| p.blocks.iter().map(|b| b.block.height + 1))
            .max()
    }

    /// Rejoin local ordering and inter-cluster forwarding at `round` with the
    /// already-adopted membership and leader timestamp (shared by peer-driven
    /// catch-up and the solo fallback).
    fn resume_active(&mut self, round: Round, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let members = self.my_members();
        self.election = LeaderElection::new(self.cfg.me, members.clone());
        self.leader = LeaderElection::leader_for(&members, self.leader_ts.0);
        self.tob.set_membership(members);
        let leader = self.leader;
        let ts = self.leader_ts;
        let now = ctx.now();
        let actions = self.tob.new_leader(leader, ts, now);
        self.apply_tob_actions(actions, ctx);
        self.start_round(round, ctx);
    }

    // ---- client requests ---------------------------------------------------------

    fn on_client_request(
        &mut self,
        from: ReplicaId,
        tx: Transaction,
        client: ClientId,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        match tx.kind {
            TxKind::Read { key } => {
                // Reads are served locally without going through the three stages
                // (the paper's E2 latency breakdown relies on this).
                let value_len = self.machine.read_len(key);
                ctx.consume(ctx.costs().per_tx_execute);
                if value_len > 0 {
                    ctx.consume(ctx.costs().value_cost(value_len as u64));
                }
                ctx.send(from, AvaMsg::ClientResponse { tx: tx.id, is_write: false, value_len });
            }
            TxKind::Scan { start_key, count } => {
                // Range reads are served cluster-locally from committed state,
                // exactly like point reads.
                let bytes = self.machine.scan_bytes(start_key, count);
                ctx.consume(ctx.costs().per_tx_execute);
                if bytes > 0 {
                    ctx.consume(ctx.costs().value_cost(bytes));
                }
                let value_len = bytes.min(u32::MAX as u64) as u32;
                ctx.send(from, AvaMsg::ClientResponse { tx: tx.id, is_write: false, value_len });
            }
            TxKind::Write { .. } | TxKind::MultiWrite { .. } => {
                self.pending_clients.insert(tx.id, (from, client));
                let actions = self.tob.broadcast(Operation::Trans(tx), ctx.now());
                self.apply_tob_actions(actions, ctx);
            }
        }
    }

    /// Admit one broker-certified batch (broker tier fast path): verify the
    /// batch signature once, serve reads immediately, and feed writes into the
    /// local TOB. The reply releases the broker's in-flight slot and carries the
    /// read acks; write acks ride the ordinary per-operation execution path
    /// (`apply_transaction`), addressed to the broker node recorded in
    /// `pending_clients`.
    fn on_batch_submit(
        &mut self,
        from: ReplicaId,
        batch: Arc<TxBatch>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        ctx.consume(ctx.costs().batch_cost(batch.ops.len()));
        if !batch.verify(&self.registry) {
            return;
        }
        if !self.seen_batches.insert((batch.broker, batch.id)) {
            // Duplicate submission (retry after a lost or slow reply): ack
            // idempotently, never re-admit. Writes of the original admission are
            // either still pending or already acked per-operation.
            ctx.send(from, AvaMsg::BatchReply { batch: batch.id, reads: Vec::new() });
            return;
        }
        let mut reads = Vec::new();
        let mut read_bytes = 0u64;
        for tx in &batch.ops {
            match tx.kind {
                TxKind::Read { key } => {
                    read_bytes += self.machine.read_len(key) as u64;
                    reads.push(tx.id);
                }
                TxKind::Scan { start_key, count } => {
                    read_bytes += self.machine.scan_bytes(start_key, count);
                    reads.push(tx.id);
                }
                TxKind::Write { .. } | TxKind::MultiWrite { .. } => {
                    self.pending_clients.insert(tx.id, (from, tx.id.client));
                    self.pending_batch.insert(tx.id, (batch.broker, batch.id));
                    let actions = self.tob.broadcast(Operation::Trans(tx.clone()), ctx.now());
                    self.apply_tob_actions(actions, ctx);
                }
            }
        }
        ctx.consume(ctx.costs().per_tx_execute.saturating_mul(reads.len() as u64));
        if read_bytes > 0 {
            ctx.consume(ctx.costs().value_cost(read_bytes));
        }
        ctx.send(from, AvaMsg::BatchReply { batch: batch.id, reads });
    }

    // ---- control commands ---------------------------------------------------------

    fn on_control(&mut self, cmd: ControlCmd, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        match cmd {
            ControlCmd::RequestLeave => {
                if !self.leave_requested {
                    self.leave_requested = true;
                    let msg = AvaMsg::RequestLeave { replica: self.cfg.me, round: self.round };
                    let members = self.my_members();
                    ctx.broadcast(members, msg);
                }
            }
            ControlCmd::MuteInterCluster => {
                self.mute_inter = true;
            }
            ControlCmd::SilentLocalLeader => {
                self.tob.set_fault_mode(FaultMode::SilentLeader);
            }
        }
    }
}

impl<T: TotalOrderBroadcast> Actor<AvaMsg<T::Msg>> for Replica<T>
where
    AvaMsg<T::Msg>: SimMessage,
{
    fn on_start(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        ctx.set_timer(self.cfg.tick_interval, TICK);
        match self.status {
            ReplicaStatus::Active => {
                self.round_state.started_at = ctx.now();
                self.rlc.start_round(self.round, ctx.now());
            }
            ReplicaStatus::Joining { .. } => self.send_join_request(ctx),
            ReplicaStatus::Left | ReplicaStatus::Recovering => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if self.status == ReplicaStatus::Left {
            return;
        }
        self.restart(ctx);
    }

    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: AvaMsg<T::Msg>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        if self.status == ReplicaStatus::Left {
            return;
        }
        if self.status == ReplicaStatus::Recovering {
            // A recovering replica only acts on state transfers; in-flight protocol
            // traffic is buffered and replayed once it rejoins, so decisions made
            // while it caught up are not lost.
            match msg {
                AvaMsg::CatchUpReply { checkpoint, suffix, round, leader_ts } => {
                    self.on_catch_up_reply(from, checkpoint, suffix, round, leader_ts, ctx);
                }
                m
                @ (AvaMsg::Tob(_) | AvaMsg::Brd(_) | AvaMsg::Inter(_) | AvaMsg::LocalShare(_)) => {
                    if let Some(rec) = &mut self.recovery {
                        if rec.buffered.len() < RECOVERY_BUFFER_CAP {
                            rec.buffered.push((from, m));
                        }
                    }
                }
                _ => {}
            }
            return;
        }
        if let ReplicaStatus::Joining { .. } = self.status {
            match msg {
                AvaMsg::Ack { .. } => {
                    if let ReplicaStatus::Joining { acks, .. } = &mut self.status {
                        acks.insert(from);
                    }
                }
                AvaMsg::CurrState { state, views, round, leader_ts, next_height } => {
                    self.on_curr_state(from, state, *views, round, leader_ts, next_height, ctx);
                }
                _ => {}
            }
            return;
        }
        match msg {
            AvaMsg::Tob(m) => {
                let actions = self.tob.on_message(from, m, ctx.now());
                self.apply_tob_actions(actions, ctx);
            }
            AvaMsg::Brd(m) => self.on_brd_msg(from, m, ctx),
            AvaMsg::Election(m) => {
                let actions = self.election.on_message(from, m);
                self.apply_election_actions(actions, ctx);
            }
            AvaMsg::RemoteLeader(m) => {
                let actions = self.rlc.on_message(from, m, ctx.now());
                self.apply_rlc_actions(actions, ctx);
            }
            AvaMsg::Inter(package) => self.on_inter(package, ctx),
            AvaMsg::LocalShare(package) => self.on_local_share(package, ctx),
            AvaMsg::RequestJoin { replica, region, .. } => {
                self.on_request_join(replica, region, ctx)
            }
            AvaMsg::RequestLeave { replica, .. } => self.on_request_leave(replica, ctx),
            AvaMsg::Ack { .. } => {}
            AvaMsg::CurrState { .. } => {}
            AvaMsg::CatchUpRequest { replica, from_round } => {
                self.on_catch_up_request(replica, from_round, ctx)
            }
            AvaMsg::CatchUpReply { .. } => {}
            AvaMsg::ClientRequest { tx, client } => self.on_client_request(from, tx, client, ctx),
            AvaMsg::ClientResponse { .. } => {}
            AvaMsg::BatchSubmit(batch) => self.on_batch_submit(from, batch, ctx),
            // Broker-tier traffic addressed to brokers or aggregate generators.
            AvaMsg::BrokerSubmit { .. }
            | AvaMsg::BatchReply { .. }
            | AvaMsg::BrokerDeliver { .. } => {}
            AvaMsg::Control(cmd) => self.on_control(cmd, ctx),
            // Client-directed control traffic is not for replicas.
            AvaMsg::ClientControl(_) => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        if kind != TICK || self.status == ReplicaStatus::Left {
            return;
        }
        ctx.set_timer(self.cfg.tick_interval, TICK);
        if self.status == ReplicaStatus::Recovering {
            let now = ctx.now();
            let (resend, give_up) = match &self.recovery {
                Some(rec) => (
                    now.since(rec.last_request_at) >= RECOVERY_RESEND,
                    now.since(rec.started_at) >= self.cfg.params.local_timeout,
                ),
                None => (false, false),
            };
            if give_up {
                // Solo fallback: no quorum of peers answered within the local
                // timeout (e.g. the whole cluster restarted). Resume from the
                // locally recovered state; live rounds re-align the stragglers.
                // This is NOT a completed catch-up — `RecoveryCompleted` stays
                // reserved for a real state transfer (the `RecoveryObserver`
                // keeps the replica marked not-caught-up until one happens).
                let (round, buffered) = match self.recovery.take() {
                    Some(r) => (r.recovered_round, r.buffered),
                    None => (self.round, Vec::new()),
                };
                self.status = ReplicaStatus::Active;
                ctx.emit(Output::Custom {
                    name: "recovery_solo_fallback",
                    value: round.0 as f64,
                    at: now,
                });
                // Return any blocks consumed into the abandoned in-flight round
                // to the queue and rewind the anchor to the round boundary, so
                // the resumed round re-packs them in height order.
                for block in std::mem::take(&mut self.round_state.blocks) {
                    self.pending_blocks.entry(block.block.height).or_insert(block);
                }
                self.next_local_height = self.round_base_height;
                self.resume_active(round, ctx);
                self.dispatch_buffered(buffered, ctx);
            } else if resend {
                self.send_catch_up_request(ctx);
            }
            return;
        }
        if let ReplicaStatus::Joining { acks, .. } = &self.status {
            // Alg. 3's client timer: keep re-sending the join request until a quorum
            // acknowledged it.
            let target_quorum = self.cfg.membership.quorum(self.cfg.cluster);
            if acks.len() < target_quorum {
                self.send_join_request(ctx);
            }
            return;
        }
        let now = ctx.now();
        let tob_actions = self.tob.on_tick(now);
        self.apply_tob_actions(tob_actions, ctx);
        let brd_actions = self.brd.on_tick(now);
        self.apply_brd_actions(brd_actions, ctx);
        let rlc_actions = self.rlc.on_tick(now);
        self.apply_rlc_actions(rlc_actions, ctx);
        // Drive Stage 1 completion under light load (partial batches): after the
        // stage-1 grace the leader orders a round-cut marker through the TOB, and
        // the round closes wherever the marker commits — the same point of the
        // block stream at every replica. (A new leader after a mid-round leader
        // change sends its own marker; a raced duplicate lands stale and is
        // skipped by `pack_block`.)
        if matches!(self.status, ReplicaStatus::Active)
            && self.is_leader()
            && !self.round_state.stage1_done
            && !self.round_state.sent_cut_marker
            && self.round_state.tx_count > 0
            && now.since(self.round_state.started_at) >= self.cfg.stage1_max_wait
        {
            self.round_state.sent_cut_marker = true;
            let actions = self.tob.broadcast(Operation::RoundCut { round: self.round }, now);
            self.apply_tob_actions(actions, ctx);
        }
        self.check_stage1(ctx);
        // Straggler escape: f+1 cluster members disseminating for a later round
        // (stashed in `future_brd`) prove the cluster executed this round without
        // us — a round still open after the stage-1 grace can never complete here,
        // because its BRD exchange and package forwarding are over at the peers.
        // Catch the missed rounds up from a peer's store instead. (A whole cluster
        // stuck in one round — e.g. under a partition — shows no future BRD and
        // correctly keeps waiting: peers have nothing newer to transfer.)
        if now.since(self.round_state.started_at) >= self.cfg.stage1_max_wait
            && self.cluster_moved_past_this_round()
        {
            self.begin_straggler_catch_up(ctx);
        }
    }
}
