//! The classical leader election module (Alg. 9 of the paper).
//!
//! Each cluster runs one instance per replica. Replicas complain about the current
//! leader; once a quorum complains (with `f+1` amplification), every correct replica
//! moves to the next leader, chosen round-robin over the cluster members with a
//! monotonically increasing timestamp. A `next-leader` request (issued by the remote
//! leader change protocol, Alg. 2 line 26) advances the leader directly.

use ava_types::{ReplicaId, Timestamp};
use std::collections::BTreeSet;

/// Wire message of the leader election module.
#[derive(Clone, Debug)]
pub enum ElectionMsg {
    /// A complaint about the leader of timestamp `ts` (the paper's `Complaint(ts)`).
    Complaint {
        /// The timestamp being complained about.
        ts: u64,
    },
}

impl ElectionMsg {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        72
    }
}

/// Side effects requested by the leader election module.
#[derive(Clone, Debug)]
pub enum ElectionAction {
    /// Broadcast a message to every member of the cluster.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: ElectionMsg,
    },
    /// A new leader was elected (Alg. 9 line 27).
    NewLeader {
        /// The elected leader.
        leader: ReplicaId,
        /// Its timestamp.
        ts: Timestamp,
    },
}

/// Leader election state machine for one replica.
#[derive(Debug)]
pub struct LeaderElection {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    ts: u64,
    complainers: BTreeSet<ReplicaId>,
    complained: bool,
}

impl LeaderElection {
    /// Create an instance. The initial leader has timestamp 0 and is `members[0]`.
    pub fn new(me: ReplicaId, members: Vec<ReplicaId>) -> Self {
        LeaderElection { me, members, ts: 0, complainers: BTreeSet::new(), complained: false }
    }

    /// The current leader timestamp.
    pub fn timestamp(&self) -> Timestamp {
        Timestamp(self.ts)
    }

    /// The leader for the current timestamp (round-robin over the member order).
    pub fn current_leader(&self) -> ReplicaId {
        Self::leader_for(&self.members, self.ts)
    }

    /// The leader a given member list and timestamp map to.
    pub fn leader_for(members: &[ReplicaId], ts: u64) -> ReplicaId {
        assert!(!members.is_empty(), "cluster has no members");
        members[(ts as usize) % members.len()]
    }

    fn f(&self) -> usize {
        if self.members.is_empty() {
            0
        } else {
            (self.members.len() - 1) / 3
        }
    }

    /// Update the member list after a reconfiguration.
    pub fn set_members(&mut self, members: Vec<ReplicaId>) {
        self.members = members;
    }

    /// Request: complain about the current leader (Alg. 9 line 11).
    pub fn complain(&mut self) -> Vec<ElectionAction> {
        if self.complained {
            return Vec::new();
        }
        self.send_complain()
    }

    /// Request: move directly to the next leader (Alg. 9 line 28), used by the remote
    /// leader change protocol once a valid remote complaint is accepted.
    pub fn next_leader(&mut self) -> Vec<ElectionAction> {
        self.change()
    }

    /// Handle a complaint from another member.
    pub fn on_message(&mut self, from: ReplicaId, msg: ElectionMsg) -> Vec<ElectionAction> {
        let ElectionMsg::Complaint { ts } = msg;
        if ts != self.ts || !self.members.contains(&from) {
            return Vec::new();
        }
        self.complainers.insert(from);
        let mut out = Vec::new();
        if self.complainers.len() >= self.f() + 1 && !self.complained {
            out.extend(self.send_complain());
        }
        if self.complainers.len() >= 2 * self.f() + 1 {
            out.extend(self.change());
        }
        out
    }

    fn send_complain(&mut self) -> Vec<ElectionAction> {
        self.complained = true;
        self.complainers.insert(self.me);
        let msg = ElectionMsg::Complaint { ts: self.ts };
        self.members.iter().map(|&to| ElectionAction::Send { to, msg: msg.clone() }).collect()
    }

    fn change(&mut self) -> Vec<ElectionAction> {
        self.ts += 1;
        self.complainers.clear();
        self.complained = false;
        vec![ElectionAction::NewLeader { leader: self.current_leader(), ts: Timestamp(self.ts) }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u32) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId).collect()
    }

    fn new_leaders(actions: &[ElectionAction]) -> Vec<(ReplicaId, u64)> {
        actions
            .iter()
            .filter_map(|a| match a {
                ElectionAction::NewLeader { leader, ts } => Some((*leader, ts.0)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn quorum_of_complaints_elects_next_leader() {
        let ms = members(4);
        let mut le = LeaderElection::new(ReplicaId(3), ms.clone());
        assert_eq!(le.current_leader(), ReplicaId(0));
        let mut all = Vec::new();
        all.extend(le.complain());
        all.extend(le.on_message(ReplicaId(1), ElectionMsg::Complaint { ts: 0 }));
        // Two complaints (f+1) amplify but do not change yet.
        assert!(new_leaders(&all).is_empty());
        all.extend(le.on_message(ReplicaId(2), ElectionMsg::Complaint { ts: 0 }));
        assert_eq!(new_leaders(&all), vec![(ReplicaId(1), 1)]);
        assert_eq!(le.current_leader(), ReplicaId(1));
    }

    #[test]
    fn amplification_complains_after_f_plus_one() {
        let mut le = LeaderElection::new(ReplicaId(3), members(7));
        // f = 2: three remote complaints trigger amplification (a Send burst).
        let a1 = le.on_message(ReplicaId(0), ElectionMsg::Complaint { ts: 0 });
        let a2 = le.on_message(ReplicaId(1), ElectionMsg::Complaint { ts: 0 });
        assert!(a1.is_empty() && a2.is_empty());
        let a3 = le.on_message(ReplicaId(2), ElectionMsg::Complaint { ts: 0 });
        assert!(a3.iter().any(|a| matches!(a, ElectionAction::Send { .. })));
    }

    #[test]
    fn stale_and_foreign_complaints_are_ignored() {
        let mut le = LeaderElection::new(ReplicaId(0), members(4));
        assert!(le.on_message(ReplicaId(1), ElectionMsg::Complaint { ts: 5 }).is_empty());
        assert!(le.on_message(ReplicaId(99), ElectionMsg::Complaint { ts: 0 }).is_empty());
    }

    #[test]
    fn next_leader_request_advances_round_robin() {
        let mut le = LeaderElection::new(ReplicaId(0), members(4));
        assert_eq!(new_leaders(&le.next_leader()), vec![(ReplicaId(1), 1)]);
        assert_eq!(new_leaders(&le.next_leader()), vec![(ReplicaId(2), 2)]);
        assert_eq!(new_leaders(&le.next_leader()), vec![(ReplicaId(3), 3)]);
        assert_eq!(new_leaders(&le.next_leader()), vec![(ReplicaId(0), 4)]);
    }

    #[test]
    fn membership_change_affects_future_leaders() {
        let mut le = LeaderElection::new(ReplicaId(0), members(4));
        le.set_members(vec![ReplicaId(0), ReplicaId(5), ReplicaId(6)]);
        assert_eq!(new_leaders(&le.next_leader()), vec![(ReplicaId(5), 1)]);
    }
}
