//! The wire message set of a Hamava deployment.
//!
//! One simulation exchanges a single message enum covering every sub-protocol: the
//! pluggable local total-order broadcast, BRD, leader election, remote leader change,
//! the inter-cluster broadcast of Stage 2, the reconfiguration collection messages,
//! and client traffic. The enum is generic over the TOB's message type so the same
//! replica works for AVA-HOTSTUFF and AVA-BFTSMART.

use crate::brd::{BrdCert, BrdMsg};
use crate::leader_election::ElectionMsg;
use crate::remote_leader::RemoteLeaderMsg;
use ava_consensus::{CommittedBlock, WireSize};
use ava_crypto::{Digest, KeyRegistry, Keypair, Sha256, Signature};
use ava_simnet::SimMessage;
use ava_state::StateSnapshot;
use ava_store::{Checkpoint, StoredEntry};
use ava_types::{
    ClientId, ClusterId, Encode, EncodeSink, Membership, Reconfig, Region, ReplicaId, Round,
    Transaction, TxId,
};
use std::sync::{Arc, OnceLock};

/// Everything a cluster ships to other clusters for one round: its committed blocks
/// (with consensus certificates) and its agreed reconfiguration set (with the BRD
/// delivery certificate). This is the payload of the paper's `Inter` and `Local`
/// messages (Alg. 1).
///
/// Packages travel inside [`AvaMsg::Inter`]/[`AvaMsg::LocalShare`] behind an `Arc`,
/// so an n-recipient fan-out clones a pointer, not the blocks. Construct via
/// [`RoundPackage::new`] and treat the built package as immutable: `wire_size()`
/// memoises its first result (see `DESIGN.md` §4).
#[derive(Clone)]
pub struct RoundPackage {
    /// The originating cluster.
    pub cluster: ClusterId,
    /// The round the package belongs to.
    pub round: Round,
    /// Committed transaction blocks of the round, each with its quorum certificate.
    pub blocks: Vec<CommittedBlock>,
    /// The reconfiguration set agreed for the round.
    pub recs: Vec<Reconfig>,
    /// BRD certificate for `recs` (absent when the parallel reconfiguration workflow
    /// is disabled and reconfigurations travel inside the blocks instead).
    pub recs_cert: Option<BrdCert>,
    /// Memoised approximate wire size.
    wire_size_cache: OnceLock<usize>,
}

impl std::fmt::Debug for RoundPackage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundPackage")
            .field("cluster", &self.cluster)
            .field("round", &self.round)
            .field("blocks", &self.blocks)
            .field("recs", &self.recs)
            .field("recs_cert", &self.recs_cert)
            .finish()
    }
}

impl RoundPackage {
    /// Build a package from its parts.
    pub fn new(
        cluster: ClusterId,
        round: Round,
        blocks: Vec<CommittedBlock>,
        recs: Vec<Reconfig>,
        recs_cert: Option<BrdCert>,
    ) -> Self {
        RoundPackage { cluster, round, blocks, recs, recs_cert, wire_size_cache: OnceLock::new() }
    }

    /// Verify every certificate in the package against the verifier's current
    /// membership view (`membership`) of the originating cluster.
    pub fn verify(&self, registry: &KeyRegistry, membership: &Membership) -> bool {
        let members = membership.member_ids(self.cluster);
        let quorum = membership.quorum(self.cluster);
        if members.is_empty() {
            return false;
        }
        let blocks_ok = self.blocks.iter().all(|b| b.verify(registry, &members, quorum));
        let recs_ok = match &self.recs_cert {
            Some(cert) => cert.verify_delivery(registry, &self.recs, &members, quorum),
            None => self.recs.is_empty(),
        };
        blocks_ok && recs_ok
    }

    /// Verify against the verifier's current membership view, falling back **per
    /// component** to the immediately-previous view (`prev`). Around a
    /// reconfiguration boundary a round's package legitimately mixes epochs:
    /// its head blocks were certified by the outgoing membership (they
    /// committed before the boundary and stranded past the previous round's
    /// cut), while its tail blocks and its BRD delivery certificate are signed
    /// by the new one — so an all-or-nothing check against either single view
    /// rejects a perfectly valid package.
    pub fn verify_either(
        &self,
        registry: &KeyRegistry,
        current: &Membership,
        prev: &Membership,
    ) -> bool {
        let cur_members = current.member_ids(self.cluster);
        let cur_quorum = current.quorum(self.cluster);
        let prev_members = prev.member_ids(self.cluster);
        let prev_quorum = prev.quorum(self.cluster);
        if cur_members.is_empty() && prev_members.is_empty() {
            return false;
        }
        let blocks_ok = self.blocks.iter().all(|b| {
            (!cur_members.is_empty() && b.verify(registry, &cur_members, cur_quorum))
                || (!prev_members.is_empty() && b.verify(registry, &prev_members, prev_quorum))
        });
        let recs_ok = match &self.recs_cert {
            Some(cert) => {
                cert.verify_delivery(registry, &self.recs, &cur_members, cur_quorum)
                    || cert.verify_delivery(registry, &self.recs, &prev_members, prev_quorum)
            }
            None => self.recs.is_empty(),
        };
        blocks_ok && recs_ok
    }

    /// Number of transactions carried by the package.
    pub fn tx_count(&self) -> usize {
        self.blocks.iter().map(|b| b.block.tx_count()).sum()
    }

    /// Digest of the package *content* (cluster, round, block digests,
    /// reconfiguration set) — certificate signatures excluded. Two honest
    /// packages for the same `(cluster, round)` always match content-wise, so a
    /// mismatch between same-slot packages is equivocation evidence. Not
    /// memoised: the only caller is the duplicate-package conflict check, which
    /// honest runs reach only with pointer-equal `Arc`s (no digest computed).
    pub fn content_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.cluster.0.to_le_bytes());
        h.update(&self.round.0.to_le_bytes());
        h.update(&(self.blocks.len() as u64).to_le_bytes());
        for b in &self.blocks {
            h.update(&b.block.digest().0);
        }
        for rec in &self.recs {
            h.update(format!("{rec:?}").as_bytes());
        }
        h.finalize()
    }

    /// Approximate wire size in bytes. Computed once and memoised, so sizing the
    /// same shared package for every recipient of a fan-out is O(1).
    pub fn wire_size(&self) -> usize {
        *self.wire_size_cache.get_or_init(|| {
            self.blocks.iter().map(|b| b.wire_size()).sum::<usize>()
                + self.recs.len() * 64
                + self.recs_cert.as_ref().map(|c| c.wire_size()).unwrap_or(0)
                + 64
        })
    }
}

/// Everything one executed round consumed, across all clusters: the per-cluster
/// certified [`RoundPackage`]s Stage 3 ordered and applied. This is the unit the
/// `ava-store` round log persists (write-ahead, before execution) and the unit the
/// catch-up protocol transfers — a restarted replica re-executes records instead of
/// re-running consensus for missed rounds.
///
/// Packages are `Arc`-shared with the messages they arrived in, so persisting a
/// round or shipping a catch-up suffix costs pointer bumps, not block copies.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// The executed round.
    pub round: Round,
    /// The round's packages, in ascending cluster order (the paper's predefined
    /// execution order).
    pub packages: Vec<Arc<RoundPackage>>,
    /// Memoised approximate wire size.
    wire_size_cache: OnceLock<usize>,
}

impl RoundRecord {
    /// Build a record from the packages of one executed round.
    pub fn new(round: Round, packages: Vec<Arc<RoundPackage>>) -> Self {
        RoundRecord { round, packages, wire_size_cache: OnceLock::new() }
    }

    /// Approximate serialized size in bytes. Computed once and memoised (each
    /// package's size is itself memoised).
    pub fn wire_size(&self) -> usize {
        *self
            .wire_size_cache
            .get_or_init(|| 16 + self.packages.iter().map(|p| p.wire_size()).sum::<usize>())
    }

    /// Verify every package in the record against the verifier's membership view
    /// *as of the record's round*. Total signature count is returned alongside so
    /// the caller can charge verification cost.
    pub fn verify(&self, registry: &KeyRegistry, membership: &Membership) -> (bool, u64) {
        let sigs = self
            .packages
            .iter()
            .flat_map(|p| p.blocks.iter())
            .map(|b| b.cert.signature_count() as u64)
            .sum();
        (self.packages.iter().all(|p| p.verify(registry, membership)), sigs)
    }

    /// Like [`RoundRecord::verify`] but with the per-component previous-view
    /// fallback of [`RoundPackage::verify_either`] — records written at a
    /// reconfiguration boundary carry the same mixed-epoch packages live
    /// verifiers see.
    pub fn verify_either(
        &self,
        registry: &KeyRegistry,
        current: &Membership,
        prev: &Membership,
    ) -> (bool, u64) {
        let sigs = self
            .packages
            .iter()
            .flat_map(|p| p.blocks.iter())
            .map(|b| b.cert.signature_count() as u64)
            .sum();
        (self.packages.iter().all(|p| p.verify_either(registry, current, prev)), sigs)
    }
}

impl StoredEntry for RoundRecord {
    fn round(&self) -> Round {
        self.round
    }

    fn wire_size(&self) -> usize {
        RoundRecord::wire_size(self)
    }
}

/// A broker-certified batch of client operations, submitted into the
/// cluster-local ordering path as one unit.
///
/// The broker signs the digest of `(broker, id, ops)` once; the admitting
/// replica verifies that single signature (memoized by the [`KeyRegistry`], and
/// charged as `CostModel::batch_cost`) instead of paying per-request admission
/// cost — the amortization the broker tier exists for. Batches travel behind an
/// `Arc`, so a retry resend is a pointer bump.
pub struct TxBatch {
    /// The broker actor's node id (the signer).
    pub broker: ReplicaId,
    /// Broker-local batch sequence number; `(broker, id)` identifies the batch
    /// for replica-side duplicate suppression when a retry races the original.
    pub id: u64,
    /// The batched operations, in broker queue order.
    pub ops: Vec<Transaction>,
    /// The broker's signature over [`TxBatch::digest`].
    pub sig: Signature,
    /// Memoised canonical digest.
    digest_cache: OnceLock<Digest>,
    /// Memoised approximate wire size.
    wire_size_cache: OnceLock<usize>,
}

impl std::fmt::Debug for TxBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxBatch")
            .field("broker", &self.broker)
            .field("id", &self.id)
            .field("ops", &self.ops.len())
            .finish()
    }
}

/// Canonical encoding of the signed part of a batch (everything but the
/// signature itself).
struct TxBatchParts<'a>(ReplicaId, u64, &'a [Transaction]);

impl Encode for TxBatchParts<'_> {
    fn encode(&self, out: &mut dyn EncodeSink) {
        self.0.encode(out);
        self.1.encode(out);
        (self.2.len() as u64).encode(out);
        for tx in self.2 {
            tx.encode(out);
        }
    }
}

impl TxBatch {
    /// Build and sign a batch with the broker's keypair.
    pub fn new(broker: ReplicaId, id: u64, ops: Vec<Transaction>, keypair: &Keypair) -> Self {
        let digest = Digest::of(&TxBatchParts(broker, id, &ops));
        let sig = keypair.sign(&digest);
        let batch = TxBatch {
            broker,
            id,
            ops,
            sig,
            digest_cache: OnceLock::new(),
            wire_size_cache: OnceLock::new(),
        };
        let _ = batch.digest_cache.set(digest);
        batch
    }

    /// The canonical digest of the batch contents (memoised).
    pub fn digest(&self) -> Digest {
        *self
            .digest_cache
            .get_or_init(|| Digest::of(&TxBatchParts(self.broker, self.id, &self.ops)))
    }

    /// Verify the broker's signature over the batch contents.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(&self.digest(), &self.sig)
    }

    /// Approximate wire size in bytes (memoised).
    pub fn wire_size(&self) -> usize {
        *self.wire_size_cache.get_or_init(|| {
            96 + self.ops.iter().map(|t| t.payload_size as usize + 48).sum::<usize>()
        })
    }
}

impl Clone for TxBatch {
    fn clone(&self) -> Self {
        TxBatch {
            broker: self.broker,
            id: self.id,
            ops: self.ops.clone(),
            sig: self.sig,
            digest_cache: self.digest_cache.clone(),
            wire_size_cache: self.wire_size_cache.clone(),
        }
    }
}

/// Commands injected by experiments and examples (not part of the protocol: they model
/// an operator or adversary acting on a specific replica).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlCmd {
    /// Ask the replica to request leaving its cluster.
    RequestLeave,
    /// Turn the replica Byzantine in the E4.3 sense: it keeps behaving correctly in
    /// its local cluster but withholds all inter-cluster `Inter` messages.
    MuteInterCluster,
    /// Make the replica silent in its local ordering role when it is the leader
    /// (crash-like leader failure confined to the protocol level).
    SilentLocalLeader,
}

/// Commands injected by experiments targeting a *client* actor (the scenario API's
/// workload events; not part of the protocol).
#[derive(Clone, Debug)]
pub enum ClientCtl {
    /// Replace the client's workload generator spec mid-run (the scenario API's
    /// `WorkloadSwitch` event). The client's transaction sequence counter keeps
    /// running, so ids issued after the switch never collide with earlier ones.
    SwitchWorkload(ava_workload::WorkloadSpec),
}

/// The top-level message enum of a Hamava deployment.
#[derive(Clone, Debug)]
pub enum AvaMsg<TM> {
    /// Local total-order broadcast traffic.
    Tob(TM),
    /// Byzantine Reliable Dissemination traffic (reconfiguration dissemination).
    Brd(BrdMsg),
    /// Leader election complaints.
    Election(ElectionMsg),
    /// Remote leader change traffic.
    RemoteLeader(RemoteLeaderMsg),
    /// Stage 2: leader-to-remote-cluster package (the paper's `Inter`). Arc-shared:
    /// the per-recipient clone of the fan-out is a pointer bump.
    Inter(Arc<RoundPackage>),
    /// Stage 2: local re-broadcast of a remote package (the paper's `Local`).
    LocalShare(Arc<RoundPackage>),
    /// Reconfiguration collection: a replica asks to join (Alg. 3).
    RequestJoin {
        /// The joining replica.
        replica: ReplicaId,
        /// Its region.
        region: Region,
        /// The requester's view of the current round.
        round: Round,
    },
    /// Reconfiguration collection: a replica asks to leave (Alg. 3).
    RequestLeave {
        /// The leaving replica.
        replica: ReplicaId,
        /// The requester's view of the current round.
        round: Round,
    },
    /// Acknowledgement of a join/leave request (Alg. 3 line 18).
    Ack {
        /// The acknowledging replica's cluster members.
        members: Vec<ReplicaId>,
        /// Its current round.
        round: Round,
    },
    /// State transfer to a joining replica (Alg. 10 line 33).
    CurrState {
        /// The sender's full state-machine snapshot (counter or keyed KV,
        /// matching the deployment's configured machine).
        state: StateSnapshot,
        /// The sender's membership views, boxed so this (largest) variant does
        /// not inflate every `AvaMsg` moved through the event queue.
        views: Box<CurrStateViews>,
        /// The round the joining replica should start participating in.
        round: Round,
        /// The sender's current leader timestamp for the cluster.
        leader_ts: u64,
        /// The first local-log height not yet packed into an executed round —
        /// where the joiner must anchor its own block-stream consumption so its
        /// round packages match the cluster's (see `Checkpoint::next_height`).
        next_height: u64,
    },
    /// Catch-up: a restarted (or lagging) replica asks a cluster peer for the
    /// state it missed while down.
    CatchUpRequest {
        /// The recovering replica.
        replica: ReplicaId,
        /// The first round the requester cannot cover from its own durable store
        /// (everything below is already recovered locally).
        from_round: Round,
    },
    /// Catch-up: a peer's state transfer — its latest checkpoint plus the round-log
    /// suffix after it. The requester adopts a checkpoint only once `f + 1`
    /// distinct peers report the same digest, and verifies every suffix package's
    /// certificates before replaying it.
    CatchUpReply {
        /// The sender's latest checkpoint (synthesized from current state when the
        /// sender runs without a store).
        checkpoint: Arc<Checkpoint>,
        /// Round records after the checkpoint, ascending (empty for synthesized
        /// checkpoints, which already cover everything executed).
        suffix: Vec<Arc<RoundRecord>>,
        /// The sender's current (in-progress) round — the round the requester
        /// rejoins at when it adopts this reply.
        round: Round,
        /// The sender's current leader timestamp for the cluster.
        leader_ts: u64,
    },
    /// A client transaction request.
    ClientRequest {
        /// The transaction.
        tx: Transaction,
        /// The issuing client.
        client: ClientId,
    },
    /// The reply to a client transaction.
    ClientResponse {
        /// The completed transaction.
        tx: TxId,
        /// Whether it was a write (went through the three stages).
        is_write: bool,
        /// Bytes of value payload carried back (reads and scans against the
        /// keyed KV machine; zero for writes and for the legacy counter
        /// machine, which keeps counter-run reply sizes byte-identical).
        value_len: u32,
    },
    /// Aggregate workload → broker: one tick's worth of virtual-client
    /// submissions (the collapsed open-loop arrival stream).
    BrokerSubmit {
        /// The submitted operations, in arrival order.
        ops: Vec<Transaction>,
    },
    /// Broker → replica: a certified batch submitted into the cluster-local
    /// ordering path.
    BatchSubmit(Arc<TxBatch>),
    /// Replica → broker: batch admission acknowledgement. Releases the broker's
    /// in-flight slot; read operations are answered inline (reads never enter
    /// the three stages), write acknowledgements follow per-operation via
    /// [`AvaMsg::ClientResponse`] when the ordering round executes.
    BatchReply {
        /// The acknowledged batch's broker-local sequence number.
        batch: u64,
        /// Read operations served locally by the admitting replica.
        reads: Vec<TxId>,
    },
    /// Broker → aggregate workload: completed and shed operations fanned back
    /// to the virtual clients.
    BrokerDeliver {
        /// Completed operations as `(transaction, is_write)`.
        acks: Vec<(TxId, bool)>,
        /// Operations shed under overload (queue full); the aggregate re-queues
        /// them with backoff, preserving the original issue time.
        shed: Vec<Transaction>,
    },
    /// Experiment control command.
    Control(ControlCmd),
    /// Experiment control command addressed to a client actor.
    ClientControl(ClientCtl),
}

/// The membership views shipped in [`AvaMsg::CurrState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurrStateViews {
    /// The sender's full membership map after applying the round's
    /// reconfigurations.
    pub membership: Membership,
    /// The sender's trailing view (one reconfiguration back). The joiner
    /// adopts both so it verifies in-flight packages certified under the
    /// outgoing view exactly like its established peers — without it, a join
    /// racing another cluster's same-round reconfiguration would reject honest
    /// traffic.
    pub prev_membership: Membership,
}

impl<TM: WireSize> SimMessage for AvaMsg<TM>
where
    TM: Clone + Send,
{
    fn size_bytes(&self) -> usize {
        match self {
            AvaMsg::Tob(m) => m.wire_size(),
            AvaMsg::Brd(m) => m.wire_size(),
            AvaMsg::Election(m) => m.wire_size(),
            AvaMsg::RemoteLeader(m) => m.wire_size(),
            AvaMsg::Inter(p) | AvaMsg::LocalShare(p) => p.wire_size(),
            AvaMsg::RequestJoin { .. } | AvaMsg::RequestLeave { .. } => 96,
            AvaMsg::Ack { members, .. } => 64 + members.len() * 8,
            AvaMsg::CurrState { state, views, .. } => {
                128 + state.wire_bytes()
                    + (views.membership.total_replicas() + views.prev_membership.total_replicas())
                        * 12
            }
            AvaMsg::CatchUpRequest { .. } => 72,
            AvaMsg::CatchUpReply { checkpoint, suffix, .. } => {
                80 + checkpoint.wire_size() + suffix.iter().map(|r| r.wire_size()).sum::<usize>()
            }
            AvaMsg::ClientRequest { tx, .. } => tx.payload_size as usize + 64,
            AvaMsg::ClientResponse { value_len, .. } => 64 + *value_len as usize,
            AvaMsg::BrokerSubmit { ops } => {
                32 + ops.iter().map(|t| t.payload_size as usize + 48).sum::<usize>()
            }
            AvaMsg::BatchSubmit(batch) => batch.wire_size(),
            AvaMsg::BatchReply { reads, .. } => 48 + reads.len() * 16,
            AvaMsg::BrokerDeliver { acks, shed } => {
                32 + acks.len() * 24
                    + shed.iter().map(|t| t.payload_size as usize + 48).sum::<usize>()
            }
            AvaMsg::Control(_) | AvaMsg::ClientControl(_) => 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_consensus::Block;
    use ava_crypto::{QuorumCert, SigSet};
    use ava_types::Operation;

    #[test]
    fn round_package_verification_requires_known_cluster() {
        let registry = KeyRegistry::new();
        let pkg = RoundPackage::new(ClusterId(5), Round(1), vec![], vec![], None);
        // Unknown cluster => empty member list => rejected.
        assert!(!pkg.verify(&registry, &Membership::new()));
    }

    #[test]
    fn round_package_counts_and_sizes() {
        let registry = KeyRegistry::new();
        let kp = registry.register(ReplicaId(0));
        let block = Block::new(
            ClusterId(0),
            0,
            ReplicaId(0),
            vec![Operation::Trans(Transaction::write(ClientId(0), 0, 1, 1024))],
        );
        let digest = block.digest();
        let sigs: SigSet = [kp.sign(&digest)].into_iter().collect();
        let pkg = RoundPackage::new(
            ClusterId(0),
            Round(1),
            vec![CommittedBlock {
                block: std::sync::Arc::new(block),
                cert: QuorumCert::new(ClusterId(0), digest, sigs),
            }],
            vec![Reconfig::Leave { replica: ReplicaId(3) }],
            None,
        );
        assert_eq!(pkg.tx_count(), 1);
        assert!(pkg.wire_size() > 1024);
        // The memoised size is stable across calls and across clones.
        assert_eq!(pkg.wire_size(), pkg.clone().wire_size());
    }

    #[test]
    fn content_digest_commits_to_blocks_and_recs_but_not_certs() {
        let registry = KeyRegistry::new();
        let kp = registry.register(ReplicaId(0));
        let block = Block::new(
            ClusterId(0),
            0,
            ReplicaId(0),
            vec![Operation::Trans(Transaction::write(ClientId(0), 0, 1, 256))],
        );
        let digest = block.digest();
        let sigs: SigSet = [kp.sign(&digest)].into_iter().collect();
        let committed = CommittedBlock {
            block: std::sync::Arc::new(block),
            cert: QuorumCert::new(ClusterId(0), digest, sigs),
        };
        let base = RoundPackage::new(ClusterId(0), Round(1), vec![committed.clone()], vec![], None);
        let same = RoundPackage::new(ClusterId(0), Round(1), vec![committed.clone()], vec![], None);
        assert_eq!(base.content_digest(), same.content_digest());
        let tampered_recs = RoundPackage::new(
            ClusterId(0),
            Round(1),
            vec![committed.clone()],
            vec![Reconfig::Leave { replica: ReplicaId(u32::MAX) }],
            None,
        );
        assert_ne!(base.content_digest(), tampered_recs.content_digest());
        let other_round = RoundPackage::new(ClusterId(0), Round(2), vec![committed], vec![], None);
        assert_ne!(base.content_digest(), other_round.content_digest());
    }

    #[test]
    fn tx_batch_signs_and_verifies_once_per_batch() {
        let registry = KeyRegistry::new();
        let broker = ReplicaId(2_000_000);
        let kp = registry.register(broker);
        let ops: Vec<Transaction> =
            (0..10).map(|i| Transaction::write(ClientId(10_000_000), i, i, 128)).collect();
        let batch = TxBatch::new(broker, 7, ops, &kp);
        assert!(batch.verify(&registry));
        // Digest and size are stable across clones (memo survives).
        assert_eq!(batch.digest(), batch.clone().digest());
        assert!(batch.wire_size() > 10 * 128);
        // A batch signed by an unregistered broker is rejected.
        let rogue = KeyRegistry::new().register(ReplicaId(2_000_001));
        let forged = TxBatch::new(ReplicaId(2_000_001), 7, Vec::new(), &rogue);
        assert!(!forged.verify(&registry));
        // Tampering with the contents breaks the signature.
        let mut tampered = batch.clone();
        tampered.ops.pop();
        tampered = TxBatch {
            broker: tampered.broker,
            id: tampered.id,
            ops: tampered.ops,
            sig: batch.sig,
            digest_cache: OnceLock::new(),
            wire_size_cache: OnceLock::new(),
        };
        assert!(!tampered.verify(&registry));
    }

    #[test]
    fn broker_message_sizes_scale_with_payload() {
        let registry = KeyRegistry::new();
        let kp = registry.register(ReplicaId(2_000_000));
        let ops: Vec<Transaction> =
            (0..5).map(|i| Transaction::write(ClientId(10_000_000), i, i, 1024)).collect();
        let m: AvaMsg<ava_hotstuff::HotStuffMsg> =
            AvaMsg::BatchSubmit(Arc::new(TxBatch::new(ReplicaId(2_000_000), 0, ops.clone(), &kp)));
        assert!(m.size_bytes() > 5 * 1024);
        let m: AvaMsg<ava_hotstuff::HotStuffMsg> = AvaMsg::BrokerSubmit { ops };
        assert!(m.size_bytes() > 5 * 1024);
        let m: AvaMsg<ava_hotstuff::HotStuffMsg> =
            AvaMsg::BatchReply { batch: 3, reads: vec![TxId { client: ClientId(1), seq: 0 }] };
        assert!(m.size_bytes() < 128);
    }

    #[test]
    fn message_sizes_are_plausible() {
        let m: AvaMsg<ava_hotstuff::HotStuffMsg> = AvaMsg::ClientRequest {
            tx: Transaction::write(ClientId(0), 0, 9, 1024),
            client: ClientId(0),
        };
        assert!(m.size_bytes() >= 1024);
        let m: AvaMsg<ava_hotstuff::HotStuffMsg> = AvaMsg::Control(ControlCmd::RequestLeave);
        assert!(m.size_bytes() < 100);
    }
}
