//! Byzantine adversary behaviors: a [`CorruptReplica`] decorator that wraps an
//! honest [`Replica`] and mutates its *outbound* traffic according to a
//! [`ByzantineBehavior`].
//!
//! The paper's safety claims are made against exactly these adversaries —
//! equivocating leaders, forged certificates, suppressed shares, lying
//! state-transfer peers — so the suite implements each as a message-level
//! mutation of otherwise-correct protocol execution. Wrapping (rather than
//! forking the replica) keeps the adversary honest about everything it does not
//! explicitly corrupt: timers, local ordering, cost accounting and RNG usage are
//! the wrapped replica's own, which is what lets a `Corrupt` event carrying
//! [`ByzantineBehavior::Honest`] reproduce a plain run byte for byte (the
//! determinism goldens pin this).
//!
//! Design rules the behaviors follow:
//!
//! * **Safety must stay green.** Every mutation is either detectable by the
//!   receiving replica's existing verification (tampered certificates, forged
//!   votes, inconsistent checkpoints) or purely suppressive (withheld shares,
//!   stale replays). None may cause honest replicas to execute divergent state —
//!   the fuzzer's always-on checkers and the `e12_byzantine` sweep assert this.
//! * **No schedule perturbation while dormant.** A wrapped replica with no
//!   behavior (or `Honest`) never touches the context: no sends are drained, no
//!   randomness is drawn, no costs are charged.
//! * **Private randomness.** [`ByzantineBehavior::SuppressShares`] draws from a
//!   decorator-internal LCG, never from the simulation RNG, so activating a
//!   suppression adversary cannot shift any honest actor's random draws.

use crate::messages::{AvaMsg, RoundPackage};
use crate::replica::Replica;
use ava_consensus::{TotalOrderBroadcast, WireSize};
use ava_simnet::{Actor, CapturedSend, Context, SimMessage};
use ava_state::{KvEntry, StateSnapshot};
use ava_store::Checkpoint;
use ava_types::{Reconfig, ReplicaId};
use std::sync::Arc;

/// A Byzantine behavior a corrupted replica exhibits from its corruption time
/// onward. Encodable to/from an opaque `u64` tag (the simulator's
/// `corrupt_at` transport; see [`ByzantineBehavior::to_tag`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ByzantineBehavior {
    /// No deviation: the decorator passes everything through untouched. A
    /// `Corrupt` event carrying this behavior is the equivalence baseline — it
    /// must reproduce a plain run byte for byte.
    Honest,
    /// Equivocate within the local cluster: when re-broadcasting a remote
    /// package as a `LocalShare`, send the genuine package to half the members
    /// and a content-tampered one to the rest. The tampered copy fails
    /// certificate verification (rejected), and members that already accepted
    /// the genuine copy observe the conflict as equivocation evidence.
    EquivocateLocal,
    /// Equivocate across clusters: alternate between the genuine round package
    /// and a tampered one on successive `Inter` fan-outs, so different remote
    /// clusters receive different packages for the same round.
    EquivocateRemote,
    /// Ship a content-tampered (certificate-invalid) package on every `Inter`
    /// and `LocalShare` send.
    InvalidCert,
    /// Replay the newest *previously sent* genuine package instead of the
    /// current one on `Inter` sends. The replay is unmodified — its
    /// certificates verify — but receivers drop it as stale, so the effect is
    /// pure liveness degradation (the remote-leader-change path recovers it).
    /// Deliberately *not* a round-relabel: `BrdCert` round binding is by value,
    /// and relabeling old content into the current round could split execution
    /// across clusters — a genuine safety violation, not an always-green fault.
    StaleCert,
    /// Withhold each `LocalShare` from each destination independently with
    /// probability `permille`/1000, drawn from the decorator's private LCG.
    SuppressShares {
        /// Per-destination suppression probability in permille (0–1000).
        permille: u16,
    },
    /// Serve catch-up requesters a *self-consistent* lie: a checkpoint rebuilt
    /// over tampered state whose digest matches its (tampered) content. It
    /// passes integrity verification, so only the `f + 1` distinct-sender
    /// digest agreement rejects it — exactly the mechanism the recovery
    /// regression test pins.
    LyingCatchUp,
    /// Forge BRD `Echo`/`Ready` votes: keep the original signature but alter
    /// the reconfiguration set it supposedly signs. Receivers' signature
    /// verification fails and emits rejection evidence.
    BrdForgery,
}

impl ByzantineBehavior {
    /// Every behavior, `Honest` first (index 0 ⇒ tag 0).
    pub const ALL: [ByzantineBehavior; 8] = [
        ByzantineBehavior::Honest,
        ByzantineBehavior::EquivocateLocal,
        ByzantineBehavior::EquivocateRemote,
        ByzantineBehavior::InvalidCert,
        ByzantineBehavior::StaleCert,
        ByzantineBehavior::SuppressShares { permille: 500 },
        ByzantineBehavior::LyingCatchUp,
        ByzantineBehavior::BrdForgery,
    ];

    /// Human-readable label used in schedules, reports and the e12 JSON.
    pub fn label(self) -> &'static str {
        match self {
            ByzantineBehavior::Honest => "honest",
            ByzantineBehavior::EquivocateLocal => "equivocate-local",
            ByzantineBehavior::EquivocateRemote => "equivocate-remote",
            ByzantineBehavior::InvalidCert => "invalid-cert",
            ByzantineBehavior::StaleCert => "stale-cert",
            ByzantineBehavior::SuppressShares { .. } => "suppress-shares",
            ByzantineBehavior::LyingCatchUp => "lying-catch-up",
            ByzantineBehavior::BrdForgery => "brd-forgery",
        }
    }

    /// Whether the behavior sends *content-mutated* round packages — the only
    /// behaviors that can legitimately produce `EquivocationObserved` evidence
    /// (the fuzzer's equivocation-exposure checker keys on this).
    pub fn mutates_packages(self) -> bool {
        matches!(
            self,
            ByzantineBehavior::EquivocateLocal
                | ByzantineBehavior::EquivocateRemote
                | ByzantineBehavior::InvalidCert
        )
    }

    /// Encode the behavior as the opaque tag `Simulation::corrupt_at` carries:
    /// the variant index in the low byte, the `SuppressShares` permille in the
    /// next two bytes.
    pub fn to_tag(self) -> u64 {
        match self {
            ByzantineBehavior::Honest => 0,
            ByzantineBehavior::EquivocateLocal => 1,
            ByzantineBehavior::EquivocateRemote => 2,
            ByzantineBehavior::InvalidCert => 3,
            ByzantineBehavior::StaleCert => 4,
            ByzantineBehavior::SuppressShares { permille } => 5 | ((permille as u64) << 8),
            ByzantineBehavior::LyingCatchUp => 6,
            ByzantineBehavior::BrdForgery => 7,
        }
    }

    /// Decode a tag produced by [`ByzantineBehavior::to_tag`]. Unknown variant
    /// indices decode to `Honest` (an unrecognized corruption must not turn
    /// into an arbitrary one).
    pub fn from_tag(tag: u64) -> Self {
        match tag & 0xff {
            1 => ByzantineBehavior::EquivocateLocal,
            2 => ByzantineBehavior::EquivocateRemote,
            3 => ByzantineBehavior::InvalidCert,
            4 => ByzantineBehavior::StaleCert,
            5 => ByzantineBehavior::SuppressShares { permille: ((tag >> 8) & 0xffff) as u16 },
            6 => ByzantineBehavior::LyingCatchUp,
            7 => ByzantineBehavior::BrdForgery,
            _ => ByzantineBehavior::Honest,
        }
    }
}

/// An actor decorating an honest [`Replica`] with a switchable
/// [`ByzantineBehavior`]. Every replica of a deployment is wrapped; until a
/// scheduled corruption delivers a behavior, the wrapper is a transparent
/// pass-through with zero observable effect on the run.
pub struct CorruptReplica<T: TotalOrderBroadcast> {
    inner: Replica<T>,
    behavior: Option<ByzantineBehavior>,
    /// Newest genuine package previously shipped on `Inter` (StaleCert replay
    /// material).
    stale: Option<Arc<RoundPackage>>,
    /// Private LCG state for SuppressShares (never the simulation RNG).
    lcg: u64,
    /// EquivocateRemote alternation: genuine / tampered on successive sends.
    flip: bool,
}

impl<T: TotalOrderBroadcast> CorruptReplica<T> {
    /// Wrap `inner`. The wrapper starts dormant (no behavior).
    pub fn new(inner: Replica<T>) -> Self {
        CorruptReplica {
            inner,
            behavior: None,
            stale: None,
            lcg: 0x5eed_cafe_f00d_d00d,
            flip: false,
        }
    }

    /// One step of a 64-bit LCG (Knuth's MMIX constants); returns a value in
    /// `0..1000`.
    fn draw_permille(&mut self) -> u16 {
        self.lcg = self.lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.lcg >> 33) % 1000) as u16
    }
}

/// A content-tampered copy of `package`: one bogus reconfiguration appended,
/// certificates kept. The BRD delivery certificate (or its absence) no longer
/// matches the set, so every verifying receiver rejects the copy.
fn tamper(package: &RoundPackage) -> RoundPackage {
    let mut recs = package.recs.clone();
    recs.push(Reconfig::Leave { replica: ReplicaId(u32::MAX) });
    RoundPackage::new(
        package.cluster,
        package.round,
        package.blocks.clone(),
        recs,
        package.recs_cert.clone(),
    )
}

/// A self-consistent checkpoint lie: tampered state, digest recomputed over the
/// tampered content. Passes `Checkpoint::verify()`; only `f + 1` digest
/// agreement across distinct senders exposes it.
fn lying_checkpoint(genuine: &Checkpoint) -> Checkpoint {
    let state = match &genuine.state {
        StateSnapshot::Counter(map) => {
            let mut map = map.clone();
            let poisoned = map.get(&u64::MAX).copied().unwrap_or(0) + 1;
            map.insert(u64::MAX, poisoned);
            StateSnapshot::Counter(map)
        }
        StateSnapshot::Kv(map) => {
            let mut map = map.clone();
            let version = map.get(&u64::MAX).map(|e| e.version).unwrap_or(0) + 1;
            map.insert(
                u64::MAX,
                KvEntry { version, last_writer_round: genuine.round.0, value: vec![0xab; 8] },
            );
            StateSnapshot::Kv(map)
        }
    };
    Checkpoint::new(
        genuine.round,
        state,
        genuine.membership.clone(),
        genuine.leader_ts,
        genuine.next_height,
    )
}

impl<T: TotalOrderBroadcast> CorruptReplica<T>
where
    T::Msg: Clone + WireSize,
    AvaMsg<T::Msg>: SimMessage,
{
    /// Intercept the sends the wrapped handler buffered and re-queue them,
    /// mutated per the active behavior. Dormant/honest wrappers return without
    /// touching the context at all.
    fn corrupt_sends(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        let Some(behavior) = self.behavior else {
            return;
        };
        if behavior == ByzantineBehavior::Honest {
            return;
        }
        let sends = ctx.take_sends();
        for CapturedSend { to, msg } in sends {
            match (&behavior, msg) {
                (ByzantineBehavior::EquivocateLocal, AvaMsg::LocalShare(package)) => {
                    let half = to.len().div_ceil(2);
                    let (genuine, lied_to) = to.split_at(half);
                    ctx.broadcast(genuine.to_vec(), AvaMsg::LocalShare(Arc::clone(&package)));
                    ctx.broadcast(lied_to.to_vec(), AvaMsg::LocalShare(Arc::new(tamper(&package))));
                }
                (ByzantineBehavior::EquivocateRemote, AvaMsg::Inter(package)) => {
                    self.flip = !self.flip;
                    let shipped = if self.flip { package } else { Arc::new(tamper(&package)) };
                    ctx.broadcast(to, AvaMsg::Inter(shipped));
                }
                (ByzantineBehavior::InvalidCert, AvaMsg::Inter(package)) => {
                    ctx.broadcast(to, AvaMsg::Inter(Arc::new(tamper(&package))));
                }
                (ByzantineBehavior::InvalidCert, AvaMsg::LocalShare(package)) => {
                    ctx.broadcast(to, AvaMsg::LocalShare(Arc::new(tamper(&package))));
                }
                (ByzantineBehavior::StaleCert, AvaMsg::Inter(package)) => {
                    let shipped = match &self.stale {
                        Some(old) if old.round < package.round => Arc::clone(old),
                        _ => Arc::clone(&package),
                    };
                    if self.stale.as_ref().is_none_or(|old| old.round < package.round) {
                        self.stale = Some(Arc::clone(&package));
                    }
                    ctx.broadcast(to, AvaMsg::Inter(shipped));
                }
                (ByzantineBehavior::SuppressShares { permille }, AvaMsg::LocalShare(package)) => {
                    let permille = *permille;
                    let kept: Vec<ReplicaId> =
                        to.into_iter().filter(|_| self.draw_permille() >= permille).collect();
                    ctx.broadcast(kept, AvaMsg::LocalShare(package));
                }
                (
                    ByzantineBehavior::LyingCatchUp,
                    AvaMsg::CatchUpReply { checkpoint, suffix, round, leader_ts },
                ) => {
                    ctx.broadcast(
                        to,
                        AvaMsg::CatchUpReply {
                            checkpoint: Arc::new(lying_checkpoint(&checkpoint)),
                            suffix,
                            round,
                            leader_ts,
                        },
                    );
                }
                (ByzantineBehavior::BrdForgery, AvaMsg::Brd(msg)) => {
                    let forged = match msg {
                        crate::brd::BrdMsg::Echo { round, mut recs, sig, ts } => {
                            recs.push(Reconfig::Leave { replica: ReplicaId(u32::MAX) });
                            crate::brd::BrdMsg::Echo { round, recs, sig, ts }
                        }
                        crate::brd::BrdMsg::Ready { round, mut recs, sig, ts } => {
                            recs.push(Reconfig::Leave { replica: ReplicaId(u32::MAX) });
                            crate::brd::BrdMsg::Ready { round, recs, sig, ts }
                        }
                        other => other,
                    };
                    ctx.broadcast(to, AvaMsg::Brd(forged));
                }
                (_, msg) => ctx.broadcast(to, msg),
            }
        }
    }
}

impl<T: TotalOrderBroadcast> Actor<AvaMsg<T::Msg>> for CorruptReplica<T>
where
    T::Msg: Clone + WireSize,
    AvaMsg<T::Msg>: SimMessage,
{
    fn on_start(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.inner.on_start(ctx);
        self.corrupt_sends(ctx);
    }

    fn on_message(
        &mut self,
        from: ReplicaId,
        msg: AvaMsg<T::Msg>,
        ctx: &mut Context<'_, AvaMsg<T::Msg>>,
    ) {
        self.inner.on_message(from, msg, ctx);
        self.corrupt_sends(ctx);
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.inner.on_timer(kind, ctx);
        self.corrupt_sends(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, AvaMsg<T::Msg>>) {
        self.inner.on_restart(ctx);
        self.corrupt_sends(ctx);
    }

    /// A scheduled corruption arms (or re-arms) the behavior. The fault is
    /// assigned to the process: it persists across crash/restart.
    fn on_corrupt(&mut self, tag: u64) {
        self.behavior = Some(ByzantineBehavior::from_tag(tag));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_tags_round_trip() {
        for behavior in ByzantineBehavior::ALL {
            assert_eq!(ByzantineBehavior::from_tag(behavior.to_tag()), behavior);
            assert!(!behavior.label().is_empty());
        }
        // SuppressShares carries its permille through the tag.
        let b = ByzantineBehavior::SuppressShares { permille: 837 };
        assert_eq!(ByzantineBehavior::from_tag(b.to_tag()), b);
        // Unknown variant indices decode to Honest, never to an arbitrary fault.
        assert_eq!(ByzantineBehavior::from_tag(0xfe), ByzantineBehavior::Honest);
    }

    #[test]
    fn only_package_mutating_behaviors_report_as_such() {
        let mutating: Vec<ByzantineBehavior> =
            ByzantineBehavior::ALL.into_iter().filter(|b| b.mutates_packages()).collect();
        assert_eq!(
            mutating,
            vec![
                ByzantineBehavior::EquivocateLocal,
                ByzantineBehavior::EquivocateRemote,
                ByzantineBehavior::InvalidCert,
            ]
        );
    }

    #[test]
    fn tampered_packages_change_content_but_keep_slot() {
        let package =
            RoundPackage::new(ava_types::ClusterId(1), ava_types::Round(4), vec![], vec![], None);
        let tampered = tamper(&package);
        assert_eq!(tampered.cluster, package.cluster);
        assert_eq!(tampered.round, package.round);
        assert_ne!(tampered.content_digest(), package.content_digest());
        // A certificate-less package with a nonempty rec set never verifies.
        assert!(!tampered.verify(&ava_crypto::KeyRegistry::new(), &ava_types::Membership::new()));
    }

    #[test]
    fn lying_checkpoints_are_self_consistent_but_digest_distinct() {
        let genuine = Checkpoint::new(
            ava_types::Round(6),
            StateSnapshot::Counter(std::collections::BTreeMap::from([(1, 2), (3, 4)])),
            ava_types::Membership::new(),
            9,
            18,
        );
        let lie = lying_checkpoint(&genuine);
        assert!(lie.verify(), "the lie must pass single-checkpoint integrity verification");
        assert_eq!(lie.round, genuine.round);
        assert_ne!(lie.digest, genuine.digest, "f+1 digest agreement is what rejects it");
    }

    #[test]
    fn lying_checkpoints_poison_kv_snapshots_too() {
        let mut machine = ava_state::machine_for(ava_state::StateMachineKind::Kv);
        let tx = ava_types::Transaction::write(ava_types::ClientId(0), 0, 5, 128);
        machine.apply(ava_types::Round(3), &tx);
        let genuine = Checkpoint::new(
            ava_types::Round(6),
            machine.snapshot(),
            ava_types::Membership::new(),
            9,
            18,
        );
        let lie = lying_checkpoint(&genuine);
        assert!(lie.verify(), "the KV lie must also pass integrity verification");
        assert_ne!(lie.digest, genuine.digest);
    }
}
