//! Deployment harness: builds a complete simulated Hamava deployment (replicas,
//! clients, key registry, latency model) from a [`SystemConfig`], for use by the
//! examples, the integration tests and the benchmark harness.

use crate::byzantine::{ByzantineBehavior, CorruptReplica};
use crate::client::{Client, ClientConfig};
use crate::messages::{AvaMsg, ClientCtl, ControlCmd};
use crate::replica::{Replica, ReplicaConfig};
use ava_consensus::{TobConfig, TotalOrderBroadcast, WireSize};
use ava_crypto::{KeyRegistry, Keypair};
use ava_simnet::{client_node_id, CostModel, LatencyModel, NetStats, SimMessage, Simulation};
use ava_state::StateMachineKind;
use ava_store::StoreConfig;
use ava_types::{ClientId, ClusterId, Duration, Output, Region, ReplicaId, SystemConfig, Time};
use ava_workload::{ClientWorkload, WorkloadSpec};

/// Options controlling a simulated deployment.
#[derive(Clone, Debug)]
pub struct DeploymentOptions {
    /// RNG seed (runs with the same seed are identical).
    pub seed: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Per-node CPU cost model.
    pub costs: CostModel,
    /// Client workload.
    pub workload: WorkloadSpec,
    /// Clients per cluster (the paper deploys one per cluster).
    pub clients_per_cluster: usize,
    /// Outstanding requests per client ("client threads").
    pub client_concurrency: usize,
    /// Durable-store configuration for every replica. `None` (the default) runs
    /// without persistence — behavior is bit-identical to pre-store builds (the
    /// determinism golden tests pin this); `Some` enables the round log +
    /// checkpoints that crash→restart recovery (`restart_at`) catches up from.
    pub store: Option<StoreConfig>,
    /// The deterministic state machine every replica executes against. The
    /// default counter machine is bit-identical to pre-`ava-state` builds (the
    /// determinism goldens pin this); [`StateMachineKind::Kv`] stores real
    /// versioned values, serves value-bearing reads/scans and emits per-round
    /// `Output::StateDigest` events.
    pub state_machine: StateMachineKind,
}

impl Default for DeploymentOptions {
    fn default() -> Self {
        DeploymentOptions {
            seed: 42,
            latency: LatencyModel::paper_table2(),
            costs: CostModel::cloud_vm(),
            workload: WorkloadSpec::default(),
            clients_per_cluster: 1,
            client_concurrency: 128,
            store: None,
            state_machine: StateMachineKind::default(),
        }
    }
}

/// Factory building a TOB instance for one replica.
///
/// The factory is `Send` (captures only thread-safe state) so a whole
/// [`Deployment`] — which keeps the factory around for join churn — can move to a
/// worker thread of the parallel run executor.
pub type TobFactory<T> = Box<dyn Fn(TobConfig, Keypair, KeyRegistry, ReplicaId) -> T + Send>;

/// A fully built simulated deployment.
pub struct Deployment<T: TotalOrderBroadcast + 'static> {
    /// The underlying simulator. Exposed so experiments can inject faults directly.
    pub sim: Simulation<AvaMsg<T::Msg>>,
    /// The system configuration the deployment was built from.
    pub config: SystemConfig,
    /// The shared key registry.
    pub registry: KeyRegistry,
    opts: DeploymentOptions,
    factory: TobFactory<T>,
    next_replica_id: u32,
    next_client_id: u32,
    clients: Vec<(ClientId, ClusterId)>,
}

impl<T> Deployment<T>
where
    T: TotalOrderBroadcast + 'static,
    T::Msg: Clone + WireSize + 'static,
    AvaMsg<T::Msg>: SimMessage,
{
    /// Build a deployment: one replica actor per configured replica, plus
    /// `clients_per_cluster` clients per cluster.
    pub fn build(config: SystemConfig, opts: DeploymentOptions, factory: TobFactory<T>) -> Self {
        let registry = KeyRegistry::new();
        let mut sim = Simulation::new(opts.seed, opts.latency.clone(), opts.costs);
        let membership = config.membership();

        for spec in &config.clusters {
            let members: Vec<ReplicaId> = spec.replicas.iter().map(|(id, _)| *id).collect();
            let leader = members[0];
            for &(id, region) in &spec.replicas {
                let keypair = registry.register(id);
                let mut tob_cfg = TobConfig::new(spec.id, id, members.clone());
                tob_cfg.max_block_size = config.params.batch_size;
                tob_cfg.timeout = config.params.local_timeout;
                let tob = factory(tob_cfg, keypair.clone(), registry.clone(), leader);
                let mut rcfg =
                    ReplicaConfig::new(id, region, spec.id, config.params, membership.clone());
                rcfg.store = opts.store;
                rcfg.machine = opts.state_machine;
                let replica = Replica::new(rcfg, keypair, registry.clone(), tob);
                // Every replica is wrapped in the (dormant) Byzantine decorator
                // so a scheduled `corrupt_at` can arm any of them mid-run; while
                // dormant the wrapper is a byte-exact pass-through.
                sim.add_node(id, region, spec.id.0, Box::new(CorruptReplica::new(replica)));
            }
        }

        let mut deployment = Deployment {
            sim,
            registry,
            opts,
            factory,
            next_replica_id: config.max_replica_id() + 1,
            next_client_id: 0,
            clients: Vec::new(),
            config,
        };
        for cluster in deployment.config.clusters.clone() {
            for _ in 0..deployment.opts.clients_per_cluster {
                deployment.add_client(cluster.id);
            }
        }
        deployment
    }

    /// Add one closed-loop client to `cluster`. Returns its id.
    pub fn add_client(&mut self, cluster: ClusterId) -> ClientId {
        self.add_client_with_workload(cluster, self.opts.workload.clone())
    }

    /// Add a client with a specific workload (e.g. write-only for E5.2).
    pub fn add_client_with_workload(
        &mut self,
        cluster: ClusterId,
        workload: WorkloadSpec,
    ) -> ClientId {
        let id = ClientId(self.next_client_id);
        self.next_client_id += 1;
        let spec = self.config.clusters.iter().find(|c| c.id == cluster).expect("unknown cluster");
        let targets: Vec<ReplicaId> = spec.replicas.iter().map(|(r, _)| *r).collect();
        let region = spec.replicas.first().map(|(_, reg)| *reg).unwrap_or_default();
        let mut ccfg = ClientConfig::new(id, cluster, targets);
        ccfg.concurrency = self.opts.client_concurrency;
        let client: Client<T::Msg> = Client::new(ccfg, ClientWorkload::new(workload, id));
        self.sim.add_node(client_node_id(id), region, cluster.0, Box::new(client));
        self.clients.push((id, cluster));
        id
    }

    /// The clients added so far, with the cluster each one targets.
    pub fn clients(&self) -> &[(ClientId, ClusterId)] {
        &self.clients
    }

    /// Switch the workload of every client of `cluster` to `workload`, effective at
    /// the current virtual time (the scenario API's `WorkloadSwitch` event).
    pub fn switch_workload(&mut self, cluster: ClusterId, workload: WorkloadSpec) {
        let at = self.sim.now();
        let targets: Vec<ClientId> =
            self.clients.iter().filter(|(_, c)| *c == cluster).map(|(id, _)| *id).collect();
        for client in targets {
            let node = client_node_id(client);
            self.sim.external_send(
                node,
                node,
                AvaMsg::ClientControl(ClientCtl::SwitchWorkload(workload.clone())),
                at,
            );
        }
    }

    /// Add a new replica that will request to join `cluster` (E5-style churn).
    /// Returns its id.
    pub fn add_joining_replica(&mut self, cluster: ClusterId, region: Region) -> ReplicaId {
        let id = ReplicaId(self.next_replica_id);
        self.next_replica_id += 1;
        let keypair = self.registry.register(id);
        let membership = self.config.membership();
        let members = membership.member_ids(cluster);
        let leader = members.first().copied().unwrap_or(id);
        let mut tob_cfg = TobConfig::new(cluster, id, members);
        tob_cfg.max_block_size = self.config.params.batch_size;
        tob_cfg.timeout = self.config.params.local_timeout;
        let tob = (self.factory)(tob_cfg, keypair.clone(), self.registry.clone(), leader);
        let mut rcfg = ReplicaConfig::new(id, region, cluster, self.config.params, membership);
        rcfg.joining = true;
        rcfg.store = self.opts.store;
        rcfg.machine = self.opts.state_machine;
        let replica = Replica::new(rcfg, keypair, self.registry.clone(), tob);
        self.sim.add_node(id, region, cluster.0, Box::new(CorruptReplica::new(replica)));
        id
    }

    /// Ask `replica` to request leaving its cluster.
    pub fn request_leave(&mut self, replica: ReplicaId) {
        let at = self.sim.now();
        self.sim.external_send(replica, replica, AvaMsg::Control(ControlCmd::RequestLeave), at);
    }

    /// Turn `replica` Byzantine in the E4.3 sense (withholds inter-cluster messages).
    pub fn mute_inter_cluster(&mut self, replica: ReplicaId) {
        let at = self.sim.now();
        self.sim.external_send(replica, replica, AvaMsg::Control(ControlCmd::MuteInterCluster), at);
    }

    /// Make `replica` stop proposing when it is the local leader (E4.2-style leader
    /// failure confined to the protocol).
    pub fn silence_local_leader(&mut self, replica: ReplicaId) {
        let at = self.sim.now();
        self.sim.external_send(
            replica,
            replica,
            AvaMsg::Control(ControlCmd::SilentLocalLeader),
            at,
        );
    }

    /// Crash `replica` at `at`.
    pub fn crash_at(&mut self, replica: ReplicaId, at: Time) {
        self.sim.crash_at(replica, at);
    }

    /// Turn `replica` Byzantine at `at`: from the first event processed at or
    /// after `at`, its outbound traffic is mutated per `behavior` (see
    /// [`ByzantineBehavior`]). Corruption persists across crash/restart — the
    /// Byzantine fault model assigns faults to processes, not uptime intervals.
    pub fn corrupt_at(&mut self, replica: ReplicaId, at: Time, behavior: ByzantineBehavior) {
        self.sim.corrupt_at(replica, at, behavior.to_tag());
    }

    /// Restart a crashed `replica` at `at`: it comes back with only its persisted
    /// store (see [`DeploymentOptions::store`]) and catches up from its peers via
    /// the checkpoint + log-suffix state transfer. Restarting a replica that is
    /// not crashed at `at` is a no-op.
    pub fn restart_at(&mut self, replica: ReplicaId, at: Time) {
        self.sim.restart_at(replica, at);
    }

    /// Partition clusters `a` and `b` from each other, starting now: all
    /// inter-cluster traffic between them is dropped until [`Deployment::heal`].
    /// Clients share their cluster's side of the partition.
    pub fn partition(&mut self, a: ClusterId, b: ClusterId) {
        self.sim.partition_groups(a.0, b.0);
    }

    /// Heal a partition previously installed with [`Deployment::partition`].
    pub fn heal(&mut self, a: ClusterId, b: ClusterId) {
        self.sim.heal_groups(a.0, b.0);
    }

    /// Replace the network latency model, effective for every message sent from now
    /// on (the scenario API's `LatencyShift` event).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.sim.set_latency_model(latency);
    }

    /// The initial leader of `cluster` (its first member).
    pub fn initial_leader(&self, cluster: ClusterId) -> ReplicaId {
        self.config
            .clusters
            .iter()
            .find(|c| c.id == cluster)
            .and_then(|c| c.replicas.first().map(|(id, _)| *id))
            .expect("unknown cluster")
    }

    /// Run the simulation for `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Run until virtual time `t`.
    pub fn run_until(&mut self, t: Time) {
        self.sim.run_until(t);
    }

    /// The options this deployment was built with (seed, workload, costs).
    pub fn options(&self) -> &DeploymentOptions {
        &self.opts
    }

    /// Measurement events collected so far.
    pub fn outputs(&self) -> &[Output] {
        self.sim.outputs()
    }

    /// Take ownership of the measurement events collected so far.
    pub fn take_outputs(&mut self) -> Vec<Output> {
        self.sim.take_outputs()
    }

    /// Network statistics of the run so far.
    pub fn net_stats(&self) -> &NetStats {
        self.sim.stats()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }
}

/// The [`TobFactory`] instantiating Hamava with the HotStuff TOB (AVA-HOTSTUFF).
pub fn hotstuff_factory() -> TobFactory<ava_hotstuff::HotStuff> {
    Box::new(|cfg, keypair, registry, leader| {
        ava_hotstuff::HotStuff::new(cfg, keypair, registry, leader)
    })
}

/// The [`TobFactory`] instantiating Hamava with the BFT-SMaRt TOB (AVA-BFTSMART).
pub fn bftsmart_factory() -> TobFactory<ava_bftsmart::BftSmart> {
    Box::new(|cfg, keypair, registry, leader| {
        ava_bftsmart::BftSmart::new(cfg, keypair, registry, leader)
    })
}
