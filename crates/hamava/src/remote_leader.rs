//! Heterogeneous remote leader change (Alg. 2 of the paper).
//!
//! When a cluster does not receive the operations of a remote cluster in a round —
//! because the remote leader is Byzantine and withholds its `Inter` messages — the
//! local replicas complain locally, aggregate a quorum of complaint signatures, and a
//! sender set of `f_i + 1` replicas forwards the complaint to `f_j + 1` replicas of
//! the remote cluster, which then changes its leader. Complaint numbers (`cn_j`,
//! `rcn_j`) stop replay attacks, and all quorum sizes are taken from the *current*
//! per-cluster membership — this is where heterogeneity matters for liveness.

use ava_crypto::{Digest, KeyRegistry, Keypair, SigSet, Signature};
use ava_types::{ClusterId, Duration, Encode, Membership, ReplicaId, Round, Time};
use std::collections::BTreeMap;

/// Digest signed by a local complaint about remote cluster `about`.
fn lcomplaint_digest(about: ClusterId, cn: u64, round: Round) -> Digest {
    let mut bytes = b"lcomplaint".to_vec();
    about.encode(&mut bytes);
    cn.encode(&mut bytes);
    round.encode(&mut bytes);
    Digest::of_bytes(&bytes)
}

/// Wire messages of the remote leader change protocol.
#[derive(Clone, Debug)]
pub enum RemoteLeaderMsg {
    /// Local complaint about a remote cluster, broadcast within the complaining
    /// cluster (Alg. 2 line 8).
    LComplaint {
        /// The remote cluster being complained about.
        about: ClusterId,
        /// The complaint number `cn_about`.
        cn: u64,
        /// The round.
        round: Round,
        /// Signature over the complaint digest.
        sig: Signature,
    },
    /// Remote complaint carried to the complained-about cluster by the sender set
    /// (Alg. 2 line 18).
    RComplaint {
        /// The complaining cluster.
        from_cluster: ClusterId,
        /// The complaint number.
        cn: u64,
        /// The round.
        round: Round,
        /// `2·f+1` local complaint signatures from the complaining cluster.
        sigs: SigSet,
    },
    /// The remote complaint re-broadcast inside the complained-about cluster
    /// (Alg. 2 line 22, the paper's `Complaint`).
    Complaint {
        /// The complaining cluster.
        from_cluster: ClusterId,
        /// The complaint number.
        cn: u64,
        /// The round.
        round: Round,
        /// The complaint signatures.
        sigs: SigSet,
    },
}

impl RemoteLeaderMsg {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            RemoteLeaderMsg::LComplaint { .. } => 120,
            RemoteLeaderMsg::RComplaint { sigs, .. } | RemoteLeaderMsg::Complaint { sigs, .. } => {
                96 + sigs.len() * 48
            }
        }
    }
}

/// Side effects requested by the remote leader change state machine.
#[derive(Clone, Debug)]
pub enum RemoteLeaderAction {
    /// Send a message to a replica (local or remote).
    Send {
        /// Destination.
        to: ReplicaId,
        /// Message.
        msg: RemoteLeaderMsg,
    },
    /// Ask the local leader election module to move to the next leader (Alg. 2
    /// line 26).
    RequestNextLeader,
    /// Charge CPU time for signature work.
    Consume(Duration),
}

/// Per-remote-cluster complaint state.
#[derive(Debug, Default)]
struct ClusterWatch {
    deadline: Option<Time>,
    received: bool,
    cn: u64,
    rcn: u64,
    complaint_sigs: SigSet,
    complained: bool,
    /// Whether this replica already forwarded an RComplaint for the current cn.
    forwarded: bool,
}

/// Remote leader change state machine for one replica.
pub struct RemoteLeaderChange {
    me: ReplicaId,
    my_cluster: ClusterId,
    membership: Membership,
    keypair: Keypair,
    registry: KeyRegistry,
    round: Round,
    timeout: Duration,
    grace: Duration,
    verify_cost: Duration,
    watches: BTreeMap<ClusterId, ClusterWatch>,
    last_local_leader_change: Option<Time>,
}

impl RemoteLeaderChange {
    /// Create an instance for `me` in `my_cluster`.
    pub fn new(
        me: ReplicaId,
        my_cluster: ClusterId,
        membership: Membership,
        keypair: Keypair,
        registry: KeyRegistry,
        timeout: Duration,
        grace: Duration,
    ) -> Self {
        RemoteLeaderChange {
            me,
            my_cluster,
            membership,
            keypair,
            registry,
            round: Round(0),
            timeout,
            grace,
            verify_cost: Duration::from_micros(40),
            watches: BTreeMap::new(),
            last_local_leader_change: None,
        }
    }

    /// Begin a round: reset timers and complaint state for every remote cluster
    /// (Alg. 10 lines 16–19 reset `timer_j`, `cn_j`, `rcn_j`).
    pub fn start_round(&mut self, round: Round, now: Time) {
        self.round = round;
        self.watches.clear();
        for cluster in self.membership.cluster_ids() {
            if cluster != self.my_cluster {
                self.watches.insert(
                    cluster,
                    ClusterWatch { deadline: Some(now + self.timeout), ..Default::default() },
                );
            }
        }
    }

    /// Update the membership map (after reconfigurations execute).
    pub fn set_membership(&mut self, membership: Membership) {
        self.membership = membership;
    }

    /// Note that the local cluster just changed its leader (the ε grace period of
    /// Alg. 2 line 25 starts now).
    pub fn note_local_leader_change(&mut self, now: Time) {
        self.last_local_leader_change = Some(now);
    }

    /// The operations of remote cluster `j` arrived: stop its timer (Alg. 1 line 19).
    pub fn mark_received(&mut self, cluster: ClusterId) {
        if let Some(watch) = self.watches.get_mut(&cluster) {
            watch.received = true;
            watch.deadline = None;
        }
    }

    /// Periodic tick: emit local complaints for remote clusters whose timer expired.
    pub fn on_tick(&mut self, now: Time) -> Vec<RemoteLeaderAction> {
        let mut out = Vec::new();
        let clusters: Vec<ClusterId> = self.watches.keys().copied().collect();
        for cluster in clusters {
            let (expired, cn) = {
                let watch = self.watches.get(&cluster).expect("watch exists");
                let expired = !watch.received
                    && !watch.complained
                    && watch.deadline.is_some_and(|d| now >= d);
                (expired, watch.cn)
            };
            if expired {
                self.watches.get_mut(&cluster).expect("watch exists").complained = true;
                self.broadcast_lcomplaint(cluster, cn, &mut out);
            }
        }
        out
    }

    fn broadcast_lcomplaint(&self, about: ClusterId, cn: u64, out: &mut Vec<RemoteLeaderAction>) {
        let sig = self.keypair.sign(&lcomplaint_digest(about, cn, self.round));
        let msg = RemoteLeaderMsg::LComplaint { about, cn, round: self.round, sig };
        for member in self.membership.member_ids(self.my_cluster) {
            out.push(RemoteLeaderAction::Send { to: member, msg: msg.clone() });
        }
    }

    /// Handle a protocol message.
    pub fn on_message(
        &mut self,
        from: ReplicaId,
        msg: RemoteLeaderMsg,
        now: Time,
    ) -> Vec<RemoteLeaderAction> {
        let mut out = Vec::new();
        match msg {
            RemoteLeaderMsg::LComplaint { about, cn, round, sig } => {
                self.handle_lcomplaint(from, about, cn, round, sig, now, &mut out);
            }
            RemoteLeaderMsg::RComplaint { from_cluster, cn, round, sigs } => {
                self.handle_rcomplaint(from_cluster, cn, round, sigs, &mut out);
            }
            RemoteLeaderMsg::Complaint { from_cluster, cn, round, sigs } => {
                self.handle_complaint(from_cluster, cn, round, sigs, now, &mut out);
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_lcomplaint(
        &mut self,
        from: ReplicaId,
        about: ClusterId,
        cn: u64,
        round: Round,
        sig: Signature,
        now: Time,
        out: &mut Vec<RemoteLeaderAction>,
    ) {
        if round != self.round || !self.membership.contains(self.my_cluster, from) {
            return;
        }
        out.push(RemoteLeaderAction::Consume(self.verify_cost));
        if sig.signer != from || !self.registry.verify(&lcomplaint_digest(about, cn, round), &sig) {
            return;
        }
        let fi = self.membership.f(self.my_cluster);
        let my_members = self.membership.member_ids(self.my_cluster);
        let fj = self.membership.f(about);
        let remote_targets = self.membership.first_k(about, fj + 1);
        let Some(watch) = self.watches.get_mut(&about) else {
            return;
        };
        // Alg. 2 line 10: only count complaints with the expected number, and only
        // while the remote operations are still missing.
        if cn != watch.cn || watch.received {
            return;
        }
        watch.complaint_sigs.insert(sig);
        let count = watch.complaint_sigs.len();
        // Amplification (line 12): f_i + 1 complaints make this replica complain too.
        if count >= fi + 1 && !watch.complained {
            watch.complained = true;
            let my_cn = watch.cn;
            let _ = watch;
            // Re-borrow after the broadcast (broadcast_lcomplaint needs &self only).
            self.broadcast_lcomplaint(about, my_cn, out);
            let watch = self.watches.get_mut(&about).expect("watch exists");
            let my_sig = self.keypair.sign(&lcomplaint_digest(about, my_cn, self.round));
            watch.complaint_sigs.insert(my_sig);
            self.accept_if_quorum(about, fi, &my_members, &remote_targets, now, out);
            return;
        }
        self.accept_if_quorum(about, fi, &my_members, &remote_targets, now, out);
    }

    fn accept_if_quorum(
        &mut self,
        about: ClusterId,
        fi: usize,
        my_members: &[ReplicaId],
        remote_targets: &[ReplicaId],
        now: Time,
        out: &mut Vec<RemoteLeaderAction>,
    ) {
        let Some(watch) = self.watches.get_mut(&about) else { return };
        // Alg. 2 line 15: a quorum of complaint signatures accepts the complaint.
        if watch.complaint_sigs.len() < 2 * fi + 1 || watch.forwarded {
            return;
        }
        watch.forwarded = true;
        // The first f_i + 1 replicas of the local cluster are the sender set.
        let sender_set: Vec<ReplicaId> = my_members.iter().take(fi + 1).copied().collect();
        if sender_set.contains(&self.me) {
            let msg = RemoteLeaderMsg::RComplaint {
                from_cluster: self.my_cluster,
                cn: watch.cn,
                round: self.round,
                sigs: watch.complaint_sigs.clone(),
            };
            for &target in remote_targets {
                out.push(RemoteLeaderAction::Send { to: target, msg: msg.clone() });
            }
        }
        // Lines 19–20: bump the complaint number and reset for the next complaint.
        watch.cn += 1;
        watch.complaint_sigs = SigSet::new();
        watch.complained = false;
        watch.deadline = Some(now + self.timeout);
        watch.forwarded = false;
    }

    fn handle_rcomplaint(
        &mut self,
        from_cluster: ClusterId,
        cn: u64,
        round: Round,
        sigs: SigSet,
        out: &mut Vec<RemoteLeaderAction>,
    ) {
        // Clusters can be at most one round apart (the complaining cluster is stuck in
        // the round whose operations it never received), so accept complaints for the
        // current round and the immediately preceding one.
        if !(round == self.round || round.next() == self.round) || from_cluster == self.my_cluster {
            return;
        }
        out.push(RemoteLeaderAction::Consume(self.verify_cost.saturating_mul(sigs.len() as u64)));
        if !self.verify_remote_complaint(from_cluster, cn, round, &sigs) {
            return;
        }
        // Accept the expected complaint number *or newer*: when a forward is lost
        // (partition, drop rule), the complaining cluster re-complains with a
        // bumped cn, and pinning to equality would desynchronize the two clusters'
        // counters forever. Older numbers stay rejected (replay protection).
        let expected = self.watches.entry(from_cluster).or_default().rcn;
        if cn < expected {
            return;
        }
        // Alg. 2 line 22: re-broadcast inside the local cluster.
        let msg = RemoteLeaderMsg::Complaint { from_cluster, cn, round, sigs };
        for member in self.membership.member_ids(self.my_cluster) {
            out.push(RemoteLeaderAction::Send { to: member, msg: msg.clone() });
        }
    }

    fn handle_complaint(
        &mut self,
        from_cluster: ClusterId,
        cn: u64,
        round: Round,
        sigs: SigSet,
        now: Time,
        out: &mut Vec<RemoteLeaderAction>,
    ) {
        if !(round == self.round || round.next() == self.round) || from_cluster == self.my_cluster {
            return;
        }
        out.push(RemoteLeaderAction::Consume(self.verify_cost.saturating_mul(sigs.len() as u64)));
        if !self.verify_remote_complaint(from_cluster, cn, round, &sigs) {
            return;
        }
        let watch = self.watches.entry(from_cluster).or_default();
        // Alg. 2 line 24: accept each complaint number at most once (replay
        // protection), but tolerate skipped numbers — lost forwards advance the
        // complaining cluster's cn without this side ever seeing the old one.
        if cn < watch.rcn {
            return;
        }
        watch.rcn = cn + 1;
        // Line 25: skip the change if the local leader was changed very recently so
        // that simultaneous complaints from several clusters only change it once.
        let recently_changed =
            self.last_local_leader_change.is_some_and(|t| now.since(t) < self.grace);
        if !recently_changed {
            out.push(RemoteLeaderAction::RequestNextLeader);
        }
    }

    /// A remote complaint is valid if it carries a quorum (of the *complaining*
    /// cluster) of signatures over the local complaint digest that names this
    /// replica's cluster, for the round the complaint was raised in.
    fn verify_remote_complaint(
        &self,
        from_cluster: ClusterId,
        cn: u64,
        round: Round,
        sigs: &SigSet,
    ) -> bool {
        let members = self.membership.member_ids(from_cluster);
        let quorum = self.membership.quorum(from_cluster);
        let digest = lcomplaint_digest(self.my_cluster, cn, round);
        sigs.count_valid(&self.registry, &digest, &members) >= quorum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ava_types::{Region, ReplicaInfo};
    use std::collections::VecDeque;

    /// Two heterogeneous clusters as in Fig. 1: C0 with 4 replicas (p0..p3) and C1
    /// with 7 replicas (p10..p16).
    fn membership() -> Membership {
        let mut m = Membership::new();
        for i in 0..4 {
            m.add(ClusterId(0), ReplicaInfo { id: ReplicaId(i), region: Region::UsWest });
        }
        for i in 10..17 {
            m.add(ClusterId(1), ReplicaInfo { id: ReplicaId(i), region: Region::Europe });
        }
        m
    }

    struct Net {
        nodes: BTreeMap<ReplicaId, RemoteLeaderChange>,
        queue: VecDeque<(ReplicaId, ReplicaId, RemoteLeaderMsg)>,
        next_leader_requests: BTreeMap<ReplicaId, usize>,
        now: Time,
    }

    fn make_net() -> (Net, KeyRegistry) {
        let registry = KeyRegistry::new();
        let m = membership();
        let mut nodes = BTreeMap::new();
        for (cluster, info) in m.iter() {
            let kp = registry.register(info.id);
            let mut rlc = RemoteLeaderChange::new(
                info.id,
                cluster,
                m.clone(),
                kp,
                registry.clone(),
                Duration::from_secs(20),
                Duration::from_millis(500),
            );
            rlc.start_round(Round(1), Time::ZERO);
            nodes.insert(info.id, rlc);
        }
        let next_leader_requests = nodes.keys().map(|&id| (id, 0)).collect();
        (Net { nodes, queue: VecDeque::new(), next_leader_requests, now: Time::ZERO }, registry)
    }

    impl Net {
        fn apply(&mut self, at: ReplicaId, actions: Vec<RemoteLeaderAction>) {
            for a in actions {
                match a {
                    RemoteLeaderAction::Send { to, msg } => self.queue.push_back((at, to, msg)),
                    RemoteLeaderAction::RequestNextLeader => {
                        *self.next_leader_requests.get_mut(&at).unwrap() += 1
                    }
                    RemoteLeaderAction::Consume(_) => {}
                }
            }
        }

        fn tick_all(&mut self, at: Time) {
            self.now = at;
            let ids: Vec<ReplicaId> = self.nodes.keys().copied().collect();
            for id in ids {
                let actions = self.nodes.get_mut(&id).unwrap().on_tick(at);
                self.apply(id, actions);
            }
        }

        fn run(&mut self, max: usize) {
            for _ in 0..max {
                let Some((from, to, msg)) = self.queue.pop_front() else { return };
                let now = self.now;
                let actions = self.nodes.get_mut(&to).unwrap().on_message(from, msg, now);
                self.apply(to, actions);
            }
            panic!("remote leader change network did not quiesce");
        }
    }

    #[test]
    fn missing_remote_operations_trigger_remote_leader_change() {
        // Cluster 1 (7 replicas) never receives cluster 0's operations. Its replicas
        // complain locally, forward the complaint to cluster 0, and cluster 0's
        // replicas request a local leader change.
        let (mut net, _) = make_net();
        // Cluster 0 received cluster 1's operations (so it stays quiet).
        for i in 0..4 {
            net.nodes.get_mut(&ReplicaId(i)).unwrap().mark_received(ClusterId(1));
        }
        net.tick_all(Time::from_secs(21));
        net.run(100_000);
        let requests: usize = (0..4).map(|i| net.next_leader_requests[&ReplicaId(i)]).sum();
        assert!(requests >= 3, "correct replicas of cluster 0 should request a new leader");
        // Cluster 1's replicas must not have asked their own cluster to change.
        let c1_requests: usize = (10..17).map(|i| net.next_leader_requests[&ReplicaId(i)]).sum();
        assert_eq!(c1_requests, 0);
    }

    #[test]
    fn received_operations_suppress_complaints() {
        let (mut net, _) = make_net();
        for (_, node) in net.nodes.iter_mut() {
            node.mark_received(ClusterId(0));
            node.mark_received(ClusterId(1));
        }
        net.tick_all(Time::from_secs(30));
        net.run(10_000);
        assert!(net.next_leader_requests.values().all(|&c| c == 0));
    }

    #[test]
    fn replayed_remote_complaint_is_accepted_only_once() {
        let (mut net, registry) = make_net();
        // Build a genuine quorum of LComplaint signatures from cluster 1 about
        // cluster 0 (cn = 0).
        let mut sigs = SigSet::new();
        for i in 10..15 {
            let kp = registry.register(ReplicaId(i)); // re-register returns same key
            sigs.insert(kp.sign(&lcomplaint_digest(ClusterId(0), 0, Round(1))));
        }
        let msg = RemoteLeaderMsg::RComplaint {
            from_cluster: ClusterId(1),
            cn: 0,
            round: Round(1),
            sigs,
        };
        // Deliver the same remote complaint to p0 twice (a Byzantine replica replays
        // it); the local Complaint is re-broadcast, but each replica accepts it once.
        let p0 = ReplicaId(0);
        let actions1 =
            net.nodes.get_mut(&p0).unwrap().on_message(ReplicaId(14), msg.clone(), Time::ZERO);
        net.apply(p0, actions1);
        let actions2 = net.nodes.get_mut(&p0).unwrap().on_message(ReplicaId(14), msg, Time::ZERO);
        net.apply(p0, actions2);
        net.run(10_000);
        for i in 0..4 {
            assert!(
                net.next_leader_requests[&ReplicaId(i)] <= 1,
                "replay attack must not change the leader repeatedly"
            );
        }
    }

    #[test]
    fn under_signed_remote_complaint_is_rejected() {
        let (mut net, registry) = make_net();
        // Only 2 signatures (< quorum of 5 for cluster 1) — a Byzantine coalition.
        let mut sigs = SigSet::new();
        for i in 10..12 {
            let kp = registry.register(ReplicaId(i));
            sigs.insert(kp.sign(&lcomplaint_digest(ClusterId(0), 0, Round(1))));
        }
        let msg = RemoteLeaderMsg::RComplaint {
            from_cluster: ClusterId(1),
            cn: 0,
            round: Round(1),
            sigs,
        };
        let p0 = ReplicaId(0);
        let actions = net.nodes.get_mut(&p0).unwrap().on_message(ReplicaId(10), msg, Time::ZERO);
        net.apply(p0, actions);
        net.run(10_000);
        assert!(net.next_leader_requests.values().all(|&c| c == 0));
    }

    #[test]
    fn grace_period_suppresses_back_to_back_changes() {
        let (mut net, registry) = make_net();
        let p0 = ReplicaId(0);
        net.nodes.get_mut(&p0).unwrap().note_local_leader_change(Time::from_millis(100));
        let mut sigs = SigSet::new();
        for i in 10..15 {
            let kp = registry.register(ReplicaId(i));
            sigs.insert(kp.sign(&lcomplaint_digest(ClusterId(0), 0, Round(1))));
        }
        let msg =
            RemoteLeaderMsg::Complaint { from_cluster: ClusterId(1), cn: 0, round: Round(1), sigs };
        let actions =
            net.nodes.get_mut(&p0).unwrap().on_message(ReplicaId(1), msg, Time::from_millis(200));
        assert!(
            !actions.iter().any(|a| matches!(a, RemoteLeaderAction::RequestNextLeader)),
            "a just-changed leader must not be changed again immediately"
        );
    }
}
