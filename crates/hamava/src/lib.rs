//! # ava-hamava
//!
//! The core of this reproduction: the Hamava fault-tolerant, reconfigurable,
//! heterogeneous clustered replication protocol (ICDE 2025), implemented as a set of
//! composable sans-I/O state machines plus a [`replica::Replica`] actor that ties
//! them together into the paper's three-stage round structure.
//!
//! | Paper algorithm | Module |
//! |---|---|
//! | Alg. 1 — inter-cluster broadcast | [`replica`] (`inter_broadcast`, `on_inter`, `on_local_share`) |
//! | Alg. 2 — heterogeneous remote leader change | [`remote_leader`] |
//! | Alg. 3 — reconfiguration collection | [`replica`] (requester + member sides) |
//! | Alg. 4–6 — Byzantine Reliable Dissemination | [`brd`] |
//! | Alg. 7 — local ordering | [`replica`] + any [`ava_consensus::TotalOrderBroadcast`] |
//! | Alg. 8 — leader change | [`replica`] (`install_leader` wiring) |
//! | Alg. 9 — leader election | [`leader_election`] |
//! | Alg. 10 — execution & reconfiguration application | [`replica`] (`execute`) |
//!
//! The replica is generic over the local consensus protocol: instantiating it with
//! `ava-hotstuff` gives AVA-HOTSTUFF and with `ava-bftsmart` gives AVA-BFTSMART, the
//! two systems evaluated in the paper.
//!
//! ## Quick start
//!
//! ```
//! use ava_hamava::harness::{hotstuff_factory, Deployment, DeploymentOptions};
//! use ava_types::{Duration, Region, SystemConfig};
//!
//! // Two heterogeneous clusters: 4 replicas in the US, 7 in Europe.
//! let config = SystemConfig::heterogeneous(&[
//!     vec![Region::UsWest; 4],
//!     vec![Region::Europe; 7],
//! ]);
//! let mut deployment = Deployment::build(config, DeploymentOptions::default(), hotstuff_factory());
//! deployment.run_for(Duration::from_secs(5));
//! assert!(!deployment.outputs().is_empty());
//! ```
//!
//! Experiments should prefer the declarative scenario API (`ava-scenario`), which
//! wraps this harness behind [`harness::Deployment`]-erasing trait objects and adds
//! event schedules and run observers.

pub mod brd;
pub mod byzantine;
pub mod client;
pub mod harness;
pub mod leader_election;
pub mod messages;
pub mod remote_leader;
pub mod replica;

pub use brd::{Brd, BrdAction, BrdCert, BrdMsg};
pub use byzantine::{ByzantineBehavior, CorruptReplica};
pub use client::{Client, ClientConfig};
pub use harness::{bftsmart_factory, hotstuff_factory, Deployment, DeploymentOptions, TobFactory};
pub use leader_election::{ElectionAction, ElectionMsg, LeaderElection};
pub use messages::{AvaMsg, ClientCtl, ControlCmd, RoundPackage, RoundRecord, TxBatch};
pub use remote_leader::{RemoteLeaderAction, RemoteLeaderChange, RemoteLeaderMsg};
pub use replica::{Replica, ReplicaConfig, ReplicaStatus};
// Re-exported so downstream crates can pick a state machine for
// `DeploymentOptions::state_machine` without a direct `ava-state` dependency.
pub use ava_state::StateMachineKind;
