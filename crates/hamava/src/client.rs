//! Closed-loop client actor.
//!
//! Each cluster in the paper's evaluation has one client with multiple threads that
//! issue YCSB requests back-to-back. The client actor models those threads as a fixed
//! number of outstanding requests: whenever a response arrives a new request is
//! issued immediately. Reads are answered locally by the contacted replica; writes
//! complete when the round that ordered them executes.

use crate::messages::{AvaMsg, ClientCtl};
use ava_consensus::WireSize;
use ava_simnet::{Actor, Context, SimMessage};
use ava_types::{ClientId, ClusterId, Duration, Output, ReplicaId, Time, TxId};
use ava_workload::ClientWorkload;
use rand::seq::SliceRandom;
use std::collections::HashMap;
use std::marker::PhantomData;

const TICK: u64 = 1;

/// Configuration of a closed-loop client.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// The client's identifier.
    pub id: ClientId,
    /// The cluster the client talks to.
    pub cluster: ClusterId,
    /// Replicas the client may contact (members of its cluster).
    pub targets: Vec<ReplicaId>,
    /// Number of outstanding requests ("client threads" in the paper).
    pub concurrency: usize,
    /// Re-issue a fresh request if an outstanding one has not completed within this
    /// time (keeps the closed loop alive across leader changes and crashes: requests
    /// stuck at a crashed replica are abandoned and replayed against another one).
    pub retry_timeout: Duration,
}

impl ClientConfig {
    /// Defaults: enough concurrency to keep one batch in flight, 3 s request retry.
    pub fn new(id: ClientId, cluster: ClusterId, targets: Vec<ReplicaId>) -> Self {
        ClientConfig {
            id,
            cluster,
            targets,
            concurrency: 128,
            retry_timeout: Duration::from_secs(3),
        }
    }
}

/// The closed-loop client actor, generic over the TOB message type only so it can run
/// in the same simulation as any replica flavour.
pub struct Client<TM> {
    cfg: ClientConfig,
    workload: ClientWorkload,
    outstanding: HashMap<TxId, (Time, bool)>,
    completed: u64,
    _marker: PhantomData<TM>,
}

impl<TM> Client<TM> {
    /// Create a client with the given workload generator.
    pub fn new(cfg: ClientConfig, workload: ClientWorkload) -> Self {
        Client { cfg, workload, outstanding: HashMap::new(), completed: 0, _marker: PhantomData }
    }

    /// Number of completed transactions (for tests).
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

impl<TM: Clone + WireSize> Client<TM> {
    fn issue_one(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if self.cfg.targets.is_empty() {
            return;
        }
        let tx = self.workload.next_tx(ctx.rng());
        let target = *self.cfg.targets.choose(ctx.rng()).expect("targets not empty");
        self.outstanding.insert(tx.id, (ctx.now(), tx.kind.is_write()));
        ctx.send(target, AvaMsg::ClientRequest { tx, client: self.cfg.id });
    }

    fn fill_pipeline(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        while self.outstanding.len() < self.cfg.concurrency {
            self.issue_one(ctx);
        }
    }
}

impl<TM: Clone + WireSize> Actor<AvaMsg<TM>> for Client<TM>
where
    AvaMsg<TM>: SimMessage,
{
    fn on_start(&mut self, ctx: &mut Context<'_, AvaMsg<TM>>) {
        ctx.set_timer(Duration::from_millis(250), TICK);
        self.fill_pipeline(ctx);
    }

    fn on_message(&mut self, _from: ReplicaId, msg: AvaMsg<TM>, ctx: &mut Context<'_, AvaMsg<TM>>) {
        match msg {
            AvaMsg::ClientResponse { tx, is_write, .. } => {
                if let Some((issued_at, _)) = self.outstanding.remove(&tx) {
                    self.completed += 1;
                    ctx.emit(Output::TxCompleted {
                        tx,
                        client: self.cfg.id,
                        cluster: self.cfg.cluster,
                        issued_at,
                        completed_at: ctx.now(),
                        is_write,
                    });
                    self.issue_one(ctx);
                }
            }
            AvaMsg::ClientControl(ClientCtl::SwitchWorkload(spec)) => {
                // Outstanding requests complete under the old mix; everything issued
                // from now on follows the new spec.
                self.workload.switch_spec(spec);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Context<'_, AvaMsg<TM>>) {
        if kind != TICK {
            return;
        }
        ctx.set_timer(Duration::from_millis(250), TICK);
        // Drop requests that have been outstanding for too long (lost to a crashed
        // replica or a leader change) and replace them to keep the load constant.
        let now = ctx.now();
        let stale: Vec<TxId> = self
            .outstanding
            .iter()
            .filter(|(_, (issued, _))| now.since(*issued) >= self.cfg.retry_timeout)
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            self.outstanding.remove(&id);
        }
        self.fill_pipeline(ctx);
    }
}
