//! Greedy schedule shrinking: given a violating case, remove events one at a
//! time (re-running after each removal) until no single removal keeps the
//! violation alive — the classic delta-debugging 1-minimal reduction.
//!
//! The judge is pluggable (`FnMut(&FuzzCase) -> Option<Violation>`) so the
//! algorithm itself is testable with synthetic judges; the fuzz binary passes a
//! judge that actually runs the scenario through the checker suite. Removals are
//! dependency-aware: removing a `Crash` drags the restarts that depend on it,
//! and removing a `Partition` drags its `Heal`, so every probed candidate is a
//! valid schedule.

use crate::checkers::Violation;
use crate::generate::FuzzCase;
use ava_scenario::{ScenarioEvent, Schedule};
use ava_types::Time;

/// The result of a shrink pass.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The reduced case (identical to the input when nothing could be removed,
    /// or when the input did not violate at all).
    pub case: FuzzCase,
    /// The violation the reduced case still triggers (`None`: the input case
    /// passed, so shrinking was a no-op).
    pub violation: Option<Violation>,
    /// Events removed from the schedule.
    pub removed: usize,
    /// Judge invocations spent (including the initial one).
    pub attempts: usize,
}

/// Shrink `case` with a custom judge. The judge returns the violation a
/// candidate triggers (its first, by convention), or `None` for a passing run.
///
/// Invariants:
/// - a passing `case` returns immediately with `violation: None` (no-op);
/// - the returned case triggers a violation of the *same checker* as the
///   original (greedy steps that flip to a different checker are rejected, so
///   the reproducer reproduces the reported bug, not a different one);
/// - terminates: every accepted step strictly shrinks the schedule.
pub fn shrink_with(
    case: &FuzzCase,
    judge: &mut dyn FnMut(&FuzzCase) -> Option<Violation>,
) -> ShrinkOutcome {
    let mut attempts = 1;
    let Some(initial) = judge(case) else {
        return ShrinkOutcome { case: case.clone(), violation: None, removed: 0, attempts };
    };
    let target = initial.checker;
    let mut current = case.clone();
    let mut violation = initial;
    'pass: loop {
        let entries = current.schedule.sorted();
        for i in 0..entries.len() {
            let candidate_schedule = without(&entries, i);
            let candidate = current.with_schedule(candidate_schedule);
            if candidate.try_scenario().is_err() {
                continue;
            }
            attempts += 1;
            if let Some(v) = judge(&candidate) {
                if v.checker == target {
                    current = candidate;
                    violation = v;
                    continue 'pass;
                }
            }
        }
        break;
    }
    let removed = case.schedule.len() - current.schedule.len();
    ShrinkOutcome { case: current, violation: Some(violation), removed, attempts }
}

/// `entries` minus entry `i` and everything depending on it: restarts whose
/// only earlier crash it was, and the first heal of a removed partition.
fn without(entries: &[(Time, ScenarioEvent)], i: usize) -> Schedule {
    let mut kept: Vec<(Time, ScenarioEvent)> =
        entries.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, e)| e.clone()).collect();
    if let ScenarioEvent::Partition { a, b } = &entries[i].1 {
        let (pa, pb) = (a.0.min(b.0), a.0.max(b.0));
        let heal = kept.iter().position(|(at, ev)| {
            *at > entries[i].0
                && matches!(ev, ScenarioEvent::Heal { a, b }
                    if a.0.min(b.0) == pa && a.0.max(b.0) == pb)
        });
        if let Some(j) = heal {
            kept.remove(j);
        }
    }
    // Drop restarts whose supporting crash is gone (removal above may have been
    // the crash itself).
    let mut schedule = Schedule::new();
    for (at, ev) in &kept {
        if let ScenarioEvent::Restart { replica } = ev {
            let supported = kept.iter().any(|(crash_at, e)| {
                matches!(e, ScenarioEvent::Crash { replica: r } if r == replica) && crash_at < at
            });
            if !supported {
                continue;
            }
        }
        schedule.add(*at, ev.clone());
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{FuzzConfig, ScheduleGenerator};
    use ava_scenario::Protocol;
    use ava_types::{ClusterId, Duration, Region, ReplicaId, SystemConfig};

    /// A hand-built case: crash+restart, a partition+heal, a mute and a latency
    /// shift on a 2×4 topology.
    fn rich_case() -> FuzzCase {
        let mut config =
            SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
        config.params.batch_size = 20;
        let mut schedule = Schedule::new();
        schedule.add(Time::from_secs(2), ScenarioEvent::Crash { replica: ReplicaId(1) });
        schedule.add(Time::from_secs(4), ScenarioEvent::Restart { replica: ReplicaId(1) });
        schedule
            .add(Time::from_secs(3), ScenarioEvent::Partition { a: ClusterId(0), b: ClusterId(1) });
        schedule.add(Time::from_secs(5), ScenarioEvent::Heal { a: ClusterId(0), b: ClusterId(1) });
        schedule.add(Time::from_secs(6), ScenarioEvent::MuteInterCluster { replica: ReplicaId(5) });
        let generator = ScheduleGenerator::new(FuzzConfig::quick());
        let mut case = generator.case(0);
        case.protocol = Protocol::AvaHotStuff;
        case.clusters = vec![(4, Region::UsWest), (4, Region::Europe)];
        case.config = config;
        case.run = Duration::from_secs(12);
        case.with_schedule(schedule)
    }

    fn has_kind(case: &FuzzCase, kind: &str) -> bool {
        case.schedule.iter().any(|(_, ev)| ev.kind() == kind)
    }

    #[test]
    fn passing_case_is_a_no_op_and_terminates() {
        let case = rich_case();
        let mut judged = 0;
        let outcome = shrink_with(&case, &mut |_| {
            judged += 1;
            None
        });
        assert_eq!(judged, 1, "a passing case is judged exactly once");
        assert!(outcome.violation.is_none());
        assert_eq!(outcome.removed, 0);
        assert_eq!(outcome.case.schedule.len(), case.schedule.len());
    }

    #[test]
    fn shrinks_to_the_known_minimal_core() {
        // Synthetic judge: the "bug" fires whenever the schedule still contains
        // both the crash of p1 and the partition. Everything else is noise the
        // shrinker must strip: the mute, the latency events, the heal (dragged
        // with the partition only if the partition itself is removed — it stays
        // here), and the restart (dragged once the crash goes — it stays here
        // because the crash must stay).
        let case = rich_case();
        let mut judge = |c: &FuzzCase| {
            (has_kind(c, "crash") && has_kind(c, "partition"))
                .then(|| Violation { checker: "execution-agreement", details: "synthetic".into() })
        };
        let outcome = shrink_with(&case, &mut judge);
        let shrunk = outcome.case;
        assert!(outcome.violation.is_some());
        assert!(has_kind(&shrunk, "crash"), "the crash is load-bearing");
        assert!(has_kind(&shrunk, "partition"), "the partition is load-bearing");
        assert!(!has_kind(&shrunk, "mute"), "noise must be stripped");
        // The restart depends on the kept crash and is individually removable.
        assert!(!has_kind(&shrunk, "restart"), "removable dependents are stripped");
        // 1-minimal: removing any single remaining event (with dependents) kills
        // the violation.
        let entries = shrunk.schedule.sorted();
        for i in 0..entries.len() {
            let candidate = shrunk.with_schedule(super::without(&entries, i));
            if candidate.try_scenario().is_ok() {
                assert!(
                    judge(&candidate).is_none(),
                    "shrunk schedule is not 1-minimal: removing {:?} keeps the violation",
                    entries[i]
                );
            }
        }
        assert!(outcome.removed >= 2);
        assert!(outcome.attempts > 1);
    }

    #[test]
    fn removing_a_crash_drags_its_restart() {
        let case = rich_case();
        let entries = case.schedule.sorted();
        let crash_idx = entries
            .iter()
            .position(|(_, ev)| matches!(ev, ScenarioEvent::Crash { .. }))
            .expect("has a crash");
        let shrunk = super::without(&entries, crash_idx);
        assert!(
            !shrunk.iter().any(|(_, ev)| matches!(ev, ScenarioEvent::Restart { .. })),
            "orphaned restart must be dragged along"
        );
        // And the result still builds.
        assert!(case.with_schedule(shrunk).try_scenario().is_ok());
    }

    #[test]
    fn removing_a_partition_drags_its_heal() {
        let case = rich_case();
        let entries = case.schedule.sorted();
        let idx = entries
            .iter()
            .position(|(_, ev)| matches!(ev, ScenarioEvent::Partition { .. }))
            .expect("has a partition");
        let shrunk = super::without(&entries, idx);
        assert!(!shrunk.iter().any(|(_, ev)| matches!(ev, ScenarioEvent::Heal { .. })));
        assert_eq!(shrunk.len(), entries.len() - 2);
    }

    #[test]
    fn shrinker_rejects_steps_that_switch_checkers() {
        // The mute triggers checker A; crash+partition trigger checker B (the
        // one reported first). Removing the mute must be accepted; removals
        // that leave only checker A firing must be rejected.
        let case = rich_case();
        let mut judge = |c: &FuzzCase| {
            if has_kind(c, "crash") && has_kind(c, "partition") {
                Some(Violation { checker: "prefix", details: "b".into() })
            } else if has_kind(c, "mute") {
                Some(Violation { checker: "catch-up-liveness", details: "a".into() })
            } else {
                None
            }
        };
        let outcome = shrink_with(&case, &mut judge);
        let v = outcome.violation.expect("still violating");
        assert_eq!(v.checker, "prefix", "the reduced case reproduces the original checker");
        assert!(has_kind(&outcome.case, "crash") && has_kind(&outcome.case, "partition"));
    }
}
