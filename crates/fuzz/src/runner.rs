//! Fuzz-run execution: run one case through the checker suite, summarize, and
//! render machine-readable reports.

use crate::checkers::{CheckerSet, Violation};
use crate::generate::{FuzzCase, FuzzConfig, ScheduleGenerator};
use ava_simnet::NetStats;
use ava_types::Output;

/// The outcome of running one fuzz case.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The seed the case was generated from.
    pub seed: u64,
    /// Protocol label ("A.H", "A.B", "GeoBFT").
    pub protocol: &'static str,
    /// Events in the schedule.
    pub events: usize,
    /// Transactions completed during the run.
    pub completed_txns: usize,
    /// Violations the checker suite recorded (empty = pass).
    pub violations: Vec<Violation>,
    /// Hex SHA-256 of the case encoding (topology + options + schedule).
    pub schedule_digest: String,
    /// Hex SHA-256 of the run's output stream + net stats (the same shape as
    /// the determinism goldens) — two runs of the same case match iff their
    /// digests match, which is how failure reproducibility is confirmed.
    pub output_digest: String,
}

impl CaseReport {
    /// Whether the run passed every checker.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Fingerprint an output stream + net stats (hex SHA-256 over the `Debug`
/// rendering, the same scheme as the repo's determinism goldens).
pub fn fingerprint_outputs(outputs: &[Output], stats: &NetStats) -> String {
    let mut hasher = ava_crypto::Sha256::new();
    for o in outputs {
        hasher.update(format!("{o:?}\n").as_bytes());
    }
    hasher.update(
        format!(
            "msgs={} bytes={} dropped={}",
            stats.total_messages(),
            stats.bytes_sent,
            stats.dropped_messages
        )
        .as_bytes(),
    );
    hasher.finalize().iter().map(|b| format!("{b:02x}")).collect()
}

/// Run `case` through the standard checker suite.
pub fn run_case(case: &FuzzCase) -> CaseReport {
    let mut checkers = CheckerSet::standard();
    let run = case.scenario().run_observed(&mut [&mut checkers]);
    let completed_txns =
        run.outputs.iter().filter(|o| matches!(o, Output::TxCompleted { .. })).count();
    CaseReport {
        seed: case.seed,
        protocol: case.protocol.label(),
        events: case.schedule.len(),
        completed_txns,
        violations: checkers.violations(),
        schedule_digest: case.fingerprint(),
        output_digest: fingerprint_outputs(&run.outputs, &run.stats),
    }
}

/// Aggregate results of a fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Every per-seed report, in seed order.
    pub reports: Vec<CaseReport>,
}

impl CampaignSummary {
    /// Seeds whose runs violated at least one invariant.
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.reports.iter().filter(|r| !r.passed()).map(|r| r.seed).collect()
    }

    /// Whether every seed passed.
    pub fn all_passed(&self) -> bool {
        self.reports.iter().all(CaseReport::passed)
    }

    /// Render the machine-readable JSON summary (`{"seeds": …, "passed": …,
    /// "failed": [{seed, checker, details}, …]}`).
    pub fn to_json(&self, mode: &str) -> String {
        let failed: Vec<String> = self
            .reports
            .iter()
            .filter(|r| !r.passed())
            .map(|r| {
                let v = &r.violations[0];
                format!(
                    "{{\"seed\": {}, \"protocol\": {}, \"checker\": {}, \"details\": {}, \
                     \"schedule_digest\": {}, \"output_digest\": {}}}",
                    r.seed,
                    json_str(r.protocol),
                    json_str(v.checker),
                    json_str(&v.details),
                    json_str(&r.schedule_digest),
                    json_str(&r.output_digest)
                )
            })
            .collect();
        let total_txns: usize = self.reports.iter().map(|r| r.completed_txns).sum();
        format!(
            "{{\n  \"mode\": {},\n  \"seeds\": {},\n  \"passed\": {},\n  \"total_txns\": {},\n  \
             \"failed\": [{}]\n}}\n",
            json_str(mode),
            self.reports.len(),
            self.reports.iter().filter(|r| r.passed()).count(),
            total_txns,
            failed.join(", ")
        )
    }
}

/// Run seeds `start..start + count` of `cfg`'s generator on `jobs` worker
/// threads, invoking `progress` as each seed finishes (for per-seed pass/fail
/// lines; under `jobs > 1` the calls arrive in completion order, which is why
/// `progress` must be `Sync`). The summary's reports are always in seed order
/// and byte-identical to a `jobs = 1` run: every case owns its full simulation
/// stack, so fanning seeds out cannot perturb any run's schedule or digests.
pub fn fuzz_many(
    cfg: FuzzConfig,
    start: u64,
    count: u64,
    jobs: usize,
    progress: impl Fn(&CaseReport) + Sync,
) -> CampaignSummary {
    let generator = ScheduleGenerator::new(cfg);
    let seeds: Vec<u64> = (start..start + count).collect();
    let reports = ava_scenario::RunPool::new(jobs).map(seeds, |_, seed| {
        let report = run_case(&generator.case(seed));
        progress(&report);
        report
    });
    CampaignSummary { reports }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_summary_escapes_and_counts() {
        let mut summary = CampaignSummary::default();
        summary.reports.push(CaseReport {
            seed: 3,
            protocol: "A.H",
            events: 2,
            completed_txns: 100,
            violations: vec![],
            schedule_digest: "ab".into(),
            output_digest: "cd".into(),
        });
        summary.reports.push(CaseReport {
            seed: 4,
            protocol: "A.B",
            events: 1,
            completed_txns: 50,
            violations: vec![Violation { checker: "prefix", details: "round \"r3\" twice".into() }],
            schedule_digest: "ef".into(),
            output_digest: "01".into(),
        });
        assert_eq!(summary.failing_seeds(), vec![4]);
        assert!(!summary.all_passed());
        let json = summary.to_json("quick");
        assert!(json.contains("\"seeds\": 2"));
        assert!(json.contains("\"passed\": 1"));
        assert!(json.contains("\\\"r3\\\""));
        assert!(json.contains("\"total_txns\": 150"));
    }
}
