//! `ava-fuzz`: a VOPR-style scenario fuzzer for the Hamava simulation.
//!
//! The pieces, in the order a fuzz run uses them:
//!
//! 1. **[`ScheduleGenerator`]** derives a complete [`FuzzCase`] — protocol,
//!    topology, deployment options, event schedule — deterministically from a
//!    single `u64` seed. Same seed ⇒ byte-identical case ⇒ identical run, so a
//!    failing seed printed in a CI log reproduces the failure from nothing else.
//! 2. **[`CheckerSet`]** wires the always-on invariant checkers into the run as
//!    a scenario `RunObserver`: cross-replica agreement on executed rounds, the
//!    prefix property, checkpoint-chain integrity, same-round reconfig-set
//!    agreement, catch-up liveness, broker conservation (every acked
//!    virtual-client write exists exactly once in committed state), and the two
//!    Byzantine-evidence soundness checkers (rejection and equivocation
//!    evidence only ever appears after a scheduled corruption justifies it).
//! 3. **[`run_case`]** executes a case and reports violations plus schedule and
//!    output fingerprints.
//! 4. **[`shrink_with`]** reduces a violating schedule to a 1-minimal core and
//!    [`FuzzCase::builder_snippet`] renders it as a compilable reproducer.
//! 5. **[`canary_suite`]** proves the harness can fail: each [`Canary`] plants
//!    a specific bug in a recorded output stream, and the matching checker must
//!    detect it.
//!
//! The `fuzz` binary in `ava-bench` drives all of this from the command line
//! (`cargo run --release --bin fuzz -- --seeds 100 --quick`).

pub mod canary;
pub mod checkers;
pub mod generate;
pub mod runner;
pub mod shrink;

pub use canary::{canary_suite, fixture_scenario, Canary, CanaryResult};
pub use checkers::{
    BrokerConservationChecker, CatchUpChecker, CertificateValidityChecker, CheckerSet,
    CheckpointChecker, EquivocationExposureChecker, ExecutionAgreementChecker, InvariantChecker,
    PrefixChecker, ReconfigAgreementChecker, Violation,
};
pub use generate::{FuzzCase, FuzzConfig, ScheduleGenerator};
pub use runner::{fingerprint_outputs, fuzz_many, run_case, CampaignSummary, CaseReport};
pub use shrink::{shrink_with, ShrinkOutcome};
