//! Canary mutations: deliberate corruptions of a recorded output stream, each of
//! which a specific checker must detect.
//!
//! The canaries are the fuzzer's own falsification test — a checker suite that
//! never fires is indistinguishable from one that cannot fire. Each canary takes
//! the clean output stream of a real run and plants one specific bug a real
//! protocol regression would produce (a forged checkpoint digest, a divergent
//! execution, a dropped recovery, …); replaying the doctored stream through
//! [`CheckerSet::replay`] must produce a violation from the expected checker.

use crate::checkers::{CheckerSet, Violation};
use ava_scenario::{BrokerTier, Protocol, Scenario, ScenarioEvent, Schedule};
use ava_store::StoreConfig;
use ava_types::{
    ClientId, ClusterId, Duration, Output, Region, ReplicaId, SystemConfig, Time, TxId,
};
use ava_workload::{AggregateLoad, WorkloadSpec};

/// One deliberate bug injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Canary {
    /// Two replicas report different txn counts for the same executed round
    /// (state divergence).
    DivergentRoundTxns,
    /// A replica reports executing a round it already executed, without a
    /// restart in between (broken prefix property / skipped-round bookkeeping).
    DuplicateRoundExecution,
    /// A replica installs a checkpoint whose digest disagrees with its peers'
    /// for the same round (forged or corrupted snapshot).
    ForgedCheckpointDigest,
    /// An executor applies a reconfiguration its peers did not apply in the
    /// same round (mismatched reconfig set).
    MismatchedReconfigSet,
    /// A restarted replica's `RecoveryCompleted` never arrives (catch-up lost).
    LostRecoveryCompletion,
    /// A virtual client is acked for a write no replica ever committed from a
    /// batch (the broker invented or misrouted an acknowledgement).
    PhantomBrokerAck,
    /// An honest run emits rejection evidence (`ByzantineRejected`) with no
    /// corruption ever scheduled — an honest artifact failed verification,
    /// i.e. a false positive in the evidence path.
    ForgedCertificateRejection,
    /// An honest run emits equivocation evidence (`EquivocationObserved`) with
    /// no package-mutating corruption ever scheduled — a false accusation.
    UnjustifiedEquivocationEvidence,
    /// Two replicas report different full-state digests for the same executed
    /// round (a planted value mismatch the txn-count arm cannot see: both
    /// executed the same *number* of transactions but diverged on the bytes).
    /// Needs the KV state machine — the legacy counter emits no `StateDigest`.
    DivergentStateDigest,
}

impl Canary {
    /// Every canary, in suite order.
    pub const ALL: [Canary; 9] = [
        Canary::DivergentRoundTxns,
        Canary::DuplicateRoundExecution,
        Canary::ForgedCheckpointDigest,
        Canary::MismatchedReconfigSet,
        Canary::LostRecoveryCompletion,
        Canary::PhantomBrokerAck,
        Canary::ForgedCertificateRejection,
        Canary::UnjustifiedEquivocationEvidence,
        Canary::DivergentStateDigest,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Canary::DivergentRoundTxns => "divergent-round-txns",
            Canary::DuplicateRoundExecution => "duplicate-round-execution",
            Canary::ForgedCheckpointDigest => "forged-checkpoint-digest",
            Canary::MismatchedReconfigSet => "mismatched-reconfig-set",
            Canary::LostRecoveryCompletion => "lost-recovery-completion",
            Canary::PhantomBrokerAck => "phantom-broker-ack",
            Canary::ForgedCertificateRejection => "forged-certificate-rejection",
            Canary::UnjustifiedEquivocationEvidence => "unjustified-equivocation-evidence",
            Canary::DivergentStateDigest => "state-digest-divergence",
        }
    }

    /// The checker that must detect this canary.
    pub fn expected_checker(self) -> &'static str {
        match self {
            Canary::DivergentRoundTxns => "execution-agreement",
            Canary::DuplicateRoundExecution => "prefix",
            Canary::ForgedCheckpointDigest => "checkpoint-chain",
            Canary::MismatchedReconfigSet => "reconfig-agreement",
            Canary::LostRecoveryCompletion => "catch-up-liveness",
            Canary::PhantomBrokerAck => "broker-conservation",
            Canary::ForgedCertificateRejection => "certificate-validity",
            Canary::UnjustifiedEquivocationEvidence => "equivocation-exposure",
            Canary::DivergentStateDigest => "execution-agreement",
        }
    }

    /// Plant the bug in `outputs`. Returns `false` when the stream lacks the
    /// material the mutation needs (e.g. no checkpoints recorded) — the fixture
    /// scenario is built so that never happens for the standard suite.
    pub fn inject(self, outputs: &mut Vec<Output>) -> bool {
        match self {
            Canary::DivergentRoundTxns => {
                // Bump the txn count of the second report of the first round
                // reported by two replicas.
                let mut first: Option<Round2> = None;
                for o in outputs.iter_mut() {
                    if let Output::RoundExecuted { round, txns, .. } = o {
                        match first {
                            Some(r) if r.0 == round.0 => {
                                *txns += 1;
                                return true;
                            }
                            Some(_) => {}
                            None => first = Some(Round2(round.0)),
                        }
                    }
                }
                false
            }
            Canary::DuplicateRoundExecution => {
                // Rewrite a replica's later execution to repeat an earlier round
                // of the same incarnation (no restart of it in between).
                let mut seen: Option<(ReplicaId, u64)> = None;
                for i in 0..outputs.len() {
                    match &outputs[i] {
                        Output::ReplicaRestarted { replica, .. } => {
                            if seen.map(|(r, _)| r) == Some(*replica) {
                                seen = None;
                            }
                        }
                        Output::RoundExecuted { replica, round, .. } => match seen {
                            None => seen = Some((*replica, round.0)),
                            Some((r, first_round)) if r == *replica && round.0 > first_round => {
                                if let Output::RoundExecuted { round, .. } = &mut outputs[i] {
                                    round.0 = first_round;
                                }
                                return true;
                            }
                            Some(_) => {}
                        },
                        _ => {}
                    }
                }
                false
            }
            Canary::ForgedCheckpointDigest => {
                // Flip a byte in the second install of the first (cluster,
                // round) checkpointed by two replicas. The pair must come from
                // one cluster: digests commit the per-cluster packing anchor,
                // so sibling clusters' digests differ legitimately.
                let mut first: Option<(ClusterId, u64)> = None;
                for o in outputs.iter_mut() {
                    if let Output::CheckpointInstalled { cluster, round, digest, .. } = o {
                        match first {
                            Some((c, r)) if c == *cluster && r == round.0 => {
                                digest[0] ^= 0xff;
                                return true;
                            }
                            Some(_) => {}
                            None => first = Some((*cluster, round.0)),
                        }
                    }
                }
                false
            }
            Canary::MismatchedReconfigSet => {
                // Give one executor of a multi-executor round an extra phantom
                // leave its peers never applied.
                let mut counts: std::collections::BTreeMap<u64, Vec<(ReplicaId, ClusterId, Time)>> =
                    std::collections::BTreeMap::new();
                for o in outputs.iter() {
                    if let Output::RoundExecuted { replica, cluster, round, at, .. } = o {
                        counts.entry(round.0).or_default().push((*replica, *cluster, *at));
                    }
                }
                let Some((round, executors)) = counts.into_iter().find(|(_, e)| e.len() >= 2)
                else {
                    return false;
                };
                let (reporter, cluster, at) = executors[0];
                outputs.push(Output::ReconfigApplied {
                    replica: ReplicaId(9_999),
                    cluster,
                    joined: false,
                    round: ava_types::Round(round),
                    at,
                    reporter,
                });
                true
            }
            Canary::LostRecoveryCompletion => {
                // Drop EVERY RecoveryCompleted of the first restarted replica —
                // a straggler escape after rejoining can legitimately complete a
                // second catch-up, and any surviving completion would satisfy
                // the liveness checker.
                let Some(restarted) = outputs.iter().find_map(|o| match o {
                    Output::ReplicaRestarted { replica, .. } => Some(*replica),
                    _ => None,
                }) else {
                    return false;
                };
                let before = outputs.len();
                outputs.retain(|o| {
                    !matches!(o, Output::RecoveryCompleted { replica, .. } if *replica == restarted)
                });
                outputs.len() < before
            }
            Canary::PhantomBrokerAck => {
                // Ack a virtual-client write that never appears in the committed
                // batch traces. The conservation checker only judges streams
                // that carry batch commits, so a stream without any is missing
                // material.
                let Some((cluster, at)) = outputs.iter().find_map(|o| match o {
                    Output::BatchOpCommitted { cluster, at, .. } => Some((*cluster, *at)),
                    _ => None,
                }) else {
                    return false;
                };
                let client = ClientId(ava_workload::VIRTUAL_CLIENT_BASE + 99);
                outputs.push(Output::TxCompleted {
                    tx: TxId { client, seq: u64::MAX },
                    client,
                    cluster,
                    issued_at: at,
                    completed_at: at,
                    is_write: true,
                });
                true
            }
            Canary::ForgedCertificateRejection => {
                // Plant rejection evidence anchored on the first executed round.
                // The fixture schedule holds no Corrupt event, so the evidence
                // is unjustified by construction.
                let Some((replica, cluster, round, at)) = first_execution(outputs) else {
                    return false;
                };
                outputs.push(Output::ByzantineRejected {
                    replica,
                    cluster,
                    round,
                    kind: ava_types::RejectKind::PackageCert,
                    at,
                });
                true
            }
            Canary::UnjustifiedEquivocationEvidence => {
                // Plant conflicting-package evidence with no package-mutating
                // corruption anywhere in the schedule.
                let Some((replica, cluster, round, at)) = first_execution(outputs) else {
                    return false;
                };
                outputs.push(Output::EquivocationObserved {
                    replica,
                    cluster,
                    round,
                    first: [0x11; 32],
                    second: [0x22; 32],
                    at,
                });
                true
            }
            Canary::DivergentStateDigest => {
                // Flip a byte in the second state-digest report of the first
                // round reported by two replicas: a single value diverged on
                // one replica while its txn count stayed identical.
                let mut first: Option<Round2> = None;
                for o in outputs.iter_mut() {
                    if let Output::StateDigest { round, digest, .. } = o {
                        match first {
                            Some(r) if r.0 == round.0 => {
                                digest[0] ^= 0xff;
                                return true;
                            }
                            Some(_) => {}
                            None => first = Some(Round2(round.0)),
                        }
                    }
                }
                false
            }
        }
    }
}

/// The `(replica, cluster, round, at)` of the first `RoundExecuted` in the
/// stream — the anchor the evidence canaries attach their forgeries to.
fn first_execution(outputs: &[Output]) -> Option<(ReplicaId, ClusterId, ava_types::Round, Time)> {
    outputs.iter().find_map(|o| match o {
        Output::RoundExecuted { replica, cluster, round, at, .. } => {
            Some((*replica, *cluster, *round, *at))
        }
        _ => None,
    })
}

/// Round-number holder used by the divergent-txns scan (avoids borrowing the
/// output twice).
#[derive(Clone, Copy)]
struct Round2(u64);

/// The outcome of one canary check.
#[derive(Clone, Debug)]
pub struct CanaryResult {
    /// Which canary ran.
    pub canary: Canary,
    /// Whether the mutation found material to corrupt.
    pub injected: bool,
    /// Checkers that fired on the doctored stream.
    pub detected_by: Vec<&'static str>,
    /// Violations the doctored stream produced.
    pub violations: Vec<Violation>,
}

impl CanaryResult {
    /// Whether the canary was injected and the expected checker detected it.
    pub fn detected(&self) -> bool {
        self.injected && self.detected_by.contains(&self.canary.expected_checker())
    }
}

/// The fixture scenario the canary suite records: a store-backed run with a
/// crash→restart, a join and a broker tier, executing against the real KV
/// state machine, so the clean stream holds executions, checkpoints, per-round
/// state digests, a recovery, a reconfiguration and committed batch traces —
/// material for every canary. (The fixture is not a determinism golden; it
/// only needs to stay clean under the standard suite.)
pub fn fixture_scenario() -> Scenario {
    let mut config = SystemConfig::homogeneous_regions(&[(4, Region::UsWest), (4, Region::Europe)]);
    config.params.batch_size = 20;
    config.params.remote_leader_timeout = Duration::from_secs(4);
    config.params.brd_timeout = Duration::from_secs(4);
    config.params.local_timeout = Duration::from_secs(4);
    Scenario::builder(Protocol::AvaHotStuff, config)
        .seed(11)
        .workload(WorkloadSpec { key_space: 500, ..WorkloadSpec::default() })
        .state_machine(ava_hamava::StateMachineKind::Kv)
        .store(StoreConfig::every(4))
        .run_for(Duration::from_secs(14))
        .brokers(BrokerTier {
            // Modest aggregate load with retries disabled (timeout past the run
            // end), matching what fuzz-drawn tiers guarantee the conservation
            // checker.
            retry_timeout: Duration::from_secs(60),
            load: AggregateLoad {
                virtual_clients: 10_000,
                offered_tps: 300,
                issue_for: Duration::from_secs(9),
                ..AggregateLoad::default()
            },
            ..BrokerTier::default()
        })
        .crash_at(Time::from_secs(2), ReplicaId(1))
        .restart_at(Time::from_secs(4), ReplicaId(1))
        .join_at(Time::from_secs(3), ClusterId(1), Region::Europe)
        .build()
}

/// The fixture's schedule (what [`CheckerSet::replay`] is fed as scheduled
/// events) and end time.
pub fn fixture_events() -> (Vec<(Time, ScenarioEvent)>, Time) {
    let mut schedule = Schedule::new();
    schedule.add(Time::from_secs(2), ScenarioEvent::Crash { replica: ReplicaId(1) });
    schedule.add(Time::from_secs(4), ScenarioEvent::Restart { replica: ReplicaId(1) });
    schedule.add(
        Time::from_secs(3),
        ScenarioEvent::Join { cluster: ClusterId(1), region: Region::Europe },
    );
    (schedule.sorted(), Time::from_secs(14))
}

/// Run the full canary suite: record the fixture once, verify the clean stream
/// passes, then check every canary trips its checker on a doctored copy.
///
/// Returns `(clean_violations, results)`; the suite is healthy iff the clean
/// violations are empty and every result `detected()`.
pub fn canary_suite() -> (Vec<Violation>, Vec<CanaryResult>) {
    let run = fixture_scenario().run();
    let (events, end) = fixture_events();
    let clean = CheckerSet::replay(&run.outputs, &events, end);
    let results = Canary::ALL
        .iter()
        .map(|&canary| {
            let mut doctored = run.outputs.clone();
            let injected = canary.inject(&mut doctored);
            let violations =
                if injected { CheckerSet::replay(&doctored, &events, end) } else { Vec::new() };
            let mut detected_by: Vec<&'static str> = violations.iter().map(|v| v.checker).collect();
            detected_by.dedup();
            CanaryResult { canary, injected, detected_by, violations }
        })
        .collect();
    (clean, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn executed(replica: u32, round: u64, txns: usize) -> Output {
        Output::RoundExecuted {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            round: ava_types::Round(round),
            txns,
            at: Time::from_millis(round * 100),
        }
    }

    #[test]
    fn divergent_txns_canary_trips_execution_agreement_on_a_synthetic_trace() {
        let mut outputs = vec![executed(0, 1, 20), executed(1, 1, 20), executed(0, 2, 20)];
        assert!(Canary::DivergentRoundTxns.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "execution-agreement"));
    }

    #[test]
    fn duplicate_round_canary_trips_prefix_on_a_synthetic_trace() {
        let mut outputs = vec![executed(0, 1, 20), executed(0, 2, 20)];
        assert!(Canary::DuplicateRoundExecution.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "prefix"));
    }

    #[test]
    fn forged_digest_canary_trips_checkpoint_chain_on_a_synthetic_trace() {
        let cp = |replica: u32| Output::CheckpointInstalled {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            round: ava_types::Round(4),
            digest: [7; 32],
            adopted: false,
            at: Time::from_secs(1),
        };
        let mut outputs = vec![cp(0), cp(1)];
        assert!(Canary::ForgedCheckpointDigest.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "checkpoint-chain"));
    }

    #[test]
    fn mismatched_reconfig_canary_trips_reconfig_agreement_on_a_synthetic_trace() {
        let mut outputs = vec![executed(0, 3, 20), executed(1, 3, 20)];
        assert!(Canary::MismatchedReconfigSet.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "reconfig-agreement"));
    }

    #[test]
    fn lost_recovery_canary_trips_catch_up_liveness_on_a_synthetic_trace() {
        let outputs_base = vec![
            Output::ReplicaRestarted {
                replica: ReplicaId(1),
                cluster: ClusterId(0),
                recovered_round: ava_types::Round(4),
                log_rounds_replayed: 1,
                at: Time::from_secs(4),
            },
            Output::RecoveryCompleted {
                replica: ReplicaId(1),
                cluster: ClusterId(0),
                round: ava_types::Round(9),
                rounds_transferred: 5,
                bytes_transferred: 1000,
                at: Time::from_secs(5),
            },
        ];
        // Clean stream passes.
        assert!(CheckerSet::replay(&outputs_base, &[], Time::from_secs(14)).is_empty());
        let mut outputs = outputs_base;
        assert!(Canary::LostRecoveryCompletion.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(14));
        assert!(violations.iter().any(|v| v.checker == "catch-up-liveness"));
    }

    #[test]
    fn phantom_ack_canary_trips_broker_conservation_on_a_synthetic_trace() {
        let client = ClientId(ava_workload::VIRTUAL_CLIENT_BASE);
        let committed = Output::BatchOpCommitted {
            replica: ReplicaId(0),
            cluster: ClusterId(0),
            broker: ReplicaId(2_000_000),
            batch: 1,
            tx: TxId { client, seq: 0 },
            at: Time::from_secs(1),
        };
        let acked = Output::TxCompleted {
            tx: TxId { client, seq: 0 },
            client,
            cluster: ClusterId(0),
            issued_at: Time::from_millis(900),
            completed_at: Time::from_secs(1),
            is_write: true,
        };
        let outputs_base = vec![committed, acked];
        assert!(CheckerSet::replay(&outputs_base, &[], Time::from_secs(14)).is_empty());
        let mut outputs = outputs_base;
        assert!(Canary::PhantomBrokerAck.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(14));
        assert!(violations.iter().any(|v| v.checker == "broker-conservation"));
    }

    #[test]
    fn forged_rejection_canary_trips_certificate_validity_on_a_synthetic_trace() {
        let outputs_base = vec![executed(0, 1, 20)];
        assert!(CheckerSet::replay(&outputs_base, &[], Time::from_secs(10)).is_empty());
        let mut outputs = outputs_base;
        assert!(Canary::ForgedCertificateRejection.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "certificate-validity"));
    }

    #[test]
    fn unjustified_equivocation_canary_trips_equivocation_exposure_on_a_synthetic_trace() {
        let mut outputs = vec![executed(0, 1, 20)];
        assert!(Canary::UnjustifiedEquivocationEvidence.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "equivocation-exposure"));
    }

    #[test]
    fn divergent_state_digest_canary_trips_execution_agreement_on_a_synthetic_trace() {
        let digest_of = |replica: u32| Output::StateDigest {
            replica: ReplicaId(replica),
            cluster: ClusterId(0),
            round: ava_types::Round(1),
            digest: [9; 32],
            entries: 5,
            value_bytes: 5_120,
            at: Time::from_millis(100),
        };
        // Same txn counts everywhere: only the digest arm can see this bug.
        let outputs_base = vec![executed(0, 1, 20), executed(1, 1, 20), digest_of(0), digest_of(1)];
        assert!(CheckerSet::replay(&outputs_base, &[], Time::from_secs(10)).is_empty());
        let mut outputs = outputs_base;
        assert!(Canary::DivergentStateDigest.inject(&mut outputs));
        let violations = CheckerSet::replay(&outputs, &[], Time::from_secs(10));
        assert!(violations.iter().any(|v| v.checker == "execution-agreement"));
    }

    #[test]
    fn canaries_report_missing_material_instead_of_lying() {
        let mut outputs: Vec<Output> = Vec::new();
        for canary in Canary::ALL {
            assert!(!canary.inject(&mut outputs), "{:?} has nothing to corrupt", canary);
        }
    }
}
